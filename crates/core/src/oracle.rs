//! The runtime oracle: recording ghost states and checking the spec.
//!
//! [`Oracle`] implements the hypervisor's instrumentation points
//! ([`GhostHooks`]) and realises the timeline of the paper's Fig. 6: at
//! trap entry it starts recording a pre-state (1); each component lock
//! acquisition records that component's abstraction into the pre-state
//! (2)-(3); each release records into the post-state (4)-(5); at trap exit
//! (6) it collects the final thread-local state and call data, computes
//! the expected post-state with the specification function (7), and
//! compares (8) — the ternary check.
//!
//! It also maintains the two §4.4 invariants: a single *shared copy* of
//! the entire ghost state, against which every acquisition checks that
//! nothing changed while the lock was free (non-interference), and the
//! per-component page-table footprints (separation).
//!
//! Since the [`Checker`](crate::checker::Checker) redesign the hooks are
//! split into a *front half* that runs on the hypervisor thread (event
//! emission, lock-held abstraction, degradation gating) and a *back half*
//! ([`Oracle::apply_msg`]) that maintains the shared copy and runs the
//! checks. [`CheckMode`] selects whether the back half runs inline in the
//! hook or on a pipelined checker thread.

// The deprecated `Oracle::stats` field is still the storage the oracle
// writes; external readers should migrate to `Verdict::stats()`.
#![allow(deprecated)]

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::attrs::Stage;
use pkvm_aarch64::esr::Esr;
use pkvm_aarch64::sync::Mutex;
use pkvm_aarch64::sysreg::GprFile;
use pkvm_hyp::hooks::{Component, ComponentView, GhostHooks, HookCtx, TransferEdge, VcpuView};
use pkvm_hyp::hypercalls;
use pkvm_hyp::machine::MachineConfig;
use pkvm_hyp::mm::compute_layout;
use pkvm_hyp::owner::PageState;
use pkvm_hyp::vm::Handle;

use crate::abscache::{AbsCache, CacheKey, CacheStats};
use crate::abstraction::{
    abstract_host, abstract_host_from_interp, abstract_hyp, abstract_vm, abstract_vm_with_pgt,
    interpret_pgtable, Anomaly,
};
use crate::calldata::GhostCallData;
use crate::check::{check_trap, normalize, Violation};
use crate::checker::{
    checker_loop, CheckMode, CheckMsg, Checker, Pipeline, StatsSnapshot, Verdict,
};
use crate::containment::{contain, Disposition, Quarantine};
use crate::diff::diff_states;
use crate::event::{Event, EventSink, EventStream};
use crate::maplet::{Maplet, MapletTarget};
use crate::spec::{abs_hyp_attrs, compute_post, SpecVerdict};
use crate::state::{
    AbstractPgtable, GhostCpu, GhostGlobals, GhostHost, GhostLoadedVcpu, GhostPkvm, GhostState,
};

/// Oracle configuration switches.
///
/// Construct with [`OracleOpts::builder`] (or [`Default`]): the builder
/// keeps call sites valid as switches are added.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct OracleOpts {
    /// Check that lock-protected state is unchanged between critical
    /// sections (§4.4 invariant 1).
    pub check_noninterference: bool,
    /// Check the page-table footprint separation (§4.4 invariant 2).
    pub check_separation: bool,
    /// Serve component abstractions from the incremental cache
    /// ([`AbsCache`]), re-interpreting only write-log-dirtied subtrees.
    pub incremental_abstraction: bool,
    /// Run the full and incremental abstractions side by side and report
    /// any divergence as an oracle self-check violation. Implies the
    /// cache is maintained; the *full* result feeds the checks.
    pub shadow_validation: bool,
    /// Upper bound on retained violation reports; excess reports are
    /// dropped and counted in `OracleStats::violations_dropped` so a
    /// pathological run cannot exhaust memory through its own findings.
    pub violation_cap: usize,
    /// Per-trap budget of lock events processed at full fidelity. Beyond
    /// it the oracle degrades: remaining events evict their component
    /// from the shared copy instead of abstracting it, and the trap's
    /// check is skipped (`degraded_traps`). Default is effectively
    /// unlimited.
    pub trap_check_budget: u64,
    /// Consecutive contained panics of one component (or spec step)
    /// before it is quarantined.
    pub quarantine_threshold: u32,
    /// How many traps a quarantined component sits out before it is
    /// recovered by re-seeding from a full abstraction pass.
    pub quarantine_traps: u64,
    /// Where the check core runs relative to the hypervisor: inline in
    /// each hook, or pipelined onto a checker thread behind the
    /// execution frontier. See [`CheckMode`].
    pub check_mode: CheckMode,
    /// Check the break-before-make discipline: every unmap or
    /// permission-tighten of a live mapping must be followed by the
    /// matching-scope broadcast TLBI plus DSB before its trap exits,
    /// else [`Violation::BreakBeforeMake`] anchored on the offending
    /// table write.
    pub check_break_before_make: bool,
    /// Check that the host never regains stage-2 access to a page donated
    /// to a protected VM as firmware — for the VM's whole lifetime,
    /// including across teardown and handle reuse
    /// ([`Violation::FirmwareProtection`]).
    pub check_firmware_protection: bool,
    /// Check the page-transfer protocol: every ownership transition must
    /// depart from the state the protocol prescribes for its edge
    /// ([`Violation::TransferProtocol`]), and a reclaimed page must reach
    /// the host wiped ([`Violation::ReclaimWipe`]).
    pub check_transfer_protocol: bool,
}

impl Default for OracleOpts {
    fn default() -> Self {
        Self {
            check_noninterference: true,
            check_separation: true,
            incremental_abstraction: false,
            shadow_validation: false,
            violation_cap: 4096,
            trap_check_budget: u64::MAX,
            quarantine_threshold: 3,
            quarantine_traps: 16,
            check_mode: CheckMode::Inline,
            check_break_before_make: true,
            check_firmware_protection: true,
            check_transfer_protocol: true,
        }
    }
}

impl OracleOpts {
    /// Starts a builder from the defaults.
    pub fn builder() -> OracleOptsBuilder {
        OracleOptsBuilder(OracleOpts::default())
    }

    fn uses_cache(&self) -> bool {
        self.incremental_abstraction || self.shadow_validation
    }
}

/// Builder for [`OracleOpts`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleOptsBuilder(OracleOpts);

impl OracleOptsBuilder {
    /// Toggle the §4.4 non-interference check (default on).
    pub fn check_noninterference(mut self, on: bool) -> Self {
        self.0.check_noninterference = on;
        self
    }

    /// Toggle the §4.4 footprint-separation check (default on).
    pub fn check_separation(mut self, on: bool) -> Self {
        self.0.check_separation = on;
        self
    }

    /// Toggle the incremental abstraction cache (default off).
    pub fn incremental_abstraction(mut self, on: bool) -> Self {
        self.0.incremental_abstraction = on;
        self
    }

    /// Toggle shadow validation of the incremental cache (default off).
    pub fn shadow_validation(mut self, on: bool) -> Self {
        self.0.shadow_validation = on;
        self
    }

    /// Bound the retained violation log (default 4096; minimum 1).
    pub fn violation_cap(mut self, cap: usize) -> Self {
        self.0.violation_cap = cap.max(1);
        self
    }

    /// Bound the lock events processed at full fidelity per trap
    /// (default unlimited).
    pub fn trap_check_budget(mut self, budget: u64) -> Self {
        self.0.trap_check_budget = budget;
        self
    }

    /// Consecutive contained panics before quarantine (default 3).
    pub fn quarantine_threshold(mut self, n: u32) -> Self {
        self.0.quarantine_threshold = n;
        self
    }

    /// Quarantine duration in traps (default 16).
    pub fn quarantine_traps(mut self, n: u64) -> Self {
        self.0.quarantine_traps = n;
        self
    }

    /// Where the check core runs (default [`CheckMode::Inline`]).
    pub fn check_mode(mut self, mode: CheckMode) -> Self {
        self.0.check_mode = mode;
        self
    }

    /// Toggle the break-before-make discipline check (default on).
    pub fn check_break_before_make(mut self, on: bool) -> Self {
        self.0.check_break_before_make = on;
        self
    }

    /// Toggle the firmware-protection check (default on).
    pub fn check_firmware_protection(mut self, on: bool) -> Self {
        self.0.check_firmware_protection = on;
        self
    }

    /// Toggle the transfer-protocol check (default on).
    pub fn check_transfer_protocol(mut self, on: bool) -> Self {
        self.0.check_transfer_protocol = on;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> OracleOpts {
        self.0
    }
}

/// One line of the oracle's trap trace: what was checked and how it went.
#[derive(Clone, Debug)]
pub struct TrapRecord {
    /// Hardware thread the trap ran on.
    pub cpu: usize,
    /// Handler name (hypercall name, `host_abort`, `smc`, ...).
    pub name: String,
    /// `Ok`: checked and clean. `Err`: number of violations, or the
    /// looseness reason when the check was skipped.
    pub outcome: TrapOutcome,
}

/// How one trap's check concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrapOutcome {
    /// Spec computed and matched.
    Clean,
    /// Spec computed; this many violations were recorded.
    Violated(usize),
    /// The loose specification skipped the check.
    Unchecked(String),
}

/// Counters reported alongside violations (for the evaluation harness).
#[derive(Debug, Default)]
pub struct OracleStats {
    /// Traps whose spec was computed and checked.
    pub traps_checked: AtomicU64,
    /// Traps skipped under the loose specification (`Unchecked`).
    pub traps_unchecked: AtomicU64,
    /// Component abstractions computed (lock events).
    pub abstractions: AtomicU64,
    /// Individual `READ_ONCE` values recorded.
    pub read_onces: AtomicU64,
    /// Per-component checks skipped because a foreign trap updated the
    /// component between two of the checked trap's critical sections
    /// (the atomic per-trap comparison does not apply).
    pub interleaved_skips: AtomicU64,
    /// Oracle-internal panics caught and converted into
    /// [`Violation::OracleInternal`] instead of unwinding the caller.
    pub contained_panics: AtomicU64,
    /// Hook events skipped because their component (or spec step) was
    /// quarantined after repeated contained panics.
    pub quarantined_skips: AtomicU64,
    /// Quarantined components recovered by re-seeding from a full
    /// abstraction pass once their bench time expired.
    pub quarantine_recoveries: AtomicU64,
    /// Violation reports dropped because the bounded log was full.
    pub violations_dropped: AtomicU64,
    /// Traps whose check was skipped because the per-trap check budget
    /// ran out mid-trap.
    pub degraded_traps: AtomicU64,
    /// Lock events degraded to a shared-copy eviction (no abstraction)
    /// because the per-trap check budget was exhausted.
    pub budget_degraded_events: AtomicU64,
}

/// A plain-value snapshot of the oracle's resilience counters: everything
/// that says "the oracle absorbed trouble without crashing". Campaign
/// reports carry this so a chaos sweep can distinguish *degraded but
/// safe* from *saw nothing*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceSnapshot {
    /// See [`OracleStats::contained_panics`].
    pub contained_panics: u64,
    /// See [`OracleStats::quarantined_skips`].
    pub quarantined_skips: u64,
    /// See [`OracleStats::quarantine_recoveries`].
    pub quarantine_recoveries: u64,
    /// See [`OracleStats::violations_dropped`].
    pub violations_dropped: u64,
    /// See [`OracleStats::degraded_traps`].
    pub degraded_traps: u64,
    /// See [`OracleStats::budget_degraded_events`].
    pub budget_degraded_events: u64,
    /// See [`OracleStats::interleaved_skips`].
    pub interleaved_skips: u64,
}

impl ResilienceSnapshot {
    /// `true` when any degradation or containment machinery fired.
    pub fn degraded(&self) -> bool {
        self.contained_panics
            + self.quarantined_skips
            + self.quarantine_recoveries
            + self.violations_dropped
            + self.degraded_traps
            + self.budget_degraded_events
            > 0
    }
}

impl OracleStats {
    /// Snapshots the resilience counters.
    pub fn resilience(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            contained_panics: self.contained_panics.load(Ordering::Relaxed),
            quarantined_skips: self.quarantined_skips.load(Ordering::Relaxed),
            quarantine_recoveries: self.quarantine_recoveries.load(Ordering::Relaxed),
            violations_dropped: self.violations_dropped.load(Ordering::Relaxed),
            degraded_traps: self.degraded_traps.load(Ordering::Relaxed),
            budget_degraded_events: self.budget_degraded_events.load(Ordering::Relaxed),
            interleaved_skips: self.interleaved_skips.load(Ordering::Relaxed),
        }
    }
}

/// Key of one shared-copy component (the update-stamp granularity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum CompKey {
    Host,
    Pkvm,
    VmTable,
    Vm(Handle),
}

/// The spec's component naming for a lock-protected [`Component`]: the
/// same strings `check_trap` produces (`host`, `pkvm`, `vm_table`,
/// `vm[<handle>]`), so every report — and every quarantine key — greps
/// the same way.
fn comp_name(comp: Component) -> String {
    match comp {
        Component::Host => "host".into(),
        Component::Hyp => "pkvm".into(),
        Component::VmTable => "vm_table".into(),
        Component::Vm(h) => format!("vm[{h}]"),
    }
}

/// The shared-copy key of a lock-protected [`Component`].
fn comp_key_of(comp: Component) -> CompKey {
    match comp {
        Component::Host => CompKey::Host,
        Component::Hyp => CompKey::Pkvm,
        Component::VmTable => CompKey::VmTable,
        Component::Vm(h) => CompKey::Vm(h),
    }
}

/// Parses the spec's component naming (`host`, `pkvm`, `vm_table`,
/// `vm[<handle>]`) into a shared-copy key. `locals[..]` and malformed
/// names yield `None`.
fn comp_key_of_name(name: &str) -> Option<CompKey> {
    match name {
        "host" => Some(CompKey::Host),
        "pkvm" => Some(CompKey::Pkvm),
        "vm_table" => Some(CompKey::VmTable),
        c => c
            .strip_prefix("vm[")
            .and_then(|rest| rest.strip_suffix(']'))
            .and_then(|h| h.parse::<Handle>().ok())
            .map(CompKey::Vm),
    }
}

impl ComponentValue {
    fn key(&self) -> CompKey {
        match self {
            ComponentValue::Host(_) => CompKey::Host,
            ComponentValue::Pkvm(_) => CompKey::Pkvm,
            ComponentValue::VmTable(..) => CompKey::VmTable,
            ComponentValue::Vm(h, ..) => CompKey::Vm(*h),
        }
    }
}

/// The single shared copy of the ghost state (§4.4 invariant 1), plus a
/// monotonic update stamp per component so concurrent traps can tell
/// whether a component moved underneath them while they ran.
struct SharedGhost {
    state: GhostState,
    versions: HashMap<CompKey, u64>,
    tick: u64,
    /// Incarnation id ([`pkvm_hyp::vm::Vm::uniq`]) of the VM whose state
    /// `state.vms[handle]` currently holds. Handles are slot-derived and
    /// reused after teardown, and `do_teardown_vm` releases the dying VM's
    /// lock *after* dropping the table lock, so without this a dead VM's
    /// final abstraction could overwrite (and later be compared against) a
    /// fresh VM that concurrently reused the handle.
    vm_uniq: HashMap<Handle, u64>,
}

impl SharedGhost {
    /// Records `value` into the shared copy and stamps the component.
    ///
    /// VM components are gated by incarnation: a recording from an older
    /// incarnation of a (reused) handle never lands on top of a newer
    /// one, and a release from a VM no longer in the recorded table (the
    /// tail of teardown) is dropped rather than resurrecting the dead
    /// VM's state. Recording the VM table prunes the state of every VM
    /// that left it.
    fn set(&mut self, value: &ComponentValue) {
        match value {
            ComponentValue::VmTable(vms, uniqs) => {
                let dead: Vec<Handle> = self
                    .state
                    .vms
                    .keys()
                    .copied()
                    .filter(|h| !vms.iter().any(|&(live, _)| live == *h))
                    .collect();
                for h in dead {
                    self.state.vms.remove(&h);
                    self.stamp(CompKey::Vm(h));
                }
                self.vm_uniq
                    .retain(|h, _| vms.iter().any(|&(live, _)| live == *h));
                for &(h, uniq) in uniqs {
                    if let Some(old) = self.vm_uniq.insert(h, uniq) {
                        if old != uniq && self.state.vms.remove(&h).is_some() {
                            // The stored state belonged to a previous
                            // incarnation of this handle; not comparable.
                            self.stamp(CompKey::Vm(h));
                        }
                    }
                }
            }
            ComponentValue::Vm(h, uniq, _) => {
                match self.vm_uniq.get(h) {
                    Some(&stored) if stored > *uniq => return,
                    None => {
                        let live = self
                            .state
                            .vm_table
                            .as_ref()
                            .is_none_or(|t| t.iter().any(|&(lh, _)| lh == *h));
                        if !live {
                            // The tail of a teardown: the table no longer
                            // lists this VM, so its dying abstraction must
                            // not re-enter the shared copy.
                            return;
                        }
                    }
                    _ => {}
                }
                self.vm_uniq.insert(*h, *uniq);
            }
            _ => {}
        }
        self.tick += 1;
        self.versions.insert(value.key(), self.tick);
        Oracle::set_component(&mut self.state, value, false);
    }

    /// Bumps the stamp of `key` without going through a component value
    /// (deferred seeding writes the spec-computed state directly).
    fn stamp(&mut self, key: CompKey) {
        self.tick += 1;
        self.versions.insert(key, self.tick);
    }
}

/// The mutator-side mirror of one CPU's trap progress: everything the
/// *front half* of the hooks needs without waiting on the checker. The
/// check-side twin is [`CpuRecord`], which only the back half touches —
/// in pipelined mode the two live on different threads.
struct FrontRecord {
    in_trap: bool,
    /// Event-stream sequence id of the running trap's `TrapEnter`.
    trap_seq: Option<u64>,
    /// `(esr, x0-at-entry)` of the running trap, enough to name the trap
    /// at exit without the back half's call data. `None` mirrors "no
    /// recorded call data" (trap_enter was never delivered).
    call_mirror: Option<(Esr, u64)>,
    /// Lock events processed so far within this trap (the per-trap check
    /// budget's spend counter).
    events_this_trap: u64,
    /// The budget ran out mid-trap: remaining events degrade to evictions
    /// and the trap's check is skipped.
    degraded: bool,
}

/// The check-side recording of one CPU's trap (the paper's thread-local
/// pre/post states). Only the back half ([`Oracle::apply_msg`]) touches
/// it; whether a trap is running is the front half's call
/// ([`FrontRecord::in_trap`]), passed down in each message's `trap`.
struct CpuRecord {
    pre: GhostState,
    post: GhostState,
    call: Option<GhostCallData>,
    /// Shared-copy component stamps at trap entry: deferred seeding only
    /// lands if the component has not moved since (otherwise a concurrent
    /// trap's legitimate update would be overwritten with a stale
    /// expectation, and the next acquisition would report a spurious
    /// non-interference violation).
    versions_at_entry: HashMap<CompKey, u64>,
    /// Shared-copy stamp left by this trap's most recent release of each
    /// component, so a re-acquisition can tell whether a *foreign* trap
    /// updated the component between two of this trap's own critical
    /// sections.
    last_release: HashMap<CompKey, u64>,
    /// Components a foreign trap updated between two of this trap's
    /// critical sections. The per-trap check pretends the handler ran
    /// atomically; for these components it did not, so their comparison
    /// is skipped (the ternary check's "unchecked" answer) instead of
    /// reporting a spurious mismatch.
    interleaved: HashSet<CompKey>,
    /// Event-stream sequence id of this trap's `TrapEnter`, so every
    /// event and violation produced inside the trap links back to it.
    trap_seq: Option<u64>,
}

/// One table write that removed or tightened a live mapping, awaiting
/// its break-before-make flush sequence.
struct PendingBreak {
    /// Stream seq of the `PteDowngrade` event (the offending write).
    seq: u64,
    vmid: u16,
    ia: u64,
    nr: u64,
    /// A covering broadcast TLBI has been seen; the next DSB retires it.
    tlbi_done: bool,
}

/// The downgrade's span in byte addresses, overflow-safe (`nr` may be
/// `u64::MAX` for a VMID-wide downgrade).
fn bbm_span(ia: u64, nr: u64) -> (u128, u128) {
    let start = ia as u128;
    (start, start + nr as u128 * PAGE_SIZE as u128)
}

/// Back-half ledger for the break-before-make check, keyed by the CPU
/// that performed the table write: break, TLBI, and DSB are steps of a
/// single trap, and a trap runs on one CPU. Leftovers at trap exit are
/// the violations.
#[derive(Default)]
struct BbmTracker {
    pending: HashMap<usize, Vec<PendingBreak>>,
}

impl BbmTracker {
    fn note_break(&mut self, cpu: usize, seq: u64, vmid: u16, ia: u64, nr: u64) {
        self.pending.entry(cpu).or_default().push(PendingBreak {
            seq,
            vmid,
            ia,
            nr,
            tlbi_done: false,
        });
    }

    /// A broadcast TLBI on `cpu`: marks every pending break of the same
    /// VMID whose span it covers. Non-broadcast TLBIs never come here —
    /// they cannot retire a break other CPUs may still hold stale.
    fn note_tlbi(&mut self, cpu: usize, vmid: u16, ia: u64, nr: u64) {
        let Some(list) = self.pending.get_mut(&cpu) else {
            return;
        };
        let (t_start, t_end) = bbm_span(ia, nr);
        for b in list.iter_mut() {
            let (b_start, b_end) = bbm_span(b.ia, b.nr);
            if b.vmid == vmid && b_start >= t_start && b_end <= t_end {
                b.tlbi_done = true;
            }
        }
    }

    /// A DSB on `cpu` completes the outstanding TLBIs: retires every
    /// break they covered.
    fn note_dsb(&mut self, cpu: usize) {
        if let Some(list) = self.pending.get_mut(&cpu) {
            list.retain(|b| !b.tlbi_done);
        }
    }

    /// Takes everything still pending on `cpu` (the trap is exiting;
    /// whatever is left breached the discipline).
    fn drain(&mut self, cpu: usize) -> Vec<PendingBreak> {
        self.pending.remove(&cpu).unwrap_or_default()
    }
}

/// A page's position in the ownership-transfer protocol, as the oracle's
/// edge ledger tracks it. Pages start (and mostly live) in `HostOwned`;
/// `FirmwareOwned` is terminal — firmware is retained by the hypervisor
/// across teardown, so no legal edge ever leaves it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum XferState {
    HostOwned,
    SharedHyp,
    HypOwned,
    GuestOwned,
    GuestShared,
    GuestSharedHost,
    FirmwareOwned,
}

impl XferState {
    fn name(self) -> &'static str {
        match self {
            XferState::HostOwned => "host_owned",
            XferState::SharedHyp => "shared_hyp",
            XferState::HypOwned => "hyp_owned",
            XferState::GuestOwned => "guest_owned",
            XferState::GuestShared => "guest_shared",
            XferState::GuestSharedHost => "guest_shared_host",
            XferState::FirmwareOwned => "firmware_owned",
        }
    }
}

/// Back-half ledger for the transfer-protocol check: one [`XferState`]
/// per page that has ever left host ownership. Every
/// [`TransferEdge`] the hypervisor commits must depart from the state
/// the protocol prescribes; hooks fire under the host lock, so both
/// check modes apply the edges in the same per-page order.
#[derive(Default)]
struct TransferTracker {
    states: HashMap<u64, XferState>,
}

impl TransferTracker {
    /// Runs one page across one protocol edge. `Err` carries the illegal
    /// departure state's name for the violation detail.
    fn cross(&mut self, edge: TransferEdge, pfn: u64) -> Result<(), &'static str> {
        use XferState::*;
        let cur = self.states.get(&pfn).copied().unwrap_or(HostOwned);
        let next = match (edge, cur) {
            (TransferEdge::ShareHyp, HostOwned) => SharedHyp,
            (TransferEdge::UnshareHyp, SharedHyp) => HostOwned,
            (TransferEdge::DonateHyp, HostOwned) => HypOwned,
            (TransferEdge::DonateHost, HypOwned) => HostOwned,
            (TransferEdge::MapGuestOwned, HostOwned) => GuestOwned,
            (TransferEdge::MapGuestShared, HostOwned) => GuestShared,
            (TransferEdge::GuestShareHost, GuestOwned) => GuestSharedHost,
            (TransferEdge::GuestUnshareHost, GuestSharedHost) => GuestOwned,
            (TransferEdge::Firmware, HostOwned) => FirmwareOwned,
            (TransferEdge::Reclaim, GuestOwned | GuestShared | GuestSharedHost) => HostOwned,
            (_, cur) => return Err(cur.name()),
        };
        self.states.insert(pfn, next);
        Ok(())
    }
}

/// One donated firmware page the host must never see again.
struct FirmwarePage {
    handle: Handle,
    uniq: u64,
    /// A violation was already reported for this page; dedupes the
    /// backstop scan, which otherwise re-finds the same breach at every
    /// host lock event.
    reported: bool,
}

/// Back-half ledger for the firmware-protection check. Insert-only: a
/// donation binds the page to its VM incarnation for the rest of the
/// run, surviving teardown and handle reuse (the hypervisor retains
/// firmware forever).
#[derive(Default)]
struct FirmwareTracker {
    pages: HashMap<u64, FirmwarePage>,
}

impl FirmwareTracker {
    fn note_donate(&mut self, handle: Handle, uniq: u64, pfn: u64, nr: u64) {
        for p in pfn..pfn.saturating_add(nr) {
            self.pages.insert(
                p,
                FirmwarePage {
                    handle,
                    uniq,
                    reported: false,
                },
            );
        }
    }

    /// The host regained `[pfn, pfn+nr)`: reports every tracked firmware
    /// page in the range (anchored at the regain event `seq`).
    fn check_regain(&mut self, seq: u64, pfn: u64, nr: u64) -> Vec<Violation> {
        let mut out = Vec::new();
        for p in pfn..pfn.saturating_add(nr) {
            if let Some(fw) = self.pages.get_mut(&p) {
                if !fw.reported {
                    fw.reported = true;
                    out.push(Violation::FirmwareProtection {
                        seq: Some(seq),
                        handle: fw.handle,
                        uniq: fw.uniq,
                        pfn: p,
                    });
                }
            }
        }
        out
    }

    /// Backstop over a freshly abstracted host component: any tracked
    /// page the host's stage 2 can reach again (no longer annotated away
    /// from it) is a breach, even if no regain hook announced it.
    fn scan_host(&mut self, host: &GhostHost) -> Vec<Violation> {
        let mut out = Vec::new();
        for (p, fw) in self.pages.iter_mut() {
            if !fw.reported && host.annot.lookup(p << 12).is_none() {
                fw.reported = true;
                out.push(Violation::FirmwareProtection {
                    seq: None,
                    handle: fw.handle,
                    uniq: fw.uniq,
                    pfn: *p,
                });
            }
        }
        out.sort_by_key(|v| match v {
            Violation::FirmwareProtection { pfn, .. } => *pfn,
            _ => 0,
        });
        out
    }
}

/// The runtime test oracle; install as the machine's [`GhostHooks`].
pub struct Oracle {
    /// The initialisation-time constants, derived independently from the
    /// machine configuration (the spec's own view of the correct layout).
    pub globals: GhostGlobals,
    opts: OracleOpts,
    shared: Mutex<SharedGhost>,
    cpus: Vec<Mutex<CpuRecord>>,
    fronts: Vec<Mutex<FrontRecord>>,
    footprints: Mutex<HashMap<Component, BTreeSet<u64>>>,
    abscache: Mutex<AbsCache>,
    events: Arc<EventStream>,
    quarantine: Quarantine,
    /// `Some` in [`CheckMode::Pipelined`]: the sending half of the
    /// checker's bounded channel.
    pipeline: Option<Pipeline>,
    /// Break-before-make ledger (back-half state, like the shared copy).
    bbm: Mutex<BbmTracker>,
    /// Transfer-protocol ledger (back-half state).
    xfer: Mutex<TransferTracker>,
    /// Firmware-protection ledger (back-half state).
    firmware: Mutex<FirmwareTracker>,
    /// Counters.
    #[deprecated(
        since = "0.6.0",
        note = "scraping the atomics races the pipelined checker; read \
                `Verdict::stats()` (or `Oracle::stats_snapshot`) after a \
                `wait()` instead"
    )]
    pub stats: OracleStats,
}

impl Oracle {
    /// Builds an oracle for machines booted from `config`.
    ///
    /// The globals are *derived from the configuration*, not copied from
    /// the booted machine: the oracle computes what a correct layout looks
    /// like, so layout bugs (real bug 5) surface at the boot check.
    pub fn new(config: &MachineConfig, opts: OracleOpts) -> Arc<Oracle> {
        let events = Arc::new(EventStream::new(false, opts.violation_cap));
        Oracle::with_stream(config, opts, events)
    }

    /// Like [`Oracle::new`], but recording into a caller-provided
    /// [`EventStream`] — the harness shares one stream between the proxy
    /// (driver events), the chaos engine (injections), and the oracle, so
    /// a whole campaign lands on one timeline.
    pub fn with_stream(
        config: &MachineConfig,
        opts: OracleOpts,
        events: Arc<EventStream>,
    ) -> Arc<Oracle> {
        let (last_base, last_size) = *config.dram.last().expect("config has DRAM");
        let ram_end = last_base + last_size;
        let pool_base_pfn = (ram_end - config.hyp_pool_pages * PAGE_SIZE) >> 12;
        let layout = compute_layout(PhysAddr::new(ram_end), false).expect("layout fits");
        let globals = GhostGlobals {
            nr_cpus: config.nr_cpus,
            physvirt_offset: layout.physvirt_offset,
            uart_va: layout.uart_va.bits(),
            hyp_range: (pool_base_pfn, config.hyp_pool_pages),
            ram: config.dram.clone(),
            mmio: config.mmio.clone(),
        };
        let shared = GhostState::blank(&globals);
        let (pipeline, rx) = match opts.check_mode {
            CheckMode::Inline => (None, None),
            CheckMode::Pipelined { channel_cap, .. } => {
                // Messages travel in batches (one per trap, or `flush`
                // messages, whichever comes first); the channel is sized
                // in batches so `channel_cap` keeps bounding the number
                // of in-flight *messages* at batch granularity.
                let flush = channel_cap.clamp(1, 64);
                let (tx, rx) = mpsc::sync_channel(channel_cap.max(1).div_ceil(flush));
                (Some(Pipeline::new(tx, flush)), Some(rx))
            }
        };
        let oracle = Arc::new(Oracle {
            cpus: (0..config.nr_cpus)
                .map(|_| {
                    Mutex::new(CpuRecord {
                        pre: GhostState::blank(&globals),
                        post: GhostState::blank(&globals),
                        call: None,
                        versions_at_entry: HashMap::new(),
                        last_release: HashMap::new(),
                        interleaved: HashSet::new(),
                        trap_seq: None,
                    })
                })
                .collect(),
            fronts: (0..config.nr_cpus)
                .map(|_| {
                    Mutex::new(FrontRecord {
                        in_trap: false,
                        trap_seq: None,
                        call_mirror: None,
                        events_this_trap: 0,
                        degraded: false,
                    })
                })
                .collect(),
            globals,
            opts,
            shared: Mutex::new(SharedGhost {
                state: shared,
                versions: HashMap::new(),
                tick: 0,
                vm_uniq: HashMap::new(),
            }),
            footprints: Mutex::new(HashMap::new()),
            abscache: Mutex::new(AbsCache::new()),
            events,
            quarantine: Quarantine::new(opts.quarantine_threshold, opts.quarantine_traps),
            pipeline,
            bbm: Mutex::new(BbmTracker::default()),
            xfer: Mutex::new(TransferTracker::default()),
            firmware: Mutex::new(FirmwareTracker::default()),
            stats: OracleStats::default(),
        });
        if let Some(rx) = rx {
            // The thread holds only a weak reference: dropping the last
            // external handle drops the sender, disconnects the channel,
            // and the thread exits.
            let weak = Arc::downgrade(&oracle);
            std::thread::Builder::new()
                .name("ghost-checker".into())
                .spawn(move || checker_loop(weak, rx))
                .expect("spawn checker thread");
        }
        oracle
    }

    /// Starts a builder for machines booted from `config`; configure the
    /// switches fluently, then [`build`](OracleBuilder::build).
    pub fn builder(config: &MachineConfig) -> OracleBuilder<'_> {
        OracleBuilder {
            config,
            opts: OracleOpts::default(),
            events: None,
        }
    }

    /// A [`Checker`] handle over this oracle (mode inspection, explicit
    /// synchronisation).
    pub fn checker(self: &Arc<Self>) -> Checker {
        Checker::new(self.clone())
    }

    /// A [`Verdict`] handle over this oracle: `wait()` then read the
    /// violations and stats, instead of scraping the atomics directly.
    pub fn verdict(self: &Arc<Self>) -> Verdict {
        Verdict::new(self.clone())
    }

    /// The configured [`CheckMode`].
    pub fn check_mode(&self) -> CheckMode {
        self.opts.check_mode
    }

    /// Blocks until every hook event emitted so far has been checked.
    /// A no-op in [`CheckMode::Inline`].
    pub fn barrier(&self) {
        if let Some(p) = &self.pipeline {
            p.barrier();
        }
    }

    /// (sent, applied) checker-message counts; `(0, 0)` inline.
    pub(crate) fn frontier(&self) -> (u64, u64) {
        self.pipeline.as_ref().map_or((0, 0), |p| p.frontier())
    }

    /// A coherent plain-value snapshot of the counters. In pipelined mode
    /// call [`Oracle::barrier`] (or go through [`Verdict`]) first, or the
    /// snapshot can straddle the check frontier.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let s = &self.stats;
        StatsSnapshot {
            traps_checked: s.traps_checked.load(Ordering::Relaxed),
            traps_unchecked: s.traps_unchecked.load(Ordering::Relaxed),
            abstractions: s.abstractions.load(Ordering::Relaxed),
            read_onces: s.read_onces.load(Ordering::Relaxed),
            interleaved_skips: s.interleaved_skips.load(Ordering::Relaxed),
            contained_panics: s.contained_panics.load(Ordering::Relaxed),
            quarantined_skips: s.quarantined_skips.load(Ordering::Relaxed),
            quarantine_recoveries: s.quarantine_recoveries.load(Ordering::Relaxed),
            violations_dropped: s.violations_dropped.load(Ordering::Relaxed),
            degraded_traps: s.degraded_traps.load(Ordering::Relaxed),
            budget_degraded_events: s.budget_degraded_events.load(Ordering::Relaxed),
        }
    }

    /// Hands one back-half message to the check core: applied on the
    /// spot inline (preserving the classic synchronous semantics
    /// bit-for-bit), queued to the checker thread pipelined.
    fn dispatch(&self, msg: CheckMsg) {
        match &self.pipeline {
            None => self.apply_msg(msg),
            Some(p) => p.send(msg),
        }
    }

    /// The checker thread's per-message entry: applies with a containment
    /// net (a panicking check becomes a quarantine strike plus an
    /// [`Violation::OracleInternal`], never a dead checker thread) and
    /// advances the applied counter. Inline mode never comes through
    /// here — the hook's own containment wraps the synchronous apply,
    /// exactly as the classic oracle contained it.
    pub(crate) fn apply_counted(&self, msg: CheckMsg) {
        if let CheckMsg::Barrier(gate) = msg {
            if let Some(p) = &self.pipeline {
                p.note_applied();
            }
            let (lock, cvar) = &*gate;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cvar.notify_all();
            return;
        }
        let key = match &msg {
            CheckMsg::TrapEnter { .. } => "trap_enter".to_string(),
            CheckMsg::TrapExit { .. } => "trap_exit".to_string(),
            CheckMsg::LockAcquired { comp, .. } | CheckMsg::LockReleasing { comp, .. } => {
                comp_name(*comp)
            }
            CheckMsg::ReadOnce { .. } => "read_once".to_string(),
            _ => "checker".to_string(),
        };
        let res = contain(|| self.apply_msg(msg));
        if let Some(p) = &self.pipeline {
            p.note_applied();
        }
        if let Err(payload) = res {
            self.stats.contained_panics.fetch_add(1, Ordering::Relaxed);
            self.quarantine.record_failure(&key);
            self.report_all_at(
                0,
                None,
                vec![Violation::OracleInternal {
                    seq: None,
                    component: key,
                    payload,
                }],
            );
        }
    }

    /// Resolution counters of the incremental abstraction cache (all zero
    /// unless `incremental_abstraction` or `shadow_validation` is on).
    pub fn cache_stats(&self) -> CacheStats {
        self.abscache.lock().stats
    }

    /// The event stream this oracle records into.
    pub fn events(&self) -> &Arc<EventStream> {
        &self.events
    }

    /// All violations recorded so far (served from the event stream's
    /// bounded log).
    pub fn violations(&self) -> Vec<Violation> {
        self.events.violations()
    }

    /// Number of violations recorded so far, without cloning the reports.
    /// A single relaxed atomic load: cheap enough for worker threads of a
    /// random-testing campaign to poll every few steps.
    pub fn violation_count(&self) -> u64 {
        self.events.violation_count()
    }

    /// Returns `true` if no violations have been recorded.
    pub fn is_clean(&self) -> bool {
        self.violation_count() == 0
    }

    /// Drops all recorded violations (between test cases). Synchronises
    /// with the checker first, so a pending report from the cleared era
    /// cannot land after the clear.
    pub fn clear_violations(&self) {
        self.barrier();
        self.events.clear_violations();
    }

    /// The most recent checked traps (bounded; newest last; served from
    /// the event stream's check ring).
    pub fn trace(&self) -> Vec<TrapRecord> {
        self.events.trap_records()
    }

    fn push_trace(&self, trap: Option<u64>, rec: TrapRecord) {
        self.events.emit(
            rec.cpu as u32,
            trap,
            Event::Check {
                cpu: rec.cpu,
                name: rec.name,
                outcome: rec.outcome,
            },
        );
    }

    fn report(&self, v: Violation) {
        self.report_all_at(0, None, vec![v]);
    }

    fn report_at(&self, cpu: usize, trap: Option<u64>, v: Violation) {
        self.report_all_at(cpu, trap, vec![v]);
    }

    fn report_all_at(&self, cpu: usize, trap: Option<u64>, mut new: Vec<Violation>) {
        self.annotate_vm_uniq(&mut new);
        for v in new {
            if !self.events.violation(cpu as u32, trap, v) {
                self.stats
                    .violations_dropped
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Fills in the VM incarnation id on reports about a `vm[<handle>]`
    /// component, from the shared copy's incarnation table. (Reports that
    /// already know their incarnation keep it.)
    fn annotate_vm_uniq(&self, vs: &mut [Violation]) {
        let wants = |v: &Violation| {
            v.vm_uniq().is_none()
                && matches!(
                    v.component().and_then(comp_key_of_name),
                    Some(CompKey::Vm(_))
                )
        };
        if !vs.iter().any(wants) {
            return;
        }
        let guard = self.shared.lock();
        for v in vs.iter_mut() {
            if let Some(CompKey::Vm(h)) = v.component().and_then(comp_key_of_name) {
                if let Some(&u) = guard.vm_uniq.get(&h) {
                    v.set_vm_uniq(u);
                }
            }
        }
    }

    /// Runs one front-half oracle step with panics contained: a panic
    /// becomes a [`Violation::OracleInternal`] and a strike against
    /// `key`'s quarantine record, never an unwind into the hypervisor.
    /// The report is routed through the pipeline ([`CheckMsg::Report`])
    /// like every front-originated violation, so the derived sequence
    /// numbering is identical in both check modes.
    fn guarded(&self, key: &str, f: impl FnOnce()) {
        match contain(f) {
            Ok(()) => self.quarantine.record_success(key),
            Err(payload) => {
                self.stats.contained_panics.fetch_add(1, Ordering::Relaxed);
                self.quarantine.record_failure(key);
                self.dispatch(CheckMsg::Report {
                    cpu: 0,
                    trap: None,
                    violations: vec![Violation::OracleInternal {
                        seq: None,
                        component: key.to_string(),
                        payload,
                    }],
                });
            }
        }
    }

    /// Sequence id of the trap currently executing on `cpu`, if any
    /// (front-half knowledge: the mutator is the one inside the trap).
    fn current_trap(&self, cpu: usize) -> Option<u64> {
        let front = self.fronts[cpu].lock();
        if front.in_trap {
            front.trap_seq
        } else {
            None
        }
    }

    /// Degrades one lock event: instead of abstracting the component, its
    /// entry is evicted from the shared copy (and stamped), so nothing
    /// stale is ever compared later. Used when the component is
    /// quarantined or the per-trap budget ran out — the cheap-but-safe
    /// fallback.
    fn evict_shared(&self, comp: Component) {
        let key = comp_key_of(comp);
        let mut shared = self.shared.lock();
        match key {
            CompKey::Host => shared.state.host = None,
            CompKey::Pkvm => shared.state.pkvm = None,
            CompKey::VmTable => shared.state.vm_table = None,
            CompKey::Vm(h) => {
                shared.state.vms.remove(&h);
            }
        }
        shared.stamp(key);
    }

    /// Accounts one lock event against the per-trap check budget. `true`
    /// means the budget is spent: the caller must degrade this event.
    fn budget_exhausted(&self, cpu: usize) -> bool {
        let mut front = self.fronts[cpu].lock();
        if !front.in_trap {
            return false;
        }
        front.events_this_trap += 1;
        if front.events_this_trap > self.opts.trap_check_budget {
            front.degraded = true;
            true
        } else {
            false
        }
    }

    /// Bookkeeping for a lock event skipped under quarantine: count it,
    /// then have the back half evict the component so nothing stale is
    /// compared, marking it interleaved so the running trap's check
    /// ignores it.
    fn note_quarantine_skip(&self, cpu: usize, trap: Option<u64>, comp: Component) {
        self.stats.quarantined_skips.fetch_add(1, Ordering::Relaxed);
        self.dispatch(CheckMsg::Evict {
            cpu,
            trap,
            comp,
            quarantine: true,
        });
    }

    /// Number of components (or spec steps) currently quarantined.
    pub fn quarantined(&self) -> usize {
        self.quarantine.active()
    }

    /// Approximate resident size of the ghost state, in bytes (for the
    /// paper's memory-impact measurement).
    pub fn approx_ghost_bytes(&self) -> usize {
        fn state_bytes(s: &GhostState) -> usize {
            let mapping = |m: &crate::mapping::Mapping| m.len() * core::mem::size_of::<Maplet>();
            let mut n = core::mem::size_of::<GhostState>();
            if let Some(h) = &s.host {
                n += mapping(&h.annot) + mapping(&h.shared) + h.table_pages.len() * 8;
            }
            if let Some(p) = &s.pkvm {
                n += mapping(&p.pgt.mapping) + p.pgt.table_pages.len() * 8;
            }
            for vm in s.vms.values() {
                n += mapping(&vm.pgt.mapping) + vm.pgt.table_pages.len() * 8;
                n += vm.vcpus.len() * core::mem::size_of::<crate::state::GhostVcpu>();
            }
            n += s.locals.len() * core::mem::size_of::<GhostCpu>();
            n
        }
        let mut total = state_bytes(&self.shared.lock().state);
        for c in &self.cpus {
            let rec = c.lock();
            total += state_bytes(&rec.pre) + state_bytes(&rec.post);
        }
        total
    }

    /// The component abstraction function: dispatches on the view the
    /// lock helper provided. Runs on the mutator thread — the one oracle
    /// step that *must* happen under the component's lock. Anomalies and
    /// shadow divergences are returned (in occurrence order) rather than
    /// reported, so the back half can report them in checker order.
    fn abstract_component(
        &self,
        ctx: &HookCtx<'_>,
        view: &ComponentView,
        comp: Component,
    ) -> (ComponentValue, Vec<Violation>) {
        self.stats.abstractions.fetch_add(1, Ordering::Relaxed);
        let cached = self.opts.uses_cache();
        let mut anomalies = Vec::new();
        let mut reports = Vec::new();
        let value = match view {
            ComponentView::Host { root } if cached => {
                let interp = self.cached_interp(
                    ctx,
                    Stage::Stage2,
                    *root,
                    CacheKey::Host,
                    &mut anomalies,
                    &mut reports,
                );
                ComponentValue::Host(abstract_host_from_interp(
                    interp,
                    &self.globals,
                    &mut anomalies,
                ))
            }
            ComponentView::Host { root } => {
                ComponentValue::Host(abstract_host(ctx.mem, *root, &self.globals, &mut anomalies))
            }
            ComponentView::Hyp { root } if cached => {
                let pgt = self.cached_interp(
                    ctx,
                    Stage::Stage1,
                    *root,
                    CacheKey::Hyp,
                    &mut anomalies,
                    &mut reports,
                );
                ComponentValue::Pkvm(GhostPkvm { pgt })
            }
            ComponentView::Hyp { root } => {
                ComponentValue::Pkvm(abstract_hyp(ctx.mem, *root, &mut anomalies))
            }
            ComponentView::VmTable { vms, uniqs } => {
                let mut v = vms.clone();
                v.sort_unstable();
                let mut u = uniqs.clone();
                u.sort_unstable();
                if cached {
                    // VM teardown is observed here: drop the interpretation
                    // of any handle no longer in the table, so a reused
                    // handle never resurrects a stale entry.
                    self.abscache
                        .lock()
                        .retain_vms(|h| v.iter().any(|&(live, _)| live == h));
                }
                ComponentValue::VmTable(v, u)
            }
            ComponentView::Vm(view) if cached => {
                let pgt = self.cached_interp(
                    ctx,
                    Stage::Stage2,
                    view.s2_root,
                    CacheKey::Vm(view.handle),
                    &mut anomalies,
                    &mut reports,
                );
                ComponentValue::Vm(view.handle, view.uniq, abstract_vm_with_pgt(view, pgt))
            }
            ComponentView::Vm(view) => ComponentValue::Vm(
                view.handle,
                view.uniq,
                abstract_vm(ctx.mem, view, &mut anomalies),
            ),
        };
        let context = format!("{comp:?}");
        reports.extend(
            anomalies
                .into_iter()
                .map(|a| Violation::AbstractionAnomaly {
                    seq: None,
                    context: context.clone(),
                    anomaly: a,
                }),
        );
        (value, reports)
    }

    /// Interprets `root` through the incremental cache. Under shadow
    /// validation the full walk also runs; a divergence is collected into
    /// `reports` as an oracle self-check violation and the full result
    /// wins, so a cache bug can never mask (or fabricate) a hypervisor
    /// bug.
    fn cached_interp(
        &self,
        ctx: &HookCtx<'_>,
        stage: Stage,
        root: PhysAddr,
        key: CacheKey,
        anomalies: &mut Vec<Anomaly>,
        reports: &mut Vec<Violation>,
    ) -> AbstractPgtable {
        if !self.opts.shadow_validation {
            return self
                .abscache
                .lock()
                .interp(ctx.mem, stage, root, key, anomalies);
        }
        let mut inc_anomalies = Vec::new();
        let inc = self
            .abscache
            .lock()
            .interp(ctx.mem, stage, root, key, &mut inc_anomalies);
        let before = anomalies.len();
        let full = interpret_pgtable(ctx.mem, stage, root, anomalies);
        if inc != full || inc_anomalies != anomalies[before..] {
            reports.push(Violation::ShadowDivergence {
                seq: None,
                component: format!("{key:?}"),
                diff: pgtable_divergence(&full, &inc, &anomalies[before..], &inc_anomalies),
            });
        }
        full
    }

    fn set_component(state: &mut GhostState, value: &ComponentValue, only_if_absent: bool) {
        match value {
            ComponentValue::Host(h) => {
                if !(only_if_absent && state.host.is_some()) {
                    state.host = Some(h.clone());
                }
            }
            ComponentValue::Pkvm(p) => {
                if !(only_if_absent && state.pkvm.is_some()) {
                    state.pkvm = Some(p.clone());
                }
            }
            ComponentValue::VmTable(t, _) => {
                if !(only_if_absent && state.vm_table.is_some()) {
                    state.vm_table = Some(t.clone());
                }
            }
            ComponentValue::Vm(h, _, vm) => {
                if !(only_if_absent && state.vms.contains_key(h)) {
                    state.vms.insert(*h, vm.clone());
                }
            }
        }
    }

    fn noninterference_check(
        &self,
        cpu: usize,
        trap: Option<u64>,
        comp: Component,
        value: &ComponentValue,
    ) {
        if !self.opts.check_noninterference {
            return;
        }
        let guard = self.shared.lock();
        let shared = &guard.state;
        let (prev, now): (GhostState, GhostState) = match value {
            ComponentValue::Host(h) => {
                let Some(p) = &shared.host else { return };
                (
                    GhostState {
                        host: Some(p.clone()),
                        ..GhostState::default()
                    },
                    GhostState {
                        host: Some(h.clone()),
                        ..GhostState::default()
                    },
                )
            }
            ComponentValue::Pkvm(p2) => {
                let Some(p) = &shared.pkvm else { return };
                (
                    GhostState {
                        pkvm: Some(p.clone()),
                        ..GhostState::default()
                    },
                    GhostState {
                        pkvm: Some(p2.clone()),
                        ..GhostState::default()
                    },
                )
            }
            ComponentValue::VmTable(t, _) => {
                let Some(p) = &shared.vm_table else { return };
                (
                    GhostState {
                        vm_table: Some(p.clone()),
                        ..GhostState::default()
                    },
                    GhostState {
                        vm_table: Some(t.clone()),
                        ..GhostState::default()
                    },
                )
            }
            ComponentValue::Vm(h, uniq, vm) => {
                if guard.vm_uniq.get(h).is_some_and(|&stored| stored != *uniq) {
                    // The stored state belongs to a different incarnation
                    // of this (reused) handle; nothing comparable.
                    return;
                }
                let Some(p) = shared.vms.get(h) else { return };
                let mut a = GhostState::default();
                a.vms.insert(*h, p.clone());
                let mut b = GhostState::default();
                b.vms.insert(*h, vm.clone());
                (a, b)
            }
        };
        drop(guard);
        let (prev_n, now_n) = (normalize(&prev), normalize(&now));
        if prev_n != now_n {
            let uniq = match value {
                ComponentValue::Vm(_, u, _) => Some(*u),
                _ => None,
            };
            self.report_at(
                cpu,
                trap,
                Violation::NonInterference {
                    seq: None,
                    component: comp_name(comp),
                    uniq,
                    diff: diff_states(&prev_n, &now_n),
                },
            );
        }
    }

    /// Names a trap from its syndrome and `x0` at entry — exactly the
    /// two values [`FrontRecord::call_mirror`] carries, so the front half
    /// can name the trap without the back half's call data.
    fn trap_name_of(esr: Esr, x0: u64) -> String {
        match esr.ec() {
            Some(pkvm_aarch64::esr::ExceptionClass::Hvc64) => hypercalls::name(x0).to_string(),
            Some(pkvm_aarch64::esr::ExceptionClass::Smc64) => "smc".into(),
            Some(_) => "host_abort".into(),
            None => "unknown".into(),
        }
    }

    fn ghost_cpu(regs: &GprFile, loaded: &Option<(Handle, usize, VcpuView)>) -> GhostCpu {
        GhostCpu {
            regs: *regs,
            loaded: loaded.as_ref().map(|(h, i, v)| GhostLoadedVcpu {
                handle: *h,
                idx: *i,
                regs: v.regs,
                memcache: v.memcache_pages.iter().map(|p| p.pfn()).collect(),
            }),
        }
    }

    /// The specification of the boot-time initial state: carveout
    /// annotated hyp-owned in the host table; carveout linear-mapped and
    /// the UART device-mapped in pKVM's table; no VMs.
    pub fn spec_boot_state(&self) -> GhostState {
        let g = &self.globals;
        let (pool_pfn, pool_pages) = g.hyp_range;
        let pool_base = pool_pfn << 12;
        let mut s = GhostState::blank(g);
        let mut host = GhostHost::default();
        host.annot.insert_new(Maplet {
            ia: pool_base,
            nr_pages: pool_pages,
            target: MapletTarget::Annotated {
                owner: pkvm_hyp::owner::OwnerId::HYP,
            },
        });
        s.host = Some(host);
        let mut pkvm = GhostPkvm::default();
        pkvm.pgt.mapping.insert_new(Maplet {
            ia: g.hyp_va(pool_base),
            nr_pages: pool_pages,
            target: MapletTarget::Mapped {
                oa: pool_base,
                attrs: abs_hyp_attrs(true, PageState::Owned),
            },
        });
        if let Some(&(uart_base, _)) = g.mmio.first() {
            pkvm.pgt.mapping.insert_new(Maplet {
                ia: g.uart_va,
                nr_pages: 1,
                target: MapletTarget::Mapped {
                    oa: uart_base,
                    attrs: abs_hyp_attrs(false, PageState::Owned),
                },
            });
        }
        s.pkvm = Some(pkvm);
        s.vm_table = Some(Vec::new());
        s
    }

    /// Checks the recorded post-boot state against [`Oracle::spec_boot_state`].
    /// Call once after `Machine::boot`. Returns `true` when it matched.
    pub fn check_boot(&self) -> bool {
        // Boot's lock events flow through the pipeline like any others;
        // the shared copy is only complete behind the check frontier.
        self.barrier();
        let expected = normalize(&self.spec_boot_state());
        let recorded = normalize(&self.shared.lock().state.clone());
        let mut ok = true;
        for (name, exp_has, rec_has) in [
            ("host", expected.host.is_some(), recorded.host.is_some()),
            ("pkvm", expected.pkvm.is_some(), recorded.pkvm.is_some()),
        ] {
            if exp_has && !rec_has {
                self.report(Violation::SpecMismatch {
                    seq: None,
                    trap: "boot".into(),
                    component: name.into(),
                    uniq: None,
                    diff: "component never recorded during boot".into(),
                });
                ok = false;
            }
        }
        let mut exp_cmp = expected.clone();
        exp_cmp.vm_table = None; // the VM table lock is not taken at boot
        let mut rec_cmp = recorded.clone();
        rec_cmp.vm_table = None;
        if exp_cmp.host.is_some() && rec_cmp.host.is_some() && exp_cmp != rec_cmp {
            self.report(Violation::SpecMismatch {
                seq: None,
                trap: "boot".into(),
                component: "initial state".into(),
                uniq: None,
                diff: diff_states(&exp_cmp, &rec_cmp),
            });
            ok = false;
        }
        ok
    }

    /// Seeds spec-defined but never-recorded components into the shared
    /// copy after a checked trap, so the *next* acquisition validates
    /// them. Two hardening rules apply. First, seeding runs without the
    /// component's lock, so a computed value only lands if the component
    /// has not moved since this trap entered — otherwise a concurrent
    /// trap's legitimate update would be overwritten with a stale
    /// expectation and the next acquisition would report a spurious
    /// non-interference violation. Second, a malformed component name is
    /// an oracle bug, not a hypervisor bug: it is surfaced as an
    /// [`Violation::OracleSelfCheck`] instead of panicking the run.
    fn seed_deferred(
        &self,
        trap: &str,
        deferred: &[String],
        computed: &GhostState,
        versions_at_entry: &HashMap<CompKey, u64>,
    ) {
        let mut self_check = Vec::new();
        let mut shared = self.shared.lock();
        for comp in deferred {
            let key = match comp_key_of_name(comp) {
                Some(k) => k,
                None => {
                    if comp.starts_with("vm[") {
                        self_check.push(Violation::OracleSelfCheck {
                            seq: None,
                            context: format!("deferred seeding after {trap}"),
                            detail: format!("malformed component name {comp:?}"),
                        });
                    }
                    continue;
                }
            };
            if shared.versions.get(&key) != versions_at_entry.get(&key) {
                // The component moved while this trap ran; the concurrent
                // recording is fresher than our computed expectation.
                continue;
            }
            match key {
                CompKey::Host => {
                    if let Some(h) = &computed.host {
                        shared.state.host = Some(h.clone());
                        shared.stamp(key);
                    }
                }
                CompKey::Pkvm => {
                    if let Some(p) = &computed.pkvm {
                        shared.state.pkvm = Some(p.clone());
                        shared.stamp(key);
                    }
                }
                CompKey::VmTable => {
                    if let Some(t) = &computed.vm_table {
                        shared.state.vm_table = Some(t.clone());
                        shared.stamp(key);
                    }
                }
                CompKey::Vm(h) => {
                    if let Some(vm) = computed.vms.get(&h) {
                        shared.state.vms.insert(h, vm.clone());
                        shared.stamp(key);
                    }
                }
            }
        }
        drop(shared);
        if !self_check.is_empty() {
            self.report_all_at(0, None, self_check);
        }
    }
}

/// Fluent construction of an [`Oracle`]; see [`Oracle::builder`].
pub struct OracleBuilder<'a> {
    config: &'a MachineConfig,
    opts: OracleOpts,
    events: Option<Arc<EventStream>>,
}

impl OracleBuilder<'_> {
    /// Replaces the accumulated switches wholesale.
    pub fn opts(mut self, opts: OracleOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Records into a shared [`EventStream`] instead of a private one.
    pub fn events(mut self, stream: Arc<EventStream>) -> Self {
        self.events = Some(stream);
        self
    }

    /// Toggle the §4.4 non-interference check (default on).
    pub fn check_noninterference(mut self, on: bool) -> Self {
        self.opts.check_noninterference = on;
        self
    }

    /// Toggle the §4.4 footprint-separation check (default on).
    pub fn check_separation(mut self, on: bool) -> Self {
        self.opts.check_separation = on;
        self
    }

    /// Toggle the incremental abstraction cache (default off).
    pub fn incremental_abstraction(mut self, on: bool) -> Self {
        self.opts.incremental_abstraction = on;
        self
    }

    /// Toggle shadow validation of the incremental cache (default off).
    pub fn shadow_validation(mut self, on: bool) -> Self {
        self.opts.shadow_validation = on;
        self
    }

    /// Caps the retained violation log (default 4096, minimum 1).
    pub fn violation_cap(mut self, cap: usize) -> Self {
        self.opts.violation_cap = cap.max(1);
        self
    }

    /// Caps checked hook events per trap before degrading (default
    /// unlimited).
    pub fn trap_check_budget(mut self, budget: u64) -> Self {
        self.opts.trap_check_budget = budget;
        self
    }

    /// Contained panics of one component before it is quarantined
    /// (default 3).
    pub fn quarantine_threshold(mut self, n: u32) -> Self {
        self.opts.quarantine_threshold = n;
        self
    }

    /// Traps a quarantined component sits out before recovery
    /// (default 16).
    pub fn quarantine_traps(mut self, n: u64) -> Self {
        self.opts.quarantine_traps = n;
        self
    }

    /// Where the check core runs (default [`CheckMode::Inline`]).
    pub fn check_mode(mut self, mode: CheckMode) -> Self {
        self.opts.check_mode = mode;
        self
    }

    /// Toggle the break-before-make discipline check (default on).
    pub fn check_break_before_make(mut self, on: bool) -> Self {
        self.opts.check_break_before_make = on;
        self
    }

    /// Toggle the firmware-protection check (default on).
    pub fn check_firmware_protection(mut self, on: bool) -> Self {
        self.opts.check_firmware_protection = on;
        self
    }

    /// Toggle the transfer-protocol check (default on).
    pub fn check_transfer_protocol(mut self, on: bool) -> Self {
        self.opts.check_transfer_protocol = on;
        self
    }

    /// Builds the oracle.
    pub fn build(self) -> Arc<Oracle> {
        match self.events {
            Some(stream) => Oracle::with_stream(self.config, self.opts, stream),
            None => Oracle::new(self.config, self.opts),
        }
    }
}

/// Renders what differed between the full walk and the incremental
/// replay, maplet by maplet, for the shadow-divergence report.
fn pgtable_divergence(
    full: &AbstractPgtable,
    inc: &AbstractPgtable,
    full_anomalies: &[Anomaly],
    inc_anomalies: &[Anomaly],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for m in full.mapping.iter() {
        if !inc.mapping.iter().any(|n| n == m) {
            let _ = writeln!(out, "  full only: {m:?}");
        }
    }
    for m in inc.mapping.iter() {
        if !full.mapping.iter().any(|n| n == m) {
            let _ = writeln!(out, "  incremental only: {m:?}");
        }
    }
    if full.table_pages != inc.table_pages {
        let _ = writeln!(
            out,
            "  table pages: full {:?} vs incremental {:?}",
            full.table_pages, inc.table_pages
        );
    }
    if full_anomalies != inc_anomalies {
        let _ = writeln!(
            out,
            "  anomalies: full {full_anomalies:?} vs incremental {inc_anomalies:?}"
        );
    }
    if out.is_empty() {
        out.push_str("  (states compare equal after the fact; transient divergence)\n");
    }
    out
}

/// One component's abstraction, as recorded at a lock event. Computed by
/// the front half under the component's lock, consumed by the back half.
pub(crate) enum ComponentValue {
    Host(GhostHost),
    Pkvm(GhostPkvm),
    /// Live (handle, slot) pairs, plus (handle, incarnation) pairs so the
    /// shared copy can detect handle reuse across a teardown.
    VmTable(Vec<(Handle, usize)>, Vec<(Handle, u64)>),
    /// Handle, incarnation id, abstract state.
    Vm(Handle, u64, crate::state::GhostVm),
}

impl Oracle {
    /// The spec+check phase of `trap_exit` (runs contained). Reads the
    /// trap's recordings and reports through the bounded log; it never
    /// mutates `rec`, so a contained panic leaves no half-written record.
    fn spec_and_check(&self, cpu: usize, rec: &CpuRecord, call: &GhostCallData, name: &str) {
        // (7) Compute the expected post-state from the pre-state and the
        // call data, then (8) compare.
        let mut computed = GhostState::blank(&self.globals);
        match compute_post(&rec.pre, call, &mut computed) {
            SpecVerdict::Checked => {
                self.stats.traps_checked.fetch_add(1, Ordering::Relaxed);
                let mut outcome = check_trap(name, &rec.pre, &rec.post, &computed);
                if !rec.interleaved.is_empty() {
                    // Foreign traps updated these components between two of
                    // our critical sections; their recorded post is not
                    // "pre plus this handler's effect", so comparing it is
                    // meaningless. Drop their findings (counted, so a
                    // campaign can see how often the check degraded).
                    let interleaved = &rec.interleaved;
                    outcome.violations.retain(|v| {
                        let comp = match v {
                            Violation::SpecMismatch { component, .. }
                            | Violation::UnexpectedChange { component, .. } => component,
                            _ => return true,
                        };
                        let skip = comp_key_of_name(comp).is_some_and(|k| interleaved.contains(&k));
                        if skip {
                            self.stats.interleaved_skips.fetch_add(1, Ordering::Relaxed);
                        }
                        !skip
                    });
                }
                self.push_trace(
                    rec.trap_seq,
                    TrapRecord {
                        cpu,
                        name: name.to_string(),
                        outcome: if outcome.violations.is_empty() {
                            TrapOutcome::Clean
                        } else {
                            TrapOutcome::Violated(outcome.violations.len())
                        },
                    },
                );
                if !outcome.violations.is_empty() {
                    self.report_all_at(cpu, rec.trap_seq, outcome.violations);
                }
                // Seed spec-defined but never-recorded components into the
                // shared copy: the next acquisition validates them.
                if !outcome.deferred.is_empty() {
                    self.seed_deferred(name, &outcome.deferred, &computed, &rec.versions_at_entry);
                }
            }
            SpecVerdict::Unchecked(why) => {
                self.stats.traps_unchecked.fetch_add(1, Ordering::Relaxed);
                self.push_trace(
                    rec.trap_seq,
                    TrapRecord {
                        cpu,
                        name: name.to_string(),
                        outcome: TrapOutcome::Unchecked(why.into()),
                    },
                );
                // Loose case: the shared copy was already updated at the
                // lock releases.
            }
            SpecVerdict::Impossible(reason) => {
                self.push_trace(
                    rec.trap_seq,
                    TrapRecord {
                        cpu,
                        name: name.to_string(),
                        outcome: TrapOutcome::Violated(1),
                    },
                );
                self.report_at(
                    cpu,
                    rec.trap_seq,
                    Violation::SpecMismatch {
                        seq: None,
                        trap: name.to_string(),
                        component: "spec-detected impossibility".into(),
                        uniq: None,
                        diff: reason,
                    },
                );
            }
        }
    }

    /// The back half: applies one [`CheckMsg`] to the ghost copy and runs
    /// the checks it triggers. In [`CheckMode::Inline`] this runs on the
    /// hook's thread (inside the hook's own containment, exactly like the
    /// classic synchronous oracle); pipelined it runs on the checker
    /// thread via [`Oracle::apply_counted`].
    pub(crate) fn apply_msg(&self, msg: CheckMsg) {
        match msg {
            CheckMsg::TrapEnter {
                cpu,
                seq,
                call,
                cpu_state,
            } => self.apply_trap_enter(cpu, seq, call, cpu_state),
            CheckMsg::TrapExit {
                cpu,
                trap,
                name,
                cpu_state,
                regs_post,
                degraded,
            } => self.apply_trap_exit(cpu, trap, name, cpu_state, regs_post, degraded),
            CheckMsg::LockAcquired {
                cpu,
                trap,
                comp,
                value,
                reports,
                check_ni,
            } => {
                if !reports.is_empty() {
                    self.report_all_at(cpu, trap, reports);
                }
                self.firmware_backstop(cpu, trap, &value);
                if check_ni {
                    self.noninterference_check(cpu, trap, comp, &value);
                }
                let key = value.key();
                // Safe to read outside the rec lock: the mutator holds the
                // component's lock across this message, so no foreign trap
                // can stamp this component right now.
                let version = self.shared.lock().versions.get(&key).copied();
                let mut rec = self.cpus[cpu].lock();
                if trap.is_some() {
                    // A re-acquisition after one of our own releases: if
                    // the stamp moved in between, a foreign trap updated
                    // the component and the atomic per-trap check no
                    // longer applies to it.
                    if let Some(&last) = rec.last_release.get(&key) {
                        if version != Some(last) {
                            rec.interleaved.insert(key);
                        }
                    }
                    // First acquisition within the trap defines the
                    // pre-state.
                    Self::set_component(&mut rec.pre, &value, true);
                } else {
                    drop(rec);
                    self.shared.lock().set(&value);
                }
            }
            CheckMsg::LockReleasing {
                cpu,
                trap,
                value,
                reports,
                ..
            } => {
                if !reports.is_empty() {
                    self.report_all_at(cpu, trap, reports);
                }
                self.firmware_backstop(cpu, trap, &value);
                let key = value.key();
                let version = {
                    let mut shared = self.shared.lock();
                    shared.set(&value);
                    shared.versions.get(&key).copied()
                };
                let mut rec = self.cpus[cpu].lock();
                if trap.is_some() {
                    // Last release within the trap defines the post-state.
                    Self::set_component(&mut rec.post, &value, false);
                    if let Some(v) = version {
                        rec.last_release.insert(key, v);
                    }
                }
            }
            CheckMsg::Evict {
                cpu,
                trap,
                comp,
                quarantine,
            } => {
                self.evict_shared(comp);
                // Quarantine skips additionally blind the running trap's
                // check to the component; budget evictions skip the whole
                // trap's check anyway.
                if quarantine && trap.is_some() {
                    self.cpus[cpu].lock().interleaved.insert(comp_key_of(comp));
                }
            }
            CheckMsg::ReadOnce { cpu, tag, value } => {
                if let Some(call) = self.cpus[cpu].lock().call.as_mut() {
                    call.read_onces.push((tag, value));
                }
            }
            CheckMsg::TablePageAlloc {
                cpu,
                trap,
                comp,
                pfn,
            } => {
                if !self.opts.check_separation {
                    return;
                }
                let mut fp = self.footprints.lock();
                for (other, pages) in fp.iter() {
                    if *other != comp && pages.contains(&pfn) {
                        let v = Violation::SeparationOverlap {
                            seq: None,
                            component: format!("{comp:?}"),
                            pfn,
                            owner: format!("{other:?}"),
                        };
                        drop(fp);
                        self.report_at(cpu, trap, v);
                        return;
                    }
                }
                fp.entry(comp).or_default().insert(pfn);
            }
            CheckMsg::TablePageFree { comp, pfn } => {
                if !self.opts.check_separation {
                    return;
                }
                if let Some(pages) = self.footprints.lock().get_mut(&comp) {
                    pages.remove(&pfn);
                }
            }
            CheckMsg::PteDowngrade {
                cpu,
                seq,
                vmid,
                ia,
                nr,
            } => {
                if self.opts.check_break_before_make {
                    self.bbm.lock().note_break(cpu, seq, vmid, ia, nr);
                }
            }
            CheckMsg::Tlbi {
                cpu,
                vmid,
                ia,
                nr,
                broadcast,
            } => {
                if self.opts.check_break_before_make && broadcast {
                    self.bbm.lock().note_tlbi(cpu, vmid, ia, nr);
                }
            }
            CheckMsg::Dsb { cpu } => {
                if self.opts.check_break_before_make {
                    self.bbm.lock().note_dsb(cpu);
                }
            }
            CheckMsg::Transfer {
                cpu,
                trap,
                seq,
                edge,
                pfn,
                nr,
                dirty,
            } => {
                crate::spec::spec_hit(match edge {
                    TransferEdge::ShareHyp => "spec/transfer/share_hyp",
                    TransferEdge::UnshareHyp => "spec/transfer/unshare_hyp",
                    TransferEdge::DonateHyp => "spec/transfer/donate_hyp",
                    TransferEdge::DonateHost => "spec/transfer/donate_host",
                    TransferEdge::MapGuestOwned => "spec/transfer/map_guest_owned",
                    TransferEdge::MapGuestShared => "spec/transfer/map_guest_shared",
                    TransferEdge::GuestShareHost => "spec/transfer/guest_share_host",
                    TransferEdge::GuestUnshareHost => "spec/transfer/guest_unshare_host",
                    TransferEdge::Firmware => "spec/transfer/firmware",
                    TransferEdge::Reclaim => "spec/transfer/reclaim",
                });
                if !self.opts.check_transfer_protocol {
                    return;
                }
                let mut violations = Vec::new();
                let mut xfer = self.xfer.lock();
                for p in pfn..pfn.saturating_add(nr) {
                    if let Err(from) = xfer.cross(edge, p) {
                        violations.push(Violation::TransferProtocol {
                            seq: Some(seq),
                            edge,
                            pfn: p,
                            detail: format!("departed from state {from}"),
                        });
                    }
                    if edge == TransferEdge::Reclaim && dirty {
                        violations.push(Violation::ReclaimWipe {
                            seq: Some(seq),
                            pfn: p,
                        });
                    }
                }
                drop(xfer);
                if !violations.is_empty() {
                    self.report_all_at(cpu, trap, violations);
                }
            }
            CheckMsg::FirmwareDonate {
                handle,
                uniq,
                pfn,
                nr,
            } => {
                if self.opts.check_firmware_protection {
                    self.firmware.lock().note_donate(handle, uniq, pfn, nr);
                }
            }
            CheckMsg::HostRegain {
                cpu,
                trap,
                seq,
                pfn,
                nr,
            } => {
                if self.opts.check_firmware_protection {
                    let violations = self.firmware.lock().check_regain(seq, pfn, nr);
                    if !violations.is_empty() {
                        self.report_all_at(cpu, trap, violations);
                    }
                }
            }
            CheckMsg::Report {
                cpu,
                trap,
                violations,
            } => self.report_all_at(cpu, trap, violations),
            // Barriers are handled in `apply_counted` (outside the
            // containment net, so the poster can never hang); inline mode
            // never dispatches one.
            CheckMsg::Barrier(_) => {}
        }
    }

    /// Firmware-protection backstop, run on every freshly abstracted host
    /// component: even when no regain hook announced it, a donated
    /// firmware page the host's stage 2 can reach again is a breach. The
    /// donation annotates the page away from the host before the same
    /// critical section's release message, so a clean run never trips
    /// this.
    fn firmware_backstop(&self, cpu: usize, trap: Option<u64>, value: &ComponentValue) {
        if !self.opts.check_firmware_protection {
            return;
        }
        if let ComponentValue::Host(h) = value {
            let violations = self.firmware.lock().scan_host(h);
            if !violations.is_empty() {
                self.report_all_at(cpu, trap, violations);
            }
        }
    }

    /// Back half of `trap_enter`: reset the per-CPU recording. The shared
    /// versions snapshot happens here, at apply time — in pipelined mode
    /// that is the correct point, because every shared-copy mutation also
    /// happens at apply time, in message order.
    fn apply_trap_enter(&self, cpu: usize, seq: u64, call: GhostCallData, cpu_state: GhostCpu) {
        let versions = self.shared.lock().versions.clone();
        let mut rec = self.cpus[cpu].lock();
        rec.pre = GhostState::blank(&self.globals);
        rec.post = GhostState::blank(&self.globals);
        rec.call = Some(call);
        rec.versions_at_entry = versions;
        rec.last_release.clear();
        rec.interleaved.clear();
        rec.trap_seq = Some(seq);
        rec.pre.locals.insert(cpu, cpu_state);
    }

    /// Back half of `trap_exit`: finish the recording, then run the
    /// ternary check (with the same phased containment as the classic
    /// oracle).
    fn apply_trap_exit(
        &self,
        cpu: usize,
        trap: Option<u64>,
        name: String,
        cpu_state: GhostCpu,
        regs_post: GprFile,
        degraded: bool,
    ) {
        // Break-before-make settles first, before any of the skip paths
        // below: a degraded or quarantined spec check never excuses an
        // unflushed downgrade, and the ledger must not leak into the
        // next trap on this CPU.
        if self.opts.check_break_before_make {
            let leftovers = self.bbm.lock().drain(cpu);
            if !leftovers.is_empty() {
                let violations = leftovers
                    .into_iter()
                    .map(|b| Violation::BreakBeforeMake {
                        seq: Some(b.seq),
                        trap: name.clone(),
                        vmid: b.vmid,
                        ia: b.ia,
                        nr: b.nr,
                    })
                    .collect();
                self.report_all_at(cpu, trap, violations);
            }
        }
        let mut rec = self.cpus[cpu].lock();
        // Phase 1: finish the recording. Contained so a panic leaves the
        // per-CPU record consistent (the next trap_enter resets it anyway).
        let prep = contain(|| {
            rec.post.locals.insert(cpu, cpu_state);
            let mut call = rec.call.take()?;
            call.regs_post = regs_post;
            Some(call)
        });
        let call = match prep {
            Ok(Some(call)) => call,
            Ok(None) => {
                // No call data: trap_enter never ran (or its delivery was
                // dropped). A confused recording, not a hypervisor bug.
                drop(rec);
                self.report_at(
                    cpu,
                    trap,
                    Violation::OracleSelfCheck {
                        seq: None,
                        context: "trap_exit".into(),
                        detail: "no recorded call data (trap_enter not delivered?)".into(),
                    },
                );
                return;
            }
            Err(payload) => {
                drop(rec);
                self.stats.contained_panics.fetch_add(1, Ordering::Relaxed);
                self.quarantine.record_failure("trap_exit");
                self.report_at(
                    cpu,
                    trap,
                    Violation::OracleInternal {
                        seq: None,
                        component: "trap_exit".into(),
                        payload,
                    },
                );
                return;
            }
        };
        // Phase 2: the check — unless this trap degraded under budget
        // pressure, or this handler's spec step is quarantined.
        if degraded {
            self.stats.degraded_traps.fetch_add(1, Ordering::Relaxed);
            self.stats.traps_unchecked.fetch_add(1, Ordering::Relaxed);
            self.push_trace(
                trap,
                TrapRecord {
                    cpu,
                    name,
                    outcome: TrapOutcome::Unchecked("per-trap check budget exhausted".into()),
                },
            );
            return;
        }
        let spec_key = format!("spec:{name}");
        match self.quarantine.disposition(&spec_key) {
            Disposition::Skip => {
                self.stats.quarantined_skips.fetch_add(1, Ordering::Relaxed);
                self.stats.traps_unchecked.fetch_add(1, Ordering::Relaxed);
                self.push_trace(
                    trap,
                    TrapRecord {
                        cpu,
                        name,
                        outcome: TrapOutcome::Unchecked("spec step quarantined".into()),
                    },
                );
                return;
            }
            Disposition::Recover => {
                self.stats
                    .quarantine_recoveries
                    .fetch_add(1, Ordering::Relaxed);
            }
            Disposition::Process => {}
        }
        match contain(|| self.spec_and_check(cpu, &rec, &call, &name)) {
            Ok(()) => self.quarantine.record_success(&spec_key),
            Err(payload) => {
                self.stats.contained_panics.fetch_add(1, Ordering::Relaxed);
                self.quarantine.record_failure(&spec_key);
                self.push_trace(
                    trap,
                    TrapRecord {
                        cpu,
                        name,
                        outcome: TrapOutcome::Unchecked("spec step panicked (contained)".into()),
                    },
                );
                self.report_at(
                    cpu,
                    trap,
                    Violation::OracleInternal {
                        seq: None,
                        component: spec_key,
                        payload,
                    },
                );
            }
        }
    }
}

impl GhostHooks for Oracle {
    fn trap_enter(
        &self,
        ctx: &HookCtx<'_>,
        esr: Esr,
        fault_ipa: Option<u64>,
        regs: &GprFile,
        loaded: Option<(Handle, usize, VcpuView)>,
    ) {
        // The quarantine clock counts traps.
        self.quarantine.tick();
        self.guarded("trap_enter", || {
            let seq = self
                .events
                .emit(ctx.cpu as u32, None, Event::TrapEnter { cpu: ctx.cpu });
            {
                let mut front = self.fronts[ctx.cpu].lock();
                front.in_trap = true;
                front.trap_seq = Some(seq);
                front.call_mirror = Some((esr, regs.get(0)));
                front.events_this_trap = 0;
                front.degraded = false;
            }
            let call = GhostCallData::new(ctx.cpu, esr, fault_ipa, *regs);
            let cpu_state = Self::ghost_cpu(regs, &loaded);
            self.dispatch(CheckMsg::TrapEnter {
                cpu: ctx.cpu,
                seq,
                call,
                cpu_state,
            });
        });
    }

    fn trap_exit(
        &self,
        ctx: &HookCtx<'_>,
        regs: &GprFile,
        loaded: Option<(Handle, usize, VcpuView)>,
    ) {
        let (trap, mirror, degraded) = {
            let mut front = self.fronts[ctx.cpu].lock();
            if !front.in_trap {
                return;
            }
            front.in_trap = false;
            (front.trap_seq, front.call_mirror.take(), front.degraded)
        };
        let prep = contain(|| Self::ghost_cpu(regs, &loaded));
        let cpu_state = match prep {
            Ok(state) => state,
            Err(payload) => {
                self.stats.contained_panics.fetch_add(1, Ordering::Relaxed);
                self.quarantine.record_failure("trap_exit");
                self.dispatch(CheckMsg::Report {
                    cpu: ctx.cpu,
                    trap,
                    violations: vec![Violation::OracleInternal {
                        seq: None,
                        component: "trap_exit".into(),
                        payload,
                    }],
                });
                return;
            }
        };
        let Some((esr, x0)) = mirror else {
            // No call data: trap_enter never ran (or its delivery was
            // dropped). A confused recording, not a hypervisor bug.
            self.dispatch(CheckMsg::Report {
                cpu: ctx.cpu,
                trap,
                violations: vec![Violation::OracleSelfCheck {
                    seq: None,
                    context: "trap_exit".into(),
                    detail: "no recorded call data (trap_enter not delivered?)".into(),
                }],
            });
            return;
        };
        let name = Self::trap_name_of(esr, x0);
        self.events.emit(
            ctx.cpu as u32,
            trap,
            Event::TrapExit {
                cpu: ctx.cpu,
                name: name.clone(),
            },
        );
        self.dispatch(CheckMsg::TrapExit {
            cpu: ctx.cpu,
            trap,
            name,
            cpu_state,
            regs_post: *regs,
            degraded,
        });
    }

    fn lock_acquired(&self, ctx: &HookCtx<'_>, comp: Component, view: &ComponentView) {
        let trap = self.current_trap(ctx.cpu);
        self.events.emit(
            ctx.cpu as u32,
            trap,
            Event::LockAcquired { cpu: ctx.cpu, comp },
        );
        let key = comp_name(comp);
        let check_ni = match self.quarantine.disposition(&key) {
            Disposition::Skip => {
                self.note_quarantine_skip(ctx.cpu, trap, comp);
                return;
            }
            // Recovery from quarantine: re-seed the shared copy from a
            // full abstraction pass. The component's state while benched
            // is unknown, so the non-interference comparison is skipped
            // exactly once.
            Disposition::Recover => {
                self.stats
                    .quarantine_recoveries
                    .fetch_add(1, Ordering::Relaxed);
                false
            }
            Disposition::Process => true,
        };
        if self.budget_exhausted(ctx.cpu) {
            self.stats
                .budget_degraded_events
                .fetch_add(1, Ordering::Relaxed);
            self.dispatch(CheckMsg::Evict {
                cpu: ctx.cpu,
                trap,
                comp,
                quarantine: false,
            });
            return;
        }
        self.guarded(&key, || {
            let (value, reports) = self.abstract_component(ctx, view, comp);
            self.dispatch(CheckMsg::LockAcquired {
                cpu: ctx.cpu,
                trap,
                comp,
                value,
                reports,
                check_ni,
            });
        });
    }

    fn lock_releasing(&self, ctx: &HookCtx<'_>, comp: Component, view: &ComponentView) {
        let trap = self.current_trap(ctx.cpu);
        self.events.emit(
            ctx.cpu as u32,
            trap,
            Event::LockReleasing { cpu: ctx.cpu, comp },
        );
        let key = comp_name(comp);
        match self.quarantine.disposition(&key) {
            Disposition::Skip => {
                self.note_quarantine_skip(ctx.cpu, trap, comp);
                return;
            }
            // A release *is* a full abstraction pass recorded into the
            // shared copy, so recovery needs no special casing here.
            Disposition::Recover => {
                self.stats
                    .quarantine_recoveries
                    .fetch_add(1, Ordering::Relaxed);
            }
            Disposition::Process => {}
        }
        if self.budget_exhausted(ctx.cpu) {
            self.stats
                .budget_degraded_events
                .fetch_add(1, Ordering::Relaxed);
            self.dispatch(CheckMsg::Evict {
                cpu: ctx.cpu,
                trap,
                comp,
                quarantine: false,
            });
            return;
        }
        self.guarded(&key, || {
            let (value, reports) = self.abstract_component(ctx, view, comp);
            self.dispatch(CheckMsg::LockReleasing {
                cpu: ctx.cpu,
                trap,
                comp,
                value,
                reports,
            });
        });
    }

    fn read_once(&self, ctx: &HookCtx<'_>, tag: &'static str, value: u64) {
        self.stats.read_onces.fetch_add(1, Ordering::Relaxed);
        self.guarded("read_once", || {
            let trap = self.current_trap(ctx.cpu);
            self.events.emit(
                ctx.cpu as u32,
                trap,
                Event::ReadOnce {
                    cpu: ctx.cpu,
                    tag: tag.into(),
                    value,
                },
            );
            self.dispatch(CheckMsg::ReadOnce {
                cpu: ctx.cpu,
                tag,
                value,
            });
        });
    }

    fn table_page_alloc(&self, ctx: &HookCtx<'_>, comp: Component, page: PhysAddr) {
        let trap = self.current_trap(ctx.cpu);
        self.events.emit(
            ctx.cpu as u32,
            trap,
            Event::TablePageAlloc {
                comp,
                pfn: page.pfn(),
            },
        );
        self.dispatch(CheckMsg::TablePageAlloc {
            cpu: ctx.cpu,
            trap,
            comp,
            pfn: page.pfn(),
        });
    }

    fn table_page_free(&self, ctx: &HookCtx<'_>, comp: Component, page: PhysAddr) {
        let trap = self.current_trap(ctx.cpu);
        self.events.emit(
            ctx.cpu as u32,
            trap,
            Event::TablePageFree {
                comp,
                pfn: page.pfn(),
            },
        );
        self.dispatch(CheckMsg::TablePageFree {
            comp,
            pfn: page.pfn(),
        });
    }

    fn pte_downgrade(&self, ctx: &HookCtx<'_>, vmid: u16, ia: u64, nr_pages: u64) {
        self.guarded("pte_downgrade", || {
            let trap = self.current_trap(ctx.cpu);
            let seq = self.events.emit(
                ctx.cpu as u32,
                trap,
                Event::PteDowngrade {
                    cpu: ctx.cpu,
                    vmid,
                    ia,
                    nr: nr_pages,
                },
            );
            self.dispatch(CheckMsg::PteDowngrade {
                cpu: ctx.cpu,
                seq,
                vmid,
                ia,
                nr: nr_pages,
            });
        });
    }

    fn tlbi(&self, ctx: &HookCtx<'_>, vmid: u16, ia: u64, nr_pages: u64, broadcast: bool) {
        self.guarded("tlbi", || {
            let trap = self.current_trap(ctx.cpu);
            self.events.emit(
                ctx.cpu as u32,
                trap,
                Event::Tlbi {
                    vmid,
                    ia,
                    nr: nr_pages,
                    broadcast,
                    cpu: ctx.cpu,
                },
            );
            self.dispatch(CheckMsg::Tlbi {
                cpu: ctx.cpu,
                vmid,
                ia,
                nr: nr_pages,
                broadcast,
            });
        });
    }

    fn dsb(&self, ctx: &HookCtx<'_>) {
        self.guarded("dsb", || {
            let trap = self.current_trap(ctx.cpu);
            self.events
                .emit(ctx.cpu as u32, trap, Event::Dsb { cpu: ctx.cpu });
            self.dispatch(CheckMsg::Dsb { cpu: ctx.cpu });
        });
    }

    fn transfer(&self, ctx: &HookCtx<'_>, edge: TransferEdge, pfn: u64, nr: u64, dirty: bool) {
        self.guarded("transfer", || {
            let trap = self.current_trap(ctx.cpu);
            let seq = self.events.emit(
                ctx.cpu as u32,
                trap,
                Event::Transfer {
                    cpu: ctx.cpu,
                    edge,
                    pfn,
                    nr,
                    dirty,
                },
            );
            self.dispatch(CheckMsg::Transfer {
                cpu: ctx.cpu,
                trap,
                seq,
                edge,
                pfn,
                nr,
                dirty,
            });
        });
    }

    fn firmware_donated(&self, ctx: &HookCtx<'_>, handle: Handle, uniq: u64, pfn: u64, nr: u64) {
        self.guarded("firmware_donated", || {
            let trap = self.current_trap(ctx.cpu);
            self.events.emit(
                ctx.cpu as u32,
                trap,
                Event::FirmwareDonate {
                    cpu: ctx.cpu,
                    handle,
                    uniq,
                    pfn,
                    nr,
                },
            );
            self.dispatch(CheckMsg::FirmwareDonate {
                handle,
                uniq,
                pfn,
                nr,
            });
        });
    }

    fn host_regain(&self, ctx: &HookCtx<'_>, pfn: u64, nr: u64) {
        self.guarded("host_regain", || {
            let trap = self.current_trap(ctx.cpu);
            let seq = self.events.emit(
                ctx.cpu as u32,
                trap,
                Event::HostRegain {
                    cpu: ctx.cpu,
                    pfn,
                    nr,
                },
            );
            self.dispatch(CheckMsg::HostRegain {
                cpu: ctx.cpu,
                trap,
                seq,
                pfn,
                nr,
            });
        });
    }

    fn hyp_panic(&self, ctx: &HookCtx<'_>, reason: &str) {
        let trap = self.current_trap(ctx.cpu);
        self.dispatch(CheckMsg::Report {
            cpu: ctx.cpu,
            trap,
            violations: vec![Violation::HypPanic {
                seq: None,
                reason: reason.into(),
            }],
        });
    }

    fn wants_write_log(&self) -> bool {
        self.opts.uses_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TRACE_CAP;

    fn oracle() -> Arc<Oracle> {
        Oracle::new(&MachineConfig::default(), OracleOpts::default())
    }

    #[test]
    fn boot_spec_state_has_the_three_boot_components() {
        let o = oracle();
        let s = o.spec_boot_state();
        let host = s.host.as_ref().expect("host annotated");
        assert_eq!(host.annot.nr_pages(), o.globals.hyp_range.1);
        assert!(host.shared.is_empty());
        let pkvm = s.pkvm.as_ref().expect("linear map + uart");
        assert_eq!(pkvm.pgt.mapping.nr_pages(), o.globals.hyp_range.1 + 1);
        assert_eq!(s.vm_table.as_deref(), Some(&[][..]));
    }

    #[test]
    fn separation_check_flags_cross_component_table_pages() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        let page = PhysAddr::new(0x4400_0000);
        o.table_page_alloc(&ctx, Component::Host, page);
        assert!(o.is_clean());
        // The same page backing a *different* component's table: flagged.
        o.table_page_alloc(&ctx, Component::Hyp, page);
        assert!(matches!(
            o.violations()[0],
            Violation::SeparationOverlap { .. }
        ));
        // Freeing and re-allocating elsewhere is fine.
        o.clear_violations();
        o.table_page_free(&ctx, Component::Host, page);
        o.table_page_alloc(&ctx, Component::Hyp, page);
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn separation_check_can_be_disabled() {
        let o = Oracle::builder(&MachineConfig::default())
            .check_separation(false)
            .build();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        let page = PhysAddr::new(0x4400_0000);
        o.table_page_alloc(&ctx, Component::Host, page);
        o.table_page_alloc(&ctx, Component::Hyp, page);
        assert!(o.is_clean());
    }

    fn ghost_vm(handle: Handle, donated: &[u64]) -> crate::state::GhostVm {
        crate::state::GhostVm {
            handle,
            slot: 0,
            protected: true,
            pgt: Default::default(),
            donated: donated.to_vec(),
            firmware: Vec::new(),
            vcpus: Vec::new(),
        }
    }

    #[test]
    fn stalled_checker_bounds_memory_and_drains_on_release() {
        // Backpressure: a pipelined oracle whose checker cannot make
        // progress must block the mutator at the channel cap instead of
        // queueing messages without bound.
        let cap = 8usize;
        let o = Oracle::new(
            &MachineConfig::default(),
            OracleOpts::builder()
                .check_mode(CheckMode::Pipelined {
                    workers: 1,
                    channel_cap: cap,
                })
                .build(),
        );
        // Stall the checker: the first message it applies (`trap_enter`)
        // locks the shared copy, which the test holds.
        let stall = o.shared.lock();
        let driver = {
            let o = Arc::clone(&o);
            std::thread::spawn(move || {
                let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
                let ctx = HookCtx { mem: &mem, cpu: 0 };
                o.trap_enter(&ctx, Esr::hvc64(0), None, &GprFile::default(), None);
                for i in 0..1000u64 {
                    o.read_once(&ctx, "flood", i);
                }
            })
        };
        // The driver floods 1001 messages; backpressure must stop it at
        // batch granularity — wait for the frontier to settle, then check
        // it stopped within a few caps (channel + the batch in apply).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut last = u64::MAX;
        loop {
            let (sent, _) = o.frontier();
            if sent == last || std::time::Instant::now() > deadline {
                break;
            }
            last = sent;
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        let (sent, applied) = o.frontier();
        assert_eq!(applied, 0, "checker ran while the shared copy was held");
        assert!(
            sent <= 3 * cap as u64,
            "stalled checker let {sent} messages through (cap {cap})"
        );
        assert!(
            !driver.is_finished(),
            "driver finished its 1001 sends against a stalled checker"
        );
        // Release the checker: everything drains and the driver finishes.
        drop(stall);
        driver.join().expect("driver");
        o.barrier();
        let (sent, applied) = o.frontier();
        assert_eq!(sent, applied, "barrier returned with messages in flight");
        assert_eq!(sent, 1002, "1 trap_enter + 1000 read_onces + 1 barrier");
    }

    #[test]
    fn shared_copy_drops_the_dying_release_of_a_torn_down_vm() {
        // `do_teardown_vm` releases the dying VM's lock *after* dropping
        // the table lock, so the release arrives when the table no longer
        // lists the VM. It must not resurrect the dead state: a concurrent
        // `init_vm` reusing the handle would otherwise be compared against
        // it.
        let o = oracle();
        let h: Handle = 0x1000;
        let mut shared = o.shared.lock();
        shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 1)]));
        shared.set(&ComponentValue::Vm(h, 1, ghost_vm(h, &[0x44007])));
        assert!(shared.state.vms.contains_key(&h));
        // Teardown: table recorded without the VM prunes its entry...
        shared.set(&ComponentValue::VmTable(Vec::new(), Vec::new()));
        assert!(!shared.state.vms.contains_key(&h));
        // ...and the dying VM's trailing lock release is dropped.
        shared.set(&ComponentValue::Vm(h, 1, ghost_vm(h, &[0x44007])));
        assert!(!shared.state.vms.contains_key(&h), "dead VM resurrected");
        // A new incarnation reusing the handle records normally.
        shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 2)]));
        shared.set(&ComponentValue::Vm(h, 2, ghost_vm(h, &[0x44e07])));
        assert_eq!(shared.state.vms[&h].donated, vec![0x44e07]);
        // An even later stale release from the old incarnation still loses.
        shared.set(&ComponentValue::Vm(h, 1, ghost_vm(h, &[0x44007])));
        assert_eq!(shared.state.vms[&h].donated, vec![0x44e07]);
    }

    #[test]
    fn noninterference_skips_a_reused_handles_old_incarnation() {
        let o = oracle();
        let h: Handle = 0x1000;
        {
            let mut shared = o.shared.lock();
            shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 2)]));
            shared.set(&ComponentValue::Vm(h, 2, ghost_vm(h, &[0x44e07])));
        }
        // A different incarnation's view differing from the stored state
        // is not interference — the two states describe different VMs.
        o.noninterference_check(
            0,
            None,
            Component::Vm(h),
            &ComponentValue::Vm(h, 1, ghost_vm(h, &[0x44007])),
        );
        assert!(o.is_clean(), "{:?}", o.violations());
        // The same incarnation differing is the real §4.4 violation.
        o.noninterference_check(
            0,
            None,
            Component::Vm(h),
            &ComponentValue::Vm(h, 2, ghost_vm(h, &[0x44007])),
        );
        assert!(matches!(
            &o.violations()[0],
            Violation::NonInterference { .. }
        ));
    }

    #[test]
    fn table_recording_invalidates_a_stale_incarnations_state() {
        // Belt and braces: if an old incarnation's state is somehow still
        // stored when the table is recorded with a new incarnation under
        // the same handle, the stale state is dropped (and the component
        // stamped) rather than compared against the new VM.
        let o = oracle();
        let h: Handle = 0x1000;
        let mut shared = o.shared.lock();
        shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 1)]));
        shared.set(&ComponentValue::Vm(h, 1, ghost_vm(h, &[0x44007])));
        let stamp_before = shared.versions[&CompKey::Vm(h)];
        shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 5)]));
        assert!(!shared.state.vms.contains_key(&h));
        assert!(shared.versions[&CompKey::Vm(h)] > stamp_before);
        assert_eq!(shared.vm_uniq[&h], 5);
    }

    #[test]
    fn hyp_panic_is_a_violation() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        o.hyp_panic(&ctx, "BUG()");
        assert!(
            matches!(&o.violations()[0], Violation::HypPanic { reason, .. } if reason == "BUG()")
        );
    }

    #[test]
    fn trace_is_bounded() {
        let o = oracle();
        for i in 0..(TRACE_CAP + 10) {
            o.push_trace(
                None,
                TrapRecord {
                    cpu: 0,
                    name: format!("t{i}"),
                    outcome: TrapOutcome::Clean,
                },
            );
        }
        let t = o.trace();
        assert_eq!(t.len(), TRACE_CAP);
        assert_eq!(t.last().unwrap().name, format!("t{}", TRACE_CAP + 9));
    }

    #[test]
    fn ghost_bytes_accounting_is_nonzero_once_populated() {
        let o = oracle();
        let base = o.approx_ghost_bytes();
        let mut shared = o.shared.lock();
        let mut host = GhostHost::default();
        host.annot.insert_new(Maplet {
            ia: 0x4400_0000,
            nr_pages: 16,
            target: MapletTarget::Annotated {
                owner: pkvm_hyp::owner::OwnerId::HYP,
            },
        });
        shared.state.host = Some(host);
        drop(shared);
        assert!(o.approx_ghost_bytes() > base);
    }

    #[test]
    fn malformed_deferred_name_reports_a_self_check_violation() {
        let o = oracle();
        let computed = GhostState::blank(&o.globals);
        o.seed_deferred(
            "init_vm",
            &["vm[bogus]".to_string(), "vm[".to_string()],
            &computed,
            &HashMap::new(),
        );
        let vs = o.violations();
        assert_eq!(vs.len(), 2, "{vs:?}");
        for v in &vs {
            assert!(
                matches!(v, Violation::OracleSelfCheck { context, detail, .. }
                    if context.contains("init_vm") && detail.contains("malformed")),
                "{v}"
            );
        }
    }

    #[test]
    fn contained_panics_report_and_then_quarantine() {
        let o = Oracle::new(
            &MachineConfig::default(),
            OracleOpts::builder()
                .quarantine_threshold(3)
                .quarantine_traps(2)
                .build(),
        );
        for _ in 0..3 {
            o.guarded("host", || panic!("chaos made me do it"));
        }
        let vs = o.violations();
        assert_eq!(vs.len(), 3);
        assert!(vs.iter().all(|v| matches!(
            v,
            Violation::OracleInternal { component, payload, .. }
                if component == "host" && payload.contains("chaos")
        )));
        assert_eq!(o.stats.contained_panics.load(Ordering::Relaxed), 3);
        assert_eq!(o.quarantine.disposition("host"), Disposition::Skip);
        assert_eq!(o.quarantined(), 1);
        // After its bench time the component recovers exactly once.
        o.quarantine.tick();
        o.quarantine.tick();
        assert_eq!(o.quarantine.disposition("host"), Disposition::Recover);
        assert_eq!(o.quarantine.disposition("host"), Disposition::Process);
    }

    #[test]
    fn violation_log_is_bounded_and_drops_are_counted() {
        let o = Oracle::new(
            &MachineConfig::default(),
            OracleOpts::builder().violation_cap(4).build(),
        );
        for i in 0..10 {
            o.report(Violation::HypPanic {
                seq: None,
                reason: format!("p{i}"),
            });
        }
        assert_eq!(o.violations().len(), 4);
        assert_eq!(o.violation_count(), 4);
        assert_eq!(o.stats.violations_dropped.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn reports_are_annotated_with_the_vm_incarnation() {
        let o = oracle();
        let h: Handle = 0x1000;
        {
            let mut shared = o.shared.lock();
            shared.set(&ComponentValue::VmTable(vec![(h, 0)], vec![(h, 7)]));
        }
        o.report(Violation::SpecMismatch {
            seq: None,
            trap: "vcpu_run".into(),
            component: format!("vm[{h}]"),
            uniq: None,
            diff: "d".into(),
        });
        let v = &o.violations()[0];
        assert_eq!(v.vm_uniq(), Some(7));
        let line = v.to_string();
        assert!(
            line.starts_with("violation kind=spec-mismatch trap=vcpu_run comp=vm[4096] uniq=7"),
            "{line}"
        );
    }

    #[test]
    fn trap_exit_without_call_data_is_a_self_check_not_a_panic() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        // Force the inconsistent recording a dropped trap_enter leaves.
        o.fronts[0].lock().in_trap = true;
        o.trap_exit(&ctx, &GprFile::default(), None);
        assert!(matches!(
            &o.violations()[0],
            Violation::OracleSelfCheck { context, .. } if context == "trap_exit"
        ));
    }

    #[test]
    fn deferred_seeding_respects_concurrent_component_updates() {
        let o = oracle();
        // A concurrent trap recorded the host component after this trap
        // entered (entry snapshot is empty, shared copy is stamped).
        let concurrent = GhostHost::default();
        {
            let mut shared = o.shared.lock();
            shared.state.host = Some(concurrent.clone());
            shared.stamp(CompKey::Host);
        }
        let mut computed = GhostState::blank(&o.globals);
        let mut stale = GhostHost::default();
        stale.annot.insert_new(Maplet {
            ia: 0x4400_0000,
            nr_pages: 1,
            target: MapletTarget::Annotated {
                owner: pkvm_hyp::owner::OwnerId::HYP,
            },
        });
        computed.host = Some(stale);
        o.seed_deferred("share", &["host".to_string()], &computed, &HashMap::new());
        // The stale expectation must not overwrite the fresher recording.
        let shared = o.shared.lock();
        assert_eq!(shared.state.host.as_ref(), Some(&concurrent));
        drop(shared);
        assert!(o.is_clean());

        // With matching versions the seed lands.
        let versions = o.shared.lock().versions.clone();
        o.seed_deferred("share", &["host".to_string()], &computed, &versions);
        let shared = o.shared.lock();
        assert_eq!(shared.state.host.as_ref(), computed.host.as_ref());
    }

    #[test]
    fn bbm_tracker_retires_only_covered_broadcast_flushes() {
        let mut t = BbmTracker::default();
        t.note_break(0, 10, 1, 0x8000, 2);
        t.note_break(0, 11, 2, 0x8000, 2);
        // Wrong VMID: retires nothing.
        t.note_tlbi(0, 3, 0x8000, 2);
        // Partial coverage (one of two pages): retires nothing.
        t.note_tlbi(0, 1, 0x8000, 1);
        t.note_dsb(0);
        assert_eq!(t.pending[&0].len(), 2);
        // Exact coverage, but a TLBI without its DSB retires nothing yet.
        t.note_tlbi(0, 1, 0x8000, 2);
        assert_eq!(t.pending[&0].len(), 2);
        t.note_dsb(0);
        assert_eq!(t.pending[&0].len(), 1);
        assert_eq!(t.pending[&0][0].seq, 11);
        // A VMID-wide TLBI (ia 0, nr MAX) covers anything of that VMID.
        t.note_tlbi(0, 2, 0, u64::MAX);
        t.note_dsb(0);
        assert!(t.pending[&0].is_empty());
        // Breaks are per-CPU: CPU 1's ledger is untouched throughout.
        t.note_break(1, 12, 1, 0, 1);
        t.note_tlbi(0, 1, 0, u64::MAX);
        t.note_dsb(0);
        assert_eq!(t.drain(1).len(), 1);
    }

    fn bbm_violations(o: &Oracle) -> Vec<Violation> {
        o.violations()
            .into_iter()
            .filter(|v| v.kind() == "break-before-make")
            .collect()
    }

    #[test]
    fn unflushed_downgrade_is_reported_at_trap_exit_with_the_write_seq() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        o.trap_enter(&ctx, Esr::hvc64(0), None, &GprFile::default(), None);
        o.pte_downgrade(&ctx, 1, 0x8000, 2);
        o.trap_exit(&ctx, &GprFile::default(), None);
        let vs = bbm_violations(&o);
        assert_eq!(vs.len(), 1, "{vs:?}");
        match &vs[0] {
            Violation::BreakBeforeMake {
                seq,
                trap,
                vmid,
                ia,
                nr,
            } => {
                assert!(seq.is_some(), "anchored on the downgrade event");
                assert!(!trap.is_empty());
                assert_eq!((*vmid, *ia, *nr), (1, 0x8000, 2));
            }
            v => panic!("wrong variant: {v:?}"),
        }
        // The ledger was drained: the next trap starts clean.
        o.trap_enter(&ctx, Esr::hvc64(0), None, &GprFile::default(), None);
        o.trap_exit(&ctx, &GprFile::default(), None);
        assert_eq!(bbm_violations(&o).len(), 1);
    }

    #[test]
    fn the_full_flush_sequence_satisfies_the_check() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        o.trap_enter(&ctx, Esr::hvc64(0), None, &GprFile::default(), None);
        o.pte_downgrade(&ctx, 1, 0x8000, 2);
        o.tlbi(&ctx, 1, 0x8000, 2, true);
        o.dsb(&ctx);
        o.trap_exit(&ctx, &GprFile::default(), None);
        assert!(bbm_violations(&o).is_empty());
        // A non-broadcast TLBI does not retire the break: other CPUs may
        // still hold the stale translation.
        o.trap_enter(&ctx, Esr::hvc64(0), None, &GprFile::default(), None);
        o.pte_downgrade(&ctx, 1, 0x8000, 2);
        o.tlbi(&ctx, 1, 0x8000, 2, false);
        o.dsb(&ctx);
        o.trap_exit(&ctx, &GprFile::default(), None);
        assert_eq!(bbm_violations(&o).len(), 1);
    }

    #[test]
    fn break_before_make_check_can_be_disabled() {
        let o = Oracle::builder(&MachineConfig::default())
            .check_break_before_make(false)
            .build();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        o.trap_enter(&ctx, Esr::hvc64(0), None, &GprFile::default(), None);
        o.pte_downgrade(&ctx, 1, 0x8000, 2);
        o.trap_exit(&ctx, &GprFile::default(), None);
        assert!(bbm_violations(&o).is_empty());
    }

    #[test]
    fn transfer_protocol_accepts_the_clean_round_trips() {
        use TransferEdge::*;
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        // Host <-> hyp share, host <-> hyp donation, guest map + share
        // ping-pong + reclaim, firmware: each page's full legal life.
        o.transfer(&ctx, ShareHyp, 0x100, 1, false);
        o.transfer(&ctx, UnshareHyp, 0x100, 1, false);
        o.transfer(&ctx, DonateHyp, 0x100, 2, false);
        o.transfer(&ctx, DonateHost, 0x100, 2, false);
        o.transfer(&ctx, MapGuestOwned, 0x200, 1, false);
        o.transfer(&ctx, GuestShareHost, 0x200, 1, false);
        o.host_regain(&ctx, 0x200, 1);
        o.transfer(&ctx, GuestUnshareHost, 0x200, 1, false);
        o.transfer(&ctx, Reclaim, 0x200, 1, false);
        o.host_regain(&ctx, 0x200, 1);
        o.transfer(&ctx, MapGuestShared, 0x300, 1, false);
        o.transfer(&ctx, Reclaim, 0x300, 1, false);
        o.transfer(&ctx, Firmware, 0x400, 2, false);
        o.firmware_donated(&ctx, 0x1000, 1, 0x400, 2);
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn transfer_protocol_flags_an_illegal_edge_with_its_departure_state() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        o.transfer(&ctx, TransferEdge::ShareHyp, 0x100, 1, false);
        // Sharing an already-shared page breaks the protocol.
        o.transfer(&ctx, TransferEdge::ShareHyp, 0x100, 1, false);
        let vs = o.violations();
        assert_eq!(vs.len(), 1, "{vs:?}");
        match &vs[0] {
            Violation::TransferProtocol {
                seq,
                edge,
                pfn,
                detail,
            } => {
                assert!(seq.is_some(), "anchored on the transfer event");
                assert_eq!(*edge, TransferEdge::ShareHyp);
                assert_eq!(*pfn, 0x100);
                assert!(detail.contains("shared_hyp"), "{detail}");
            }
            v => panic!("wrong variant: {v:?}"),
        }
    }

    #[test]
    fn dirty_reclaim_is_a_wipe_violation() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        o.transfer(&ctx, TransferEdge::MapGuestOwned, 0x200, 1, false);
        o.transfer(&ctx, TransferEdge::Reclaim, 0x200, 1, true);
        let vs = o.violations();
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(
            matches!(
                &vs[0],
                Violation::ReclaimWipe {
                    seq: Some(_),
                    pfn: 0x200
                }
            ),
            "{vs:?}"
        );
    }

    #[test]
    fn firmware_regain_is_flagged_even_across_teardown() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        o.transfer(&ctx, TransferEdge::Firmware, 0x400, 2, false);
        o.firmware_donated(&ctx, 0x1000, 7, 0x400, 2);
        assert!(o.is_clean());
        // Long after the donating VM is gone (the tracker never forgets),
        // a regain overlapping one firmware page is a breach.
        o.host_regain(&ctx, 0x3ff, 2);
        let vs = o.violations();
        assert_eq!(vs.len(), 1, "{vs:?}");
        match &vs[0] {
            Violation::FirmwareProtection {
                seq,
                handle,
                uniq,
                pfn,
            } => {
                assert!(seq.is_some(), "anchored on the regain event");
                assert_eq!((*handle, *uniq, *pfn), (0x1000, 7, 0x400));
            }
            v => panic!("wrong variant: {v:?}"),
        }
        // The same page is not re-reported.
        o.host_regain(&ctx, 0x400, 1);
        assert_eq!(o.violations().len(), 1);
        // The region's other page still is.
        o.host_regain(&ctx, 0x401, 1);
        assert_eq!(o.violations().len(), 2);
    }

    #[test]
    fn firmware_backstop_catches_an_unannounced_host_mapping() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        o.firmware_donated(&ctx, 0x1000, 3, 0x40600, 1);
        // A host abstraction whose annotations no longer exclude the
        // firmware page (as after a buggy reclaim): the host can reach it
        // again even though no regain hook announced anything.
        o.apply_msg(CheckMsg::LockAcquired {
            cpu: 0,
            trap: None,
            comp: Component::Host,
            value: ComponentValue::Host(GhostHost::default()),
            reports: Vec::new(),
            check_ni: false,
        });
        let vs = o.violations();
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(
            matches!(
                &vs[0],
                Violation::FirmwareProtection {
                    handle: 0x1000,
                    uniq: 3,
                    pfn: 0x40600,
                    ..
                }
            ),
            "{vs:?}"
        );
    }

    #[test]
    fn android_checks_can_be_disabled() {
        let o = Oracle::builder(&MachineConfig::default())
            .check_transfer_protocol(false)
            .check_firmware_protection(false)
            .build();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        o.transfer(&ctx, TransferEdge::UnshareHyp, 0x100, 1, false);
        o.transfer(&ctx, TransferEdge::Reclaim, 0x200, 1, true);
        o.firmware_donated(&ctx, 0x1000, 1, 0x400, 1);
        o.host_regain(&ctx, 0x400, 1);
        assert!(o.is_clean(), "{:?}", o.violations());
    }
}
