//! The runtime oracle: recording ghost states and checking the spec.
//!
//! [`Oracle`] implements the hypervisor's instrumentation points
//! ([`GhostHooks`]) and realises the timeline of the paper's Fig. 6: at
//! trap entry it starts recording a pre-state (1); each component lock
//! acquisition records that component's abstraction into the pre-state
//! (2)-(3); each release records into the post-state (4)-(5); at trap exit
//! (6) it collects the final thread-local state and call data, computes
//! the expected post-state with the specification function (7), and
//! compares (8) — the ternary check.
//!
//! It also maintains the two §4.4 invariants: a single *shared copy* of
//! the entire ghost state, against which every acquisition checks that
//! nothing changed while the lock was free (non-interference), and the
//! per-component page-table footprints (separation).

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::attrs::Stage;
use pkvm_aarch64::esr::Esr;
use pkvm_aarch64::sync::Mutex;
use pkvm_aarch64::sysreg::GprFile;
use pkvm_hyp::hooks::{Component, ComponentView, GhostHooks, HookCtx, VcpuView};
use pkvm_hyp::hypercalls;
use pkvm_hyp::machine::MachineConfig;
use pkvm_hyp::mm::compute_layout;
use pkvm_hyp::owner::PageState;
use pkvm_hyp::vm::Handle;

use crate::abscache::{AbsCache, CacheKey, CacheStats};
use crate::abstraction::{
    abstract_host, abstract_host_from_interp, abstract_hyp, abstract_vm, abstract_vm_with_pgt,
    interpret_pgtable, Anomaly,
};
use crate::calldata::GhostCallData;
use crate::check::{check_trap, normalize, Violation};
use crate::diff::diff_states;
use crate::maplet::{Maplet, MapletTarget};
use crate::spec::{abs_hyp_attrs, compute_post, SpecVerdict};
use crate::state::{
    AbstractPgtable, GhostCpu, GhostGlobals, GhostHost, GhostLoadedVcpu, GhostPkvm, GhostState,
};

/// Oracle configuration switches.
///
/// Construct with [`OracleOpts::builder`] (or [`Default`]): the builder
/// keeps call sites valid as switches are added.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct OracleOpts {
    /// Check that lock-protected state is unchanged between critical
    /// sections (§4.4 invariant 1).
    pub check_noninterference: bool,
    /// Check the page-table footprint separation (§4.4 invariant 2).
    pub check_separation: bool,
    /// Serve component abstractions from the incremental cache
    /// ([`AbsCache`]), re-interpreting only write-log-dirtied subtrees.
    pub incremental_abstraction: bool,
    /// Run the full and incremental abstractions side by side and report
    /// any divergence as an oracle self-check violation. Implies the
    /// cache is maintained; the *full* result feeds the checks.
    pub shadow_validation: bool,
}

impl Default for OracleOpts {
    fn default() -> Self {
        Self {
            check_noninterference: true,
            check_separation: true,
            incremental_abstraction: false,
            shadow_validation: false,
        }
    }
}

impl OracleOpts {
    /// Starts a builder from the defaults.
    pub fn builder() -> OracleOptsBuilder {
        OracleOptsBuilder(OracleOpts::default())
    }

    fn uses_cache(&self) -> bool {
        self.incremental_abstraction || self.shadow_validation
    }
}

/// Builder for [`OracleOpts`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleOptsBuilder(OracleOpts);

impl OracleOptsBuilder {
    /// Toggle the §4.4 non-interference check (default on).
    pub fn check_noninterference(mut self, on: bool) -> Self {
        self.0.check_noninterference = on;
        self
    }

    /// Toggle the §4.4 footprint-separation check (default on).
    pub fn check_separation(mut self, on: bool) -> Self {
        self.0.check_separation = on;
        self
    }

    /// Toggle the incremental abstraction cache (default off).
    pub fn incremental_abstraction(mut self, on: bool) -> Self {
        self.0.incremental_abstraction = on;
        self
    }

    /// Toggle shadow validation of the incremental cache (default off).
    pub fn shadow_validation(mut self, on: bool) -> Self {
        self.0.shadow_validation = on;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> OracleOpts {
        self.0
    }
}

/// One line of the oracle's trap trace: what was checked and how it went.
#[derive(Clone, Debug)]
pub struct TrapRecord {
    /// Hardware thread the trap ran on.
    pub cpu: usize,
    /// Handler name (hypercall name, `host_abort`, `smc`, ...).
    pub name: String,
    /// `Ok`: checked and clean. `Err`: number of violations, or the
    /// looseness reason when the check was skipped.
    pub outcome: TrapOutcome,
}

/// How one trap's check concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrapOutcome {
    /// Spec computed and matched.
    Clean,
    /// Spec computed; this many violations were recorded.
    Violated(usize),
    /// The loose specification skipped the check.
    Unchecked(&'static str),
}

/// How many trap records the trace retains.
const TRACE_CAP: usize = 256;

/// Counters reported alongside violations (for the evaluation harness).
#[derive(Debug, Default)]
pub struct OracleStats {
    /// Traps whose spec was computed and checked.
    pub traps_checked: AtomicU64,
    /// Traps skipped under the loose specification (`Unchecked`).
    pub traps_unchecked: AtomicU64,
    /// Component abstractions computed (lock events).
    pub abstractions: AtomicU64,
    /// Individual `READ_ONCE` values recorded.
    pub read_onces: AtomicU64,
}

struct CpuRecord {
    in_trap: bool,
    pre: GhostState,
    post: GhostState,
    call: Option<GhostCallData>,
}

/// The runtime test oracle; install as the machine's [`GhostHooks`].
pub struct Oracle {
    /// The initialisation-time constants, derived independently from the
    /// machine configuration (the spec's own view of the correct layout).
    pub globals: GhostGlobals,
    opts: OracleOpts,
    shared: Mutex<GhostState>,
    cpus: Vec<Mutex<CpuRecord>>,
    footprints: Mutex<HashMap<Component, BTreeSet<u64>>>,
    abscache: Mutex<AbsCache>,
    violations: Mutex<Vec<Violation>>,
    trace: Mutex<VecDeque<TrapRecord>>,
    /// Counters.
    pub stats: OracleStats,
}

impl Oracle {
    /// Builds an oracle for machines booted from `config`.
    ///
    /// The globals are *derived from the configuration*, not copied from
    /// the booted machine: the oracle computes what a correct layout looks
    /// like, so layout bugs (real bug 5) surface at the boot check.
    pub fn new(config: &MachineConfig, opts: OracleOpts) -> Arc<Oracle> {
        let (last_base, last_size) = *config.dram.last().expect("config has DRAM");
        let ram_end = last_base + last_size;
        let pool_base_pfn = (ram_end - config.hyp_pool_pages * PAGE_SIZE) >> 12;
        let layout = compute_layout(PhysAddr::new(ram_end), false).expect("layout fits");
        let globals = GhostGlobals {
            nr_cpus: config.nr_cpus,
            physvirt_offset: layout.physvirt_offset,
            uart_va: layout.uart_va.bits(),
            hyp_range: (pool_base_pfn, config.hyp_pool_pages),
            ram: config.dram.clone(),
            mmio: config.mmio.clone(),
        };
        let shared = GhostState::blank(&globals);
        Arc::new(Oracle {
            cpus: (0..config.nr_cpus)
                .map(|_| {
                    Mutex::new(CpuRecord {
                        in_trap: false,
                        pre: GhostState::blank(&globals),
                        post: GhostState::blank(&globals),
                        call: None,
                    })
                })
                .collect(),
            globals,
            opts,
            shared: Mutex::new(shared),
            footprints: Mutex::new(HashMap::new()),
            abscache: Mutex::new(AbsCache::new()),
            violations: Mutex::new(Vec::new()),
            trace: Mutex::new(VecDeque::new()),
            stats: OracleStats::default(),
        })
    }

    /// Starts a builder for machines booted from `config`; configure the
    /// switches fluently, then [`build`](OracleBuilder::build).
    pub fn builder(config: &MachineConfig) -> OracleBuilder<'_> {
        OracleBuilder {
            config,
            opts: OracleOpts::default(),
        }
    }

    /// Resolution counters of the incremental abstraction cache (all zero
    /// unless `incremental_abstraction` or `shadow_validation` is on).
    pub fn cache_stats(&self) -> CacheStats {
        self.abscache.lock().stats
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.violations.lock().clone()
    }

    /// Returns `true` if no violations have been recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.lock().is_empty()
    }

    /// Drops all recorded violations (between test cases).
    pub fn clear_violations(&self) {
        self.violations.lock().clear();
    }

    /// The most recent checked traps (bounded; newest last).
    pub fn trace(&self) -> Vec<TrapRecord> {
        self.trace.lock().iter().cloned().collect()
    }

    fn push_trace(&self, rec: TrapRecord) {
        let mut t = self.trace.lock();
        if t.len() == TRACE_CAP {
            t.pop_front();
        }
        t.push_back(rec);
    }

    fn report(&self, v: Violation) {
        self.violations.lock().push(v);
    }

    fn report_anomalies(&self, context: &str, anomalies: Vec<Anomaly>) {
        let mut vs = self.violations.lock();
        for a in anomalies {
            vs.push(Violation::AbstractionAnomaly {
                context: context.into(),
                anomaly: a,
            });
        }
    }

    /// Approximate resident size of the ghost state, in bytes (for the
    /// paper's memory-impact measurement).
    pub fn approx_ghost_bytes(&self) -> usize {
        fn state_bytes(s: &GhostState) -> usize {
            let mapping = |m: &crate::mapping::Mapping| m.len() * core::mem::size_of::<Maplet>();
            let mut n = core::mem::size_of::<GhostState>();
            if let Some(h) = &s.host {
                n += mapping(&h.annot) + mapping(&h.shared) + h.table_pages.len() * 8;
            }
            if let Some(p) = &s.pkvm {
                n += mapping(&p.pgt.mapping) + p.pgt.table_pages.len() * 8;
            }
            for vm in s.vms.values() {
                n += mapping(&vm.pgt.mapping) + vm.pgt.table_pages.len() * 8;
                n += vm.vcpus.len() * core::mem::size_of::<crate::state::GhostVcpu>();
            }
            n += s.locals.len() * core::mem::size_of::<GhostCpu>();
            n
        }
        let mut total = state_bytes(&self.shared.lock());
        for c in &self.cpus {
            let rec = c.lock();
            total += state_bytes(&rec.pre) + state_bytes(&rec.post);
        }
        total
    }

    /// The component abstraction function: dispatches on the view the
    /// lock helper provided.
    fn abstract_component(
        &self,
        ctx: &HookCtx<'_>,
        comp: Component,
        view: &ComponentView,
    ) -> ComponentValue {
        self.stats.abstractions.fetch_add(1, Ordering::Relaxed);
        let cached = self.opts.uses_cache();
        let mut anomalies = Vec::new();
        let value = match view {
            ComponentView::Host { root } if cached => {
                let interp =
                    self.cached_interp(ctx, Stage::Stage2, *root, CacheKey::Host, &mut anomalies);
                ComponentValue::Host(abstract_host_from_interp(
                    interp,
                    &self.globals,
                    &mut anomalies,
                ))
            }
            ComponentView::Host { root } => {
                ComponentValue::Host(abstract_host(ctx.mem, *root, &self.globals, &mut anomalies))
            }
            ComponentView::Hyp { root } if cached => {
                let pgt =
                    self.cached_interp(ctx, Stage::Stage1, *root, CacheKey::Hyp, &mut anomalies);
                ComponentValue::Pkvm(GhostPkvm { pgt })
            }
            ComponentView::Hyp { root } => {
                ComponentValue::Pkvm(abstract_hyp(ctx.mem, *root, &mut anomalies))
            }
            ComponentView::VmTable { vms } => {
                let mut v = vms.clone();
                v.sort_unstable();
                if cached {
                    // VM teardown is observed here: drop the interpretation
                    // of any handle no longer in the table, so a reused
                    // handle never resurrects a stale entry.
                    self.abscache
                        .lock()
                        .retain_vms(|h| v.iter().any(|&(live, _)| live == h));
                }
                ComponentValue::VmTable(v)
            }
            ComponentView::Vm(view) if cached => {
                let pgt = self.cached_interp(
                    ctx,
                    Stage::Stage2,
                    view.s2_root,
                    CacheKey::Vm(view.handle),
                    &mut anomalies,
                );
                ComponentValue::Vm(view.handle, abstract_vm_with_pgt(view, pgt))
            }
            ComponentView::Vm(view) => {
                ComponentValue::Vm(view.handle, abstract_vm(ctx.mem, view, &mut anomalies))
            }
        };
        if !anomalies.is_empty() {
            self.report_anomalies(&format!("{comp:?}"), anomalies);
        }
        value
    }

    /// Interprets `root` through the incremental cache. Under shadow
    /// validation the full walk also runs; a divergence is reported as an
    /// oracle self-check violation and the full result wins, so a cache
    /// bug can never mask (or fabricate) a hypervisor bug.
    fn cached_interp(
        &self,
        ctx: &HookCtx<'_>,
        stage: Stage,
        root: PhysAddr,
        key: CacheKey,
        anomalies: &mut Vec<Anomaly>,
    ) -> AbstractPgtable {
        if !self.opts.shadow_validation {
            return self
                .abscache
                .lock()
                .interp(ctx.mem, stage, root, key, anomalies);
        }
        let mut inc_anomalies = Vec::new();
        let inc = self
            .abscache
            .lock()
            .interp(ctx.mem, stage, root, key, &mut inc_anomalies);
        let before = anomalies.len();
        let full = interpret_pgtable(ctx.mem, stage, root, anomalies);
        if inc != full || inc_anomalies != anomalies[before..] {
            self.report(Violation::ShadowDivergence {
                component: format!("{key:?}"),
                diff: pgtable_divergence(&full, &inc, &anomalies[before..], &inc_anomalies),
            });
        }
        full
    }

    fn set_component(state: &mut GhostState, value: &ComponentValue, only_if_absent: bool) {
        match value {
            ComponentValue::Host(h) => {
                if !(only_if_absent && state.host.is_some()) {
                    state.host = Some(h.clone());
                }
            }
            ComponentValue::Pkvm(p) => {
                if !(only_if_absent && state.pkvm.is_some()) {
                    state.pkvm = Some(p.clone());
                }
            }
            ComponentValue::VmTable(t) => {
                if !(only_if_absent && state.vm_table.is_some()) {
                    state.vm_table = Some(t.clone());
                }
            }
            ComponentValue::Vm(h, vm) => {
                if !(only_if_absent && state.vms.contains_key(h)) {
                    state.vms.insert(*h, vm.clone());
                }
            }
        }
    }

    fn noninterference_check(&self, comp: Component, value: &ComponentValue) {
        if !self.opts.check_noninterference {
            return;
        }
        let shared = self.shared.lock();
        let (prev, now): (GhostState, GhostState) = match value {
            ComponentValue::Host(h) => {
                let Some(p) = &shared.host else { return };
                (
                    GhostState {
                        host: Some(p.clone()),
                        ..GhostState::default()
                    },
                    GhostState {
                        host: Some(h.clone()),
                        ..GhostState::default()
                    },
                )
            }
            ComponentValue::Pkvm(p2) => {
                let Some(p) = &shared.pkvm else { return };
                (
                    GhostState {
                        pkvm: Some(p.clone()),
                        ..GhostState::default()
                    },
                    GhostState {
                        pkvm: Some(p2.clone()),
                        ..GhostState::default()
                    },
                )
            }
            ComponentValue::VmTable(t) => {
                let Some(p) = &shared.vm_table else { return };
                (
                    GhostState {
                        vm_table: Some(p.clone()),
                        ..GhostState::default()
                    },
                    GhostState {
                        vm_table: Some(t.clone()),
                        ..GhostState::default()
                    },
                )
            }
            ComponentValue::Vm(h, vm) => {
                let Some(p) = shared.vms.get(h) else { return };
                let mut a = GhostState::default();
                a.vms.insert(*h, p.clone());
                let mut b = GhostState::default();
                b.vms.insert(*h, vm.clone());
                (a, b)
            }
        };
        drop(shared);
        let (prev_n, now_n) = (normalize(&prev), normalize(&now));
        if prev_n != now_n {
            self.report(Violation::NonInterference {
                component: format!("{comp:?}"),
                diff: diff_states(&prev_n, &now_n),
            });
        }
    }

    fn trap_name(call: &GhostCallData) -> String {
        match call.esr.ec() {
            Some(pkvm_aarch64::esr::ExceptionClass::Hvc64) => {
                hypercalls::name(call.regs_pre.get(0)).to_string()
            }
            Some(pkvm_aarch64::esr::ExceptionClass::Smc64) => "smc".into(),
            Some(_) => "host_abort".into(),
            None => "unknown".into(),
        }
    }

    fn ghost_cpu(regs: &GprFile, loaded: &Option<(Handle, usize, VcpuView)>) -> GhostCpu {
        GhostCpu {
            regs: *regs,
            loaded: loaded.as_ref().map(|(h, i, v)| GhostLoadedVcpu {
                handle: *h,
                idx: *i,
                regs: v.regs,
                memcache: v.memcache_pages.iter().map(|p| p.pfn()).collect(),
            }),
        }
    }

    /// The specification of the boot-time initial state: carveout
    /// annotated hyp-owned in the host table; carveout linear-mapped and
    /// the UART device-mapped in pKVM's table; no VMs.
    pub fn spec_boot_state(&self) -> GhostState {
        let g = &self.globals;
        let (pool_pfn, pool_pages) = g.hyp_range;
        let pool_base = pool_pfn << 12;
        let mut s = GhostState::blank(g);
        let mut host = GhostHost::default();
        host.annot.insert_new(Maplet {
            ia: pool_base,
            nr_pages: pool_pages,
            target: MapletTarget::Annotated {
                owner: pkvm_hyp::owner::OwnerId::HYP,
            },
        });
        s.host = Some(host);
        let mut pkvm = GhostPkvm::default();
        pkvm.pgt.mapping.insert_new(Maplet {
            ia: g.hyp_va(pool_base),
            nr_pages: pool_pages,
            target: MapletTarget::Mapped {
                oa: pool_base,
                attrs: abs_hyp_attrs(true, PageState::Owned),
            },
        });
        if let Some(&(uart_base, _)) = g.mmio.first() {
            pkvm.pgt.mapping.insert_new(Maplet {
                ia: g.uart_va,
                nr_pages: 1,
                target: MapletTarget::Mapped {
                    oa: uart_base,
                    attrs: abs_hyp_attrs(false, PageState::Owned),
                },
            });
        }
        s.pkvm = Some(pkvm);
        s.vm_table = Some(Vec::new());
        s
    }

    /// Checks the recorded post-boot state against [`Oracle::spec_boot_state`].
    /// Call once after `Machine::boot`. Returns `true` when it matched.
    pub fn check_boot(&self) -> bool {
        let expected = normalize(&self.spec_boot_state());
        let recorded = normalize(&self.shared.lock().clone());
        let mut ok = true;
        for (name, exp_has, rec_has) in [
            ("host", expected.host.is_some(), recorded.host.is_some()),
            ("pkvm", expected.pkvm.is_some(), recorded.pkvm.is_some()),
        ] {
            if exp_has && !rec_has {
                self.report(Violation::SpecMismatch {
                    trap: "boot".into(),
                    component: name.into(),
                    diff: "component never recorded during boot".into(),
                });
                ok = false;
            }
        }
        let mut exp_cmp = expected.clone();
        exp_cmp.vm_table = None; // the VM table lock is not taken at boot
        let mut rec_cmp = recorded.clone();
        rec_cmp.vm_table = None;
        if exp_cmp.host.is_some() && rec_cmp.host.is_some() && exp_cmp != rec_cmp {
            self.report(Violation::SpecMismatch {
                trap: "boot".into(),
                component: "initial state".into(),
                diff: diff_states(&exp_cmp, &rec_cmp),
            });
            ok = false;
        }
        ok
    }
}

/// Fluent construction of an [`Oracle`]; see [`Oracle::builder`].
pub struct OracleBuilder<'a> {
    config: &'a MachineConfig,
    opts: OracleOpts,
}

impl OracleBuilder<'_> {
    /// Replaces the accumulated switches wholesale.
    pub fn opts(mut self, opts: OracleOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Toggle the §4.4 non-interference check (default on).
    pub fn check_noninterference(mut self, on: bool) -> Self {
        self.opts.check_noninterference = on;
        self
    }

    /// Toggle the §4.4 footprint-separation check (default on).
    pub fn check_separation(mut self, on: bool) -> Self {
        self.opts.check_separation = on;
        self
    }

    /// Toggle the incremental abstraction cache (default off).
    pub fn incremental_abstraction(mut self, on: bool) -> Self {
        self.opts.incremental_abstraction = on;
        self
    }

    /// Toggle shadow validation of the incremental cache (default off).
    pub fn shadow_validation(mut self, on: bool) -> Self {
        self.opts.shadow_validation = on;
        self
    }

    /// Builds the oracle.
    pub fn build(self) -> Arc<Oracle> {
        Oracle::new(self.config, self.opts)
    }
}

/// Renders what differed between the full walk and the incremental
/// replay, maplet by maplet, for the shadow-divergence report.
fn pgtable_divergence(
    full: &AbstractPgtable,
    inc: &AbstractPgtable,
    full_anomalies: &[Anomaly],
    inc_anomalies: &[Anomaly],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for m in full.mapping.iter() {
        if !inc.mapping.iter().any(|n| n == m) {
            let _ = writeln!(out, "  full only: {m:?}");
        }
    }
    for m in inc.mapping.iter() {
        if !full.mapping.iter().any(|n| n == m) {
            let _ = writeln!(out, "  incremental only: {m:?}");
        }
    }
    if full.table_pages != inc.table_pages {
        let _ = writeln!(
            out,
            "  table pages: full {:?} vs incremental {:?}",
            full.table_pages, inc.table_pages
        );
    }
    if full_anomalies != inc_anomalies {
        let _ = writeln!(
            out,
            "  anomalies: full {full_anomalies:?} vs incremental {inc_anomalies:?}"
        );
    }
    if out.is_empty() {
        out.push_str("  (states compare equal after the fact; transient divergence)\n");
    }
    out
}

enum ComponentValue {
    Host(GhostHost),
    Pkvm(GhostPkvm),
    VmTable(Vec<(Handle, usize)>),
    Vm(Handle, crate::state::GhostVm),
}

impl GhostHooks for Oracle {
    fn trap_enter(
        &self,
        ctx: &HookCtx<'_>,
        esr: Esr,
        fault_ipa: Option<u64>,
        regs: &GprFile,
        loaded: Option<(Handle, usize, VcpuView)>,
    ) {
        let mut rec = self.cpus[ctx.cpu].lock();
        rec.in_trap = true;
        rec.pre = GhostState::blank(&self.globals);
        rec.post = GhostState::blank(&self.globals);
        rec.call = Some(GhostCallData::new(ctx.cpu, esr, fault_ipa, *regs));
        let cpu_state = Self::ghost_cpu(regs, &loaded);
        rec.pre.locals.insert(ctx.cpu, cpu_state);
    }

    fn trap_exit(
        &self,
        ctx: &HookCtx<'_>,
        regs: &GprFile,
        loaded: Option<(Handle, usize, VcpuView)>,
    ) {
        let mut rec = self.cpus[ctx.cpu].lock();
        if !rec.in_trap {
            return;
        }
        rec.in_trap = false;
        let cpu_state = Self::ghost_cpu(regs, &loaded);
        rec.post.locals.insert(ctx.cpu, cpu_state);
        let mut call = rec.call.take().expect("trap_enter recorded call data");
        call.regs_post = *regs;

        // (7) Compute the expected post-state from the pre-state and the
        // call data, then (8) compare.
        let mut computed = GhostState::blank(&self.globals);
        let name = Self::trap_name(&call);
        match compute_post(&rec.pre, &call, &mut computed) {
            SpecVerdict::Checked => {
                self.stats.traps_checked.fetch_add(1, Ordering::Relaxed);
                let outcome = check_trap(&name, &rec.pre, &rec.post, &computed);
                self.push_trace(TrapRecord {
                    cpu: ctx.cpu,
                    name: name.clone(),
                    outcome: if outcome.violations.is_empty() {
                        TrapOutcome::Clean
                    } else {
                        TrapOutcome::Violated(outcome.violations.len())
                    },
                });
                if !outcome.violations.is_empty() {
                    let mut vs = self.violations.lock();
                    vs.extend(outcome.violations);
                }
                // Seed spec-defined but never-recorded components into the
                // shared copy: the next acquisition validates them.
                if !outcome.deferred.is_empty() {
                    let mut shared = self.shared.lock();
                    for comp in outcome.deferred {
                        match comp.as_str() {
                            "host" => shared.host = computed.host.clone(),
                            "pkvm" => shared.pkvm = computed.pkvm.clone(),
                            "vm_table" => shared.vm_table = computed.vm_table.clone(),
                            c if c.starts_with("vm[") => {
                                let h: u32 = c[3..c.len() - 1].parse().expect("component name");
                                if let Some(vm) = computed.vms.get(&h) {
                                    shared.vms.insert(h, vm.clone());
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            SpecVerdict::Unchecked(why) => {
                self.stats.traps_unchecked.fetch_add(1, Ordering::Relaxed);
                self.push_trace(TrapRecord {
                    cpu: ctx.cpu,
                    name,
                    outcome: TrapOutcome::Unchecked(why),
                });
                // Loose case: the shared copy was already updated at the
                // lock releases.
            }
            SpecVerdict::Impossible(reason) => {
                self.push_trace(TrapRecord {
                    cpu: ctx.cpu,
                    name: name.clone(),
                    outcome: TrapOutcome::Violated(1),
                });
                self.report(Violation::SpecMismatch {
                    trap: name,
                    component: "spec-detected impossibility".into(),
                    diff: reason,
                });
            }
        }
    }

    fn lock_acquired(&self, ctx: &HookCtx<'_>, comp: Component, view: &ComponentView) {
        let value = self.abstract_component(ctx, comp, view);
        self.noninterference_check(comp, &value);
        let mut rec = self.cpus[ctx.cpu].lock();
        if rec.in_trap {
            // First acquisition within the trap defines the pre-state.
            Self::set_component(&mut rec.pre, &value, true);
        } else {
            drop(rec);
            Self::set_component(&mut self.shared.lock(), &value, false);
        }
    }

    fn lock_releasing(&self, ctx: &HookCtx<'_>, comp: Component, view: &ComponentView) {
        let value = self.abstract_component(ctx, comp, view);
        {
            let mut rec = self.cpus[ctx.cpu].lock();
            if rec.in_trap {
                // Last release within the trap defines the post-state.
                Self::set_component(&mut rec.post, &value, false);
            }
        }
        Self::set_component(&mut self.shared.lock(), &value, false);
    }

    fn read_once(&self, ctx: &HookCtx<'_>, tag: &'static str, value: u64) {
        self.stats.read_onces.fetch_add(1, Ordering::Relaxed);
        let mut rec = self.cpus[ctx.cpu].lock();
        if let Some(call) = rec.call.as_mut() {
            call.read_onces.push((tag, value));
        }
    }

    fn table_page_alloc(&self, _ctx: &HookCtx<'_>, comp: Component, page: PhysAddr) {
        if !self.opts.check_separation {
            return;
        }
        let mut fp = self.footprints.lock();
        for (other, pages) in fp.iter() {
            if *other != comp && pages.contains(&page.pfn()) {
                let v = Violation::SeparationOverlap {
                    component: format!("{comp:?}"),
                    pfn: page.pfn(),
                    owner: format!("{other:?}"),
                };
                drop(fp);
                self.report(v);
                return;
            }
        }
        fp.entry(comp).or_default().insert(page.pfn());
    }

    fn table_page_free(&self, _ctx: &HookCtx<'_>, comp: Component, page: PhysAddr) {
        if !self.opts.check_separation {
            return;
        }
        if let Some(pages) = self.footprints.lock().get_mut(&comp) {
            pages.remove(&page.pfn());
        }
    }

    fn hyp_panic(&self, _ctx: &HookCtx<'_>, reason: &str) {
        self.report(Violation::HypPanic {
            reason: reason.into(),
        });
    }

    fn wants_write_log(&self) -> bool {
        self.opts.uses_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> Arc<Oracle> {
        Oracle::new(&MachineConfig::default(), OracleOpts::default())
    }

    #[test]
    fn boot_spec_state_has_the_three_boot_components() {
        let o = oracle();
        let s = o.spec_boot_state();
        let host = s.host.as_ref().expect("host annotated");
        assert_eq!(host.annot.nr_pages(), o.globals.hyp_range.1);
        assert!(host.shared.is_empty());
        let pkvm = s.pkvm.as_ref().expect("linear map + uart");
        assert_eq!(pkvm.pgt.mapping.nr_pages(), o.globals.hyp_range.1 + 1);
        assert_eq!(s.vm_table.as_deref(), Some(&[][..]));
    }

    #[test]
    fn separation_check_flags_cross_component_table_pages() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        let page = PhysAddr::new(0x4400_0000);
        o.table_page_alloc(&ctx, Component::Host, page);
        assert!(o.is_clean());
        // The same page backing a *different* component's table: flagged.
        o.table_page_alloc(&ctx, Component::Hyp, page);
        assert!(matches!(
            o.violations()[0],
            Violation::SeparationOverlap { .. }
        ));
        // Freeing and re-allocating elsewhere is fine.
        o.clear_violations();
        o.table_page_free(&ctx, Component::Host, page);
        o.table_page_alloc(&ctx, Component::Hyp, page);
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn separation_check_can_be_disabled() {
        let o = Oracle::builder(&MachineConfig::default())
            .check_separation(false)
            .build();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        let page = PhysAddr::new(0x4400_0000);
        o.table_page_alloc(&ctx, Component::Host, page);
        o.table_page_alloc(&ctx, Component::Hyp, page);
        assert!(o.is_clean());
    }

    #[test]
    fn hyp_panic_is_a_violation() {
        let o = oracle();
        let mem = pkvm_aarch64::memory::PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        o.hyp_panic(&ctx, "BUG()");
        assert!(matches!(&o.violations()[0], Violation::HypPanic { reason } if reason == "BUG()"));
    }

    #[test]
    fn trace_is_bounded() {
        let o = oracle();
        for i in 0..(TRACE_CAP + 10) {
            o.push_trace(TrapRecord {
                cpu: 0,
                name: format!("t{i}"),
                outcome: TrapOutcome::Clean,
            });
        }
        let t = o.trace();
        assert_eq!(t.len(), TRACE_CAP);
        assert_eq!(t.last().unwrap().name, format!("t{}", TRACE_CAP + 9));
    }

    #[test]
    fn ghost_bytes_accounting_is_nonzero_once_populated() {
        let o = oracle();
        let base = o.approx_ghost_bytes();
        let mut shared = o.shared.lock();
        let mut host = GhostHost::default();
        host.annot.insert_new(Maplet {
            ia: 0x4400_0000,
            nr_pages: 16,
            target: MapletTarget::Annotated {
                owner: pkvm_hyp::owner::OwnerId::HYP,
            },
        });
        shared.host = Some(host);
        drop(shared);
        assert!(o.approx_ghost_bytes() > base);
    }
}
