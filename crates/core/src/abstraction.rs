//! Abstraction functions: interpreting concrete state into ghost state.
//!
//! The central one is [`interpret_pgtable`] (Fig. 2 of the paper): a
//! complete traversal of an in-memory Arm-format translation table,
//! incrementally constructing a finite range map with the coalescing
//! `extend` operation. Unlike the hardware walk and the implementation's
//! walker — which visit a specific input range — this interprets the
//! whole tree, because the ghost state is the table's full extension.
//!
//! On top of it sit the per-component abstraction functions that the
//! recording machinery invokes at lock boundaries: [`abstract_hyp`],
//! [`abstract_host`] (with its legality check of the loosely-specified
//! mapped-on-demand region), and [`abstract_vm`].

use std::collections::BTreeMap;

use pkvm_aarch64::addr::{level_pages, PhysAddr, PAGE_SIZE, PTES_PER_TABLE, START_LEVEL};
use pkvm_aarch64::attrs::{MemType, Perms, Stage};
use pkvm_aarch64::desc::EntryKind;
use pkvm_aarch64::memory::PhysMem;
use pkvm_hyp::hooks::VmView;
use pkvm_hyp::owner::{annotation_owner, OwnerId, PageState};

use crate::maplet::{AbsAttrs, Maplet, MapletTarget};
use crate::state::{AbstractPgtable, GhostGlobals, GhostHost, GhostPkvm, GhostVcpu, GhostVm};

/// Something in the concrete state that no well-formed hypervisor state
/// should contain; reported by the abstraction functions and turned into
/// oracle violations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Anomaly {
    /// A reserved descriptor encoding at (table, index, level).
    ReservedDescriptor {
        /// Table node holding the descriptor.
        table: u64,
        /// Index within the node.
        index: usize,
        /// Level of the node.
        level: u8,
    },
    /// A mapped descriptor whose software bits decode to no legal page
    /// state.
    IllegalPageState {
        /// Input address of the range.
        ia: u64,
    },
    /// A host-owned mapping that is not an identity mapping.
    HostNotIdentity {
        /// Input address.
        ia: u64,
        /// Output address found.
        oa: u64,
    },
    /// A host-owned mapping outside every memory region.
    HostOutsideMemory {
        /// Input address.
        ia: u64,
    },
    /// A host mapping of device space that is not device-typed RW.
    HostBadDeviceAttrs {
        /// Input address.
        ia: u64,
    },
    /// A translation-table fetch left simulated memory (corrupt table).
    TableOutsideMemory {
        /// The table address that could not be read.
        table: u64,
    },
}

/// Where each table node sits in the tree: `pfn -> (level, ia base of the
/// node's span)`. Collected alongside interpretation so the incremental
/// abstraction cache (`abscache`) can map a dirtied table page back to the
/// subtree it roots.
pub type TableMeta = BTreeMap<u64, (u8, u64)>;

/// Pages spanned by one whole table node at `level` (512 entries).
pub fn table_span_pages(level: u8) -> u64 {
    PTES_PER_TABLE * level_pages(level)
}

/// Interprets the concrete page table rooted at `root` into an abstract
/// page table: the `_interpret_pgtable` of Fig. 2, specialised (as in the
/// paper) to the 4-level, 4 KiB-granule configuration Android uses.
pub fn interpret_pgtable(
    mem: &PhysMem,
    stage: Stage,
    root: PhysAddr,
    anomalies: &mut Vec<Anomaly>,
) -> AbstractPgtable {
    let mut meta = TableMeta::new();
    interpret_subtree(mem, stage, root, START_LEVEL, 0, &mut meta, anomalies)
}

/// [`interpret_pgtable`], additionally returning the per-node
/// [`TableMeta`] the incremental cache keys its invalidation on.
pub fn interpret_pgtable_with_meta(
    mem: &PhysMem,
    stage: Stage,
    root: PhysAddr,
    anomalies: &mut Vec<Anomaly>,
) -> (AbstractPgtable, TableMeta) {
    let mut meta = TableMeta::new();
    let out = interpret_subtree(mem, stage, root, START_LEVEL, 0, &mut meta, anomalies);
    (out, meta)
}

/// Interprets the subtree rooted at the table node `table`, which sits at
/// `level` and maps input addresses from `ia_base`. The root call is
/// `interpret_subtree(mem, stage, root, START_LEVEL, 0, ..)`; the
/// incremental cache re-enters at interior nodes it knows were dirtied.
pub fn interpret_subtree(
    mem: &PhysMem,
    stage: Stage,
    table: PhysAddr,
    level: u8,
    ia_base: u64,
    meta: &mut TableMeta,
    anomalies: &mut Vec<Anomaly>,
) -> AbstractPgtable {
    let mut out = AbstractPgtable::default();
    interpret_table(mem, stage, table, level, ia_base, &mut out, meta, anomalies);
    out
}

#[expect(clippy::too_many_arguments)]
fn interpret_table(
    mem: &PhysMem,
    stage: Stage,
    table: PhysAddr,
    level: u8,
    va_partial: u64,
    out: &mut AbstractPgtable,
    meta: &mut TableMeta,
    anomalies: &mut Vec<Anomaly>,
) {
    out.table_pages.insert(table.pfn());
    meta.insert(table.pfn(), (level, va_partial));
    let nr_pages = level_pages(level);
    // Read the whole table page at once: the walk touches every
    // descriptor anyway, and a single bulk access avoids paying the
    // region check and page lookup 512 times per table.
    let ptes = match mem.read_table(table) {
        Ok(p) => p,
        Err(_) => {
            anomalies.push(Anomaly::TableOutsideMemory {
                table: table.bits(),
            });
            return;
        }
    };
    // Iterate over the current table entries.
    for (idx, &pte) in ptes.iter().enumerate() {
        // Compute the input address mapped by this entry.
        let va_offset_in_region = idx as u64 * nr_pages * PAGE_SIZE;
        let va_partial_new = va_partial | va_offset_in_region;
        match pte.kind(level) {
            EntryKind::Invalid => {
                // Invalid entries may carry a software owner annotation;
                // all-zero entries denote nothing and are skipped.
                if pte.bits() != 0 {
                    let owner = annotation_owner(pte);
                    out.mapping.extend_coalesce(Maplet {
                        ia: va_partial_new,
                        nr_pages,
                        target: MapletTarget::Annotated { owner },
                    });
                }
            }
            EntryKind::Table => {
                interpret_table(
                    mem,
                    stage,
                    pte.table_addr(),
                    level + 1,
                    va_partial_new,
                    out,
                    meta,
                    anomalies,
                );
            }
            EntryKind::Block | EntryKind::Page => {
                // Compute output address and attributes, then extend the
                // mapping with a maplet, coalescing if possible.
                let oa = pte.leaf_oa(level);
                let attrs = pte.leaf_attrs(stage);
                let state = PageState::from_sw(attrs.sw);
                if state.is_none() {
                    anomalies.push(Anomaly::IllegalPageState { ia: va_partial_new });
                }
                out.mapping.extend_coalesce(Maplet {
                    ia: va_partial_new,
                    nr_pages,
                    target: MapletTarget::Mapped {
                        oa: oa.bits(),
                        attrs: AbsAttrs {
                            perms: attrs.perms,
                            memtype: attrs.memtype,
                            state,
                        },
                    },
                });
            }
            EntryKind::Reserved => {
                anomalies.push(Anomaly::ReservedDescriptor {
                    table: table.bits(),
                    index: idx,
                    level,
                });
            }
        }
    }
}

/// Abstraction of pKVM's own stage 1: the full extensional mapping.
pub fn abstract_hyp(mem: &PhysMem, root: PhysAddr, anomalies: &mut Vec<Anomaly>) -> GhostPkvm {
    GhostPkvm {
        pgt: interpret_pgtable(mem, Stage::Stage1, root, anomalies),
    }
}

/// Abstraction of the host's stage 2.
///
/// Splits the interpretation into the two deterministic sub-maps the ghost
/// tracks (annotations; shared/borrowed pages) and *checks* — rather than
/// records — the loosely-specified mapped-on-demand remainder: every plain
/// host-owned mapping must be an identity mapping of real memory with the
/// attributes the on-demand path installs.
pub fn abstract_host(
    mem: &PhysMem,
    root: PhysAddr,
    globals: &GhostGlobals,
    anomalies: &mut Vec<Anomaly>,
) -> GhostHost {
    let interp = interpret_pgtable(mem, Stage::Stage2, root, anomalies);
    abstract_host_from_interp(interp, globals, anomalies)
}

/// The partitioning-and-checking half of [`abstract_host`], over an
/// already-computed interpretation (possibly served by the incremental
/// cache). The mapped-on-demand legality checks deliberately rerun on
/// every call — they are per-event checks, not part of the cached value.
pub fn abstract_host_from_interp(
    interp: AbstractPgtable,
    globals: &GhostGlobals,
    anomalies: &mut Vec<Anomaly>,
) -> GhostHost {
    let mut host = GhostHost {
        table_pages: interp.table_pages,
        ..GhostHost::default()
    };
    for m in interp.mapping.iter() {
        match m.target {
            MapletTarget::Annotated { owner } => {
                if owner != OwnerId::HOST {
                    host.annot.extend_coalesce(*m);
                }
                // A zero-owner annotation never reaches here (zero PTEs are
                // skipped during interpretation), but annotated-host would
                // be equivalent to unmapped and is ignored.
            }
            MapletTarget::Mapped { oa, attrs } => match attrs.state {
                Some(PageState::SharedOwned) | Some(PageState::SharedBorrowed) => {
                    host.shared.extend_coalesce(*m);
                }
                _ => {
                    // The loose region: check legality page-range-wise.
                    if oa != m.ia {
                        anomalies.push(Anomaly::HostNotIdentity { ia: m.ia, oa });
                    }
                    for i in 0..m.nr_pages {
                        let pa = oa + i * PAGE_SIZE;
                        if globals.is_ram(pa) {
                            continue;
                        }
                        if globals.is_mmio(pa) {
                            if attrs.memtype != MemType::Device || attrs.perms != Perms::RW {
                                anomalies.push(Anomaly::HostBadDeviceAttrs {
                                    ia: m.ia + i * PAGE_SIZE,
                                });
                            }
                        } else {
                            anomalies.push(Anomaly::HostOutsideMemory {
                                ia: m.ia + i * PAGE_SIZE,
                            });
                        }
                    }
                }
            },
        }
    }
    host
}

/// Abstraction of one VM's lock-protected metadata, from the concrete
/// view exposed at its lock.
pub fn abstract_vm(mem: &PhysMem, view: &VmView, anomalies: &mut Vec<Anomaly>) -> GhostVm {
    let pgt = interpret_pgtable(mem, Stage::Stage2, view.s2_root, anomalies);
    abstract_vm_with_pgt(view, pgt)
}

/// The metadata half of [`abstract_vm`], over an already-interpreted
/// stage 2 (possibly served by the incremental cache).
pub fn abstract_vm_with_pgt(view: &VmView, pgt: AbstractPgtable) -> GhostVm {
    GhostVm {
        handle: view.handle,
        slot: view.slot,
        protected: view.protected,
        pgt,
        donated: view.donated.iter().map(|p| p.pfn()).collect(),
        firmware: view.firmware.iter().map(|p| p.pfn()).collect(),
        vcpus: view
            .vcpus
            .iter()
            .map(|v| {
                if let Some(on) = v.loaded_on {
                    GhostVcpu::Loaded { on }
                } else if v.initialized {
                    GhostVcpu::Present {
                        regs: v.regs,
                        memcache: v.memcache_pages.iter().map(|p| p.pfn()).collect(),
                    }
                } else {
                    GhostVcpu::Uninit
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkvm_aarch64::attrs::Attrs;
    use pkvm_aarch64::memory::MemRegion;
    use pkvm_hyp::owner::annotation_pte;

    fn mem() -> PhysMem {
        PhysMem::new(vec![
            MemRegion::ram(0x4000_0000, 0x800_0000),
            MemRegion::mmio(0x900_0000, 0x1000),
        ])
    }

    fn globals() -> GhostGlobals {
        GhostGlobals {
            nr_cpus: 1,
            physvirt_offset: 0x8000_0000_0000,
            uart_va: 0,
            hyp_range: (0x44000, 1024),
            ram: vec![(0x4000_0000, 0x800_0000)],
            mmio: vec![(0x900_0000, 0x1000)],
        }
    }

    /// Builds a tiny concrete table by hand: a level-3 page, a level-2
    /// block, and a coarse annotation.
    fn build_table(mem: &PhysMem) -> PhysAddr {
        let root = PhysAddr::new(0x4400_0000);
        let l1 = PhysAddr::new(0x4400_1000);
        let l2 = PhysAddr::new(0x4400_2000);
        let l3 = PhysAddr::new(0x4400_3000);
        mem.write_pte(root, 0, Pte::table(l1)).unwrap();
        mem.write_pte(l1, 1, Pte::table(l2)).unwrap();
        mem.write_pte(l2, 0, Pte::table(l3)).unwrap();
        // Two adjacent pages with contiguous outputs: must coalesce.
        let attrs = Attrs::normal(Perms::RWX).with_sw(PageState::Owned.to_sw());
        mem.write_pte(
            l3,
            0,
            Pte::leaf(Stage::Stage2, 3, PhysAddr::new(0x4200_0000), attrs),
        )
        .unwrap();
        mem.write_pte(
            l3,
            1,
            Pte::leaf(Stage::Stage2, 3, PhysAddr::new(0x4200_1000), attrs),
        )
        .unwrap();
        // A 2 MiB block further along.
        mem.write_pte(
            l2,
            5,
            Pte::leaf(Stage::Stage2, 2, PhysAddr::new(0x4420_0000), attrs),
        )
        .unwrap();
        // An annotated (hyp-owned) 2 MiB region.
        mem.write_pte(l2, 7, annotation_pte(OwnerId::HYP)).unwrap();
        root
    }

    #[test]
    fn interpret_coalesces_and_counts_footprint() {
        let mem = mem();
        let root = build_table(&mem);
        let mut anomalies = Vec::new();
        let abs = interpret_pgtable(&mem, Stage::Stage2, root, &mut anomalies);
        assert!(anomalies.is_empty(), "{anomalies:?}");
        // Footprint: root, l1, l2, l3.
        assert_eq!(abs.table_pages.len(), 4);
        // Maplets: coalesced 2-page run, the block, the annotation.
        assert_eq!(abs.mapping.len(), 3);
        assert_eq!(abs.mapping.nr_pages(), 2 + 512 + 512);
        // IA of the block: index 1 at level 1 (1 GiB) + index 5 at level 2.
        let block_ia = (1u64 << 30) + 5 * (2 << 20);
        assert_eq!(
            abs.mapping.lookup(block_ia),
            Some(MapletTarget::Mapped {
                oa: 0x4420_0000,
                attrs: AbsAttrs {
                    perms: Perms::RWX,
                    memtype: MemType::Normal,
                    state: Some(PageState::Owned)
                }
            })
        );
        let annot_ia = (1u64 << 30) + 7 * (2 << 20);
        assert_eq!(
            abs.mapping.lookup(annot_ia),
            Some(MapletTarget::Annotated {
                owner: OwnerId::HYP
            })
        );
    }

    #[test]
    fn interpret_flags_reserved_descriptors() {
        let mem = mem();
        let root = PhysAddr::new(0x4400_0000);
        mem.write_pte(root, 3, Pte(0b01)).unwrap(); // block at level 0: reserved
        let mut anomalies = Vec::new();
        interpret_pgtable(&mem, Stage::Stage2, root, &mut anomalies);
        assert!(matches!(
            anomalies[0],
            Anomaly::ReservedDescriptor {
                index: 3,
                level: 0,
                ..
            }
        ));
    }

    #[test]
    fn abstract_host_partitions_and_checks() {
        let mem = mem();
        let root = PhysAddr::new(0x4400_0000);
        let l1 = PhysAddr::new(0x4400_1000);
        let l2 = PhysAddr::new(0x4400_2000);
        let l3 = PhysAddr::new(0x4400_3000);
        mem.write_pte(root, 1, Pte::table(l1)).unwrap();
        mem.write_pte(l1, 0, Pte::table(l2)).unwrap();
        mem.write_pte(l2, 0, Pte::table(l3)).unwrap();
        let base = 1u64 << 39; // ia of root index 1
                               // Identity owned mapping (legal, untracked).
        let owned = Attrs::normal(Perms::RWX).with_sw(PageState::Owned.to_sw());
        // Careful: identity means oa == ia, but `base` is outside RAM; use
        // a RAM address through root index 0 instead. Simpler: shared page.
        let shared = Attrs::normal(Perms::RWX).with_sw(PageState::SharedOwned.to_sw());
        mem.write_pte(
            l3,
            0,
            Pte::leaf(Stage::Stage2, 3, PhysAddr::new(0x4200_0000), shared),
        )
        .unwrap();
        // Non-identity owned mapping: must be flagged.
        mem.write_pte(
            l3,
            1,
            Pte::leaf(Stage::Stage2, 3, PhysAddr::new(0x4200_5000), owned),
        )
        .unwrap();
        // Annotation for a guest.
        mem.write_pte(l3, 2, annotation_pte(OwnerId::guest(0)))
            .unwrap();
        let mut anomalies = Vec::new();
        let host = abstract_host(&mem, root, &globals(), &mut anomalies);
        assert_eq!(host.shared.nr_pages(), 1);
        assert_eq!(host.annot.nr_pages(), 1);
        assert_eq!(
            host.shared
                .lookup(base)
                .map(|t| matches!(t, MapletTarget::Mapped { .. })),
            Some(true)
        );
        assert!(
            anomalies
                .iter()
                .any(|a| matches!(a, Anomaly::HostNotIdentity { ia, .. } if *ia == base + 0x1000)),
            "{anomalies:?}"
        );
    }

    #[test]
    fn abstract_host_accepts_legal_identity_mappings() {
        let mem = mem();
        let root = PhysAddr::new(0x4400_0000);
        let l1 = PhysAddr::new(0x4400_1000);
        let l2 = PhysAddr::new(0x4400_2000);
        let l3 = PhysAddr::new(0x4400_3000);
        // ia 0x4000_0000: root idx 0, l1 idx 1, l2 idx 0, l3 idx 0.
        mem.write_pte(root, 0, Pte::table(l1)).unwrap();
        mem.write_pte(l1, 1, Pte::table(l2)).unwrap();
        mem.write_pte(l2, 0, Pte::table(l3)).unwrap();
        let owned = Attrs::normal(Perms::RWX).with_sw(PageState::Owned.to_sw());
        mem.write_pte(
            l3,
            0,
            Pte::leaf(Stage::Stage2, 3, PhysAddr::new(0x4000_0000), owned),
        )
        .unwrap();
        let mut anomalies = Vec::new();
        let host = abstract_host(&mem, root, &globals(), &mut anomalies);
        assert!(anomalies.is_empty(), "{anomalies:?}");
        // Legal owned mappings are deliberately not tracked.
        assert!(host.shared.is_empty() && host.annot.is_empty());
    }

    use pkvm_aarch64::desc::Pte;
}
