//! Maplets: the elements of abstract mappings.
//!
//! A *maplet* describes what a contiguous, page-aligned input-address range
//! means extensionally: either it is *mapped* — each page translates to a
//! contiguous run of output pages with fixed attributes — or it is
//! *annotated* — unmapped, but recording a logical owner in the invalid
//! descriptors. This is the paper's "ordered linked lists of maximally
//! coalesced maplets, each of which captures a contiguous range of the
//! mapping" (§3.1), with the engineering detail (a sorted `Vec`) hidden in
//! [`crate::mapping`].

use core::fmt;

use pkvm_aarch64::addr::PAGE_SIZE;
use pkvm_aarch64::attrs::{MemType, Perms};
use pkvm_hyp::owner::{OwnerId, PageState};

/// Abstract attributes of a mapped page: what the paper's diff output
/// prints as e.g. `S0 RWX M` (state, permissions, memory type).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AbsAttrs {
    /// Access permissions.
    pub perms: Perms,
    /// Normal or device memory.
    pub memtype: MemType,
    /// The pKVM logical page state, or `None` when the software bits held
    /// no legal state (itself a reportable anomaly).
    pub state: Option<PageState>,
}

impl fmt::Display for AbsAttrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self.state {
            Some(PageState::Owned) => "S0",
            Some(PageState::SharedOwned) => "SO",
            Some(PageState::SharedBorrowed) => "SB",
            None => "S?",
        };
        write!(f, "{} {} {}", s, self.perms, self.memtype)
    }
}

/// The meaning of a maplet's range.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MapletTarget {
    /// Pages translate to `oa_base + (ia - ia_base)` with `attrs`.
    Mapped {
        /// Output address of the first page in the range.
        oa: u64,
        /// Shared attributes of every page in the range.
        attrs: AbsAttrs,
    },
    /// Pages are unmapped but annotated with a logical owner.
    Annotated {
        /// The recorded owner.
        owner: OwnerId,
    },
}

/// A contiguous range of an abstract mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Maplet {
    /// First input address (page aligned).
    pub ia: u64,
    /// Length in 4 KiB pages.
    pub nr_pages: u64,
    /// What the range means.
    pub target: MapletTarget,
}

impl Maplet {
    /// One past the last input address.
    #[inline]
    pub fn end(&self) -> u64 {
        self.ia + self.nr_pages * PAGE_SIZE
    }

    /// Returns `true` if `ia` (any byte address) falls in this range.
    #[inline]
    pub fn contains(&self, ia: u64) -> bool {
        ia >= self.ia && ia < self.end()
    }

    /// The target of the single page at `ia` within this maplet.
    ///
    /// # Panics
    ///
    /// Panics if `ia` is outside the range.
    pub fn target_at(&self, ia: u64) -> MapletTarget {
        assert!(self.contains(ia));
        match self.target {
            MapletTarget::Mapped { oa, attrs } => MapletTarget::Mapped {
                oa: oa + (ia - self.ia) / PAGE_SIZE * PAGE_SIZE,
                attrs,
            },
            t @ MapletTarget::Annotated { .. } => t,
        }
    }

    /// Returns `true` if `other` starting exactly at `self.end()` can be
    /// merged into one maplet (the coalescing rule: contiguous input
    /// addresses, and either contiguous outputs with equal attributes, or
    /// equal annotations).
    pub fn can_coalesce_with(&self, other: &Maplet) -> bool {
        if other.ia != self.end() {
            return false;
        }
        match (self.target, other.target) {
            (
                MapletTarget::Mapped { oa: a, attrs: at },
                MapletTarget::Mapped { oa: b, attrs: bt },
            ) => at == bt && b == a + self.nr_pages * PAGE_SIZE,
            (MapletTarget::Annotated { owner: a }, MapletTarget::Annotated { owner: b }) => a == b,
            _ => false,
        }
    }

    /// Splits this maplet at byte address `at` (page aligned, strictly
    /// inside), returning the two halves.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not a page boundary strictly inside the range.
    pub fn split_at(&self, at: u64) -> (Maplet, Maplet) {
        assert!(at.is_multiple_of(PAGE_SIZE) && at > self.ia && at < self.end());
        let left_pages = (at - self.ia) / PAGE_SIZE;
        let left = Maplet {
            ia: self.ia,
            nr_pages: left_pages,
            target: self.target,
        };
        let right_target = match self.target {
            MapletTarget::Mapped { oa, attrs } => MapletTarget::Mapped {
                oa: oa + left_pages * PAGE_SIZE,
                attrs,
            },
            t @ MapletTarget::Annotated { .. } => t,
        };
        let right = Maplet {
            ia: at,
            nr_pages: self.nr_pages - left_pages,
            target: right_target,
        };
        (left, right)
    }
}

impl fmt::Display for Maplet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.target {
            MapletTarget::Mapped { oa, attrs } => {
                write!(
                    f,
                    "ia:{:#014x}+{} -> phys:{:#x} {}",
                    self.ia, self.nr_pages, oa, attrs
                )
            }
            MapletTarget::Annotated { owner } => {
                write!(f, "ia:{:#014x}+{} owner={}", self.ia, self.nr_pages, owner)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped(ia: u64, nr: u64, oa: u64) -> Maplet {
        Maplet {
            ia,
            nr_pages: nr,
            target: MapletTarget::Mapped {
                oa,
                attrs: AbsAttrs {
                    perms: Perms::RWX,
                    memtype: MemType::Normal,
                    state: Some(PageState::Owned),
                },
            },
        }
    }

    #[test]
    fn contains_and_end() {
        let m = mapped(0x1000, 2, 0x8000);
        assert_eq!(m.end(), 0x3000);
        assert!(m.contains(0x1000));
        assert!(m.contains(0x2fff));
        assert!(!m.contains(0x3000));
        assert!(!m.contains(0xfff));
    }

    #[test]
    fn target_at_offsets_output() {
        let m = mapped(0x1000, 4, 0x8000);
        assert_eq!(
            m.target_at(0x3000),
            MapletTarget::Mapped {
                oa: 0xa000,
                attrs: AbsAttrs {
                    perms: Perms::RWX,
                    memtype: MemType::Normal,
                    state: Some(PageState::Owned)
                }
            }
        );
    }

    #[test]
    fn coalescing_requires_contiguity_of_both_sides() {
        let a = mapped(0x1000, 2, 0x8000);
        assert!(a.can_coalesce_with(&mapped(0x3000, 1, 0xa000)));
        // Output discontinuity.
        assert!(!a.can_coalesce_with(&mapped(0x3000, 1, 0xb000)));
        // Input gap.
        assert!(!a.can_coalesce_with(&mapped(0x4000, 1, 0xb000)));
        // Attribute change.
        let mut c = mapped(0x3000, 1, 0xa000);
        if let MapletTarget::Mapped { attrs, .. } = &mut c.target {
            attrs.perms = Perms::R;
        }
        assert!(!a.can_coalesce_with(&c));
    }

    #[test]
    fn annotations_coalesce_by_owner() {
        let a = Maplet {
            ia: 0,
            nr_pages: 2,
            target: MapletTarget::Annotated {
                owner: OwnerId::HYP,
            },
        };
        let b = Maplet {
            ia: 0x2000,
            nr_pages: 3,
            target: MapletTarget::Annotated {
                owner: OwnerId::HYP,
            },
        };
        let c = Maplet {
            ia: 0x2000,
            nr_pages: 3,
            target: MapletTarget::Annotated {
                owner: OwnerId::guest(0),
            },
        };
        assert!(a.can_coalesce_with(&b));
        assert!(!a.can_coalesce_with(&c));
    }

    #[test]
    fn split_preserves_meaning() {
        let m = mapped(0x1000, 4, 0x8000);
        let (l, r) = m.split_at(0x3000);
        assert_eq!(l.nr_pages, 2);
        assert_eq!(r.nr_pages, 2);
        assert_eq!(l.target_at(0x2000), m.target_at(0x2000));
        assert_eq!(r.target_at(0x3000), m.target_at(0x3000));
        assert!(l.can_coalesce_with(&r), "split halves must re-coalesce");
    }

    #[test]
    #[should_panic]
    fn split_outside_panics() {
        mapped(0x1000, 2, 0x8000).split_at(0x1000);
    }
}
