//! The unified event-stream layer: one typed, globally ordered timeline.
//!
//! Everything the harness and oracle used to record into private vectors —
//! the campaign's driver-op schedule, the oracle's trap trace and violation
//! log, chaos injections, lock events, `READ_ONCE` values — now flows
//! through a single [`EventSink`] into one [`EventStream`]. Each event gets
//! a global sequence number (assigned under one mutex, so sequence order
//! *is* timeline order), a *lane* (the worker or CPU that produced it), an
//! optional link to the sequence number of the trap it happened inside, and
//! a nanosecond timestamp relative to stream creation.
//!
//! The stream doubles as the replay schedule (its driver-plane events are
//! exactly what [`replay`](../../pkvm_harness/campaign/fn.replay.html)
//! executes), as the bounded violation log and trap trace the oracle serves
//! its accessors from, and — via [`TraceStats`] — as the profiling
//! substrate producing per-trap latency and per-lane occupancy histograms.
//!
//! Sequence numbers come from two disjoint spaces: primary (mutator-emitted
//! events, from 0 up) and derived (`Check`/`Violation` records produced by
//! the checker, from [`DERIVED_SEQ_BASE`] up) — see the constant's docs for
//! why this keeps the numbering identical across check modes.
//!
//! Retention policy: with `record_all` on, every emitted event is kept (the
//! full replayable timeline). With it off, both sequence counters still
//! advance identically — so replays produce the same violation sequence
//! ids either way — but only the bounded side indexes are retained: the
//! violation log (capped, drops signalled to the caller) and the last
//! [`TRACE_CAP`] check outcomes. That preserves the memory behaviour of
//! long sweeps that run with trace recording off.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pkvm_aarch64::sync::Mutex;
use pkvm_aarch64::walk::Access;
use pkvm_hyp::hooks::{Component, TransferEdge};
use pkvm_hyp::vm::{GuestOp, Handle};

use crate::check::Violation;
use crate::oracle::{TrapOutcome, TrapRecord};

/// How many check-outcome records the bounded trap trace retains.
pub const TRACE_CAP: usize = 256;

/// Base of the derived sequence-number space. *Primary* events — everything
/// emitted by the mutator threads (driver ops, trap/lock/read-once/
/// table-page observations, chaos) — draw from the counter starting at 0.
/// *Derived* records — `Check` outcomes and `Violation` reports, produced
/// by the checker — draw from a separate counter based here. Keeping the
/// two spaces apart means the primary numbering is identical whether the
/// checker runs inline (derived records interleave with the events that
/// produced them) or pipelined behind the frontier (derived records land
/// late): checks and violations never shift the numbering of the events
/// they are about, so violation anchors compare equal across check modes.
/// Both counters advance in checker processing order, which both modes
/// produce identically.
pub const DERIVED_SEQ_BASE: u64 = 1 << 48;

/// Which chaos family injected a perturbation (the core-side mirror of the
/// harness's chaos families, so chaos injections appear in the same
/// timeline as the events they perturb).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChaosKind {
    /// A live page-table bit flip (driver-injected; the matching
    /// `CorruptMem` event is the replayable half).
    BitFlip,
    /// A `READ_ONCE` value delivered torn or stale.
    TornReadOnce,
    /// A lock event dropped before delivery.
    DroppedLock,
    /// A lock event delivered twice.
    DupedLock,
    /// A hook delayed and delivered out of order.
    DelayedHook,
    /// The page allocator handed out an already-used page.
    AllocChaos,
    /// A remote TLB-invalidation delivery was delayed or dropped,
    /// retaining a stale per-CPU translation.
    StaleTlb,
}

impl ChaosKind {
    /// Stable lowercase tag for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosKind::BitFlip => "bit-flip",
            ChaosKind::TornReadOnce => "torn-read-once",
            ChaosKind::DroppedLock => "dropped-lock",
            ChaosKind::DupedLock => "duped-lock",
            ChaosKind::DelayedHook => "delayed-hook",
            ChaosKind::AllocChaos => "alloc-chaos",
            ChaosKind::StaleTlb => "stale-tlb",
        }
    }
}

/// One timeline entry. Driver-plane variants (`Hvc`, `WriteMem`,
/// `CorruptMem`, `HostAccess`, `PushGuestOp`) are the replayable
/// schedule; the rest are observations recorded by the oracle and the
/// chaos engine.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A hypercall issued by a driver/worker.
    Hvc {
        /// Simulated CPU the call ran on.
        cpu: usize,
        /// Hypercall function id.
        func: u64,
        /// Call arguments.
        args: Vec<u64>,
    },
    /// A host write to memory (parameter-page setup). Carries host
    /// privilege only: execution goes through the host's stage 2, so a
    /// write to a page the host no longer owns faults instead of
    /// corrupting hypervisor state.
    WriteMem {
        /// Physical address written.
        pa: u64,
        /// Value written.
        value: u64,
    },
    /// A raw physical-memory write that bypasses all translation — the
    /// chaos engine's fault-injection primitive (bit flips in live
    /// hypervisor tables). Deliberately *not* subject to stage 2: it
    /// models silent corruption, not a host action.
    CorruptMem {
        /// Physical address written.
        pa: u64,
        /// Value written.
        value: u64,
    },
    /// A host-side stage-2 access.
    HostAccess {
        /// Simulated CPU the access ran on.
        cpu: usize,
        /// Accessed address.
        addr: u64,
        /// Access kind.
        access: Access,
    },
    /// A guest operation queued onto a vCPU.
    PushGuestOp {
        /// VM handle.
        handle: Handle,
        /// vCPU index.
        idx: usize,
        /// The queued operation.
        op: GuestOp,
    },
    /// The oracle observed a trap entering its handler.
    TrapEnter {
        /// CPU the trap ran on.
        cpu: usize,
    },
    /// The handler returned; `name` is the resolved trap name.
    TrapExit {
        /// CPU the trap ran on.
        cpu: usize,
        /// Handler name (hypercall name, `host_abort`, `smc`, ...).
        name: String,
    },
    /// A component lock was acquired (abstraction recorded into the
    /// pre-state).
    LockAcquired {
        /// CPU the acquisition ran on.
        cpu: usize,
        /// The component.
        comp: Component,
    },
    /// A component lock is about to be released (abstraction recorded
    /// into the post-state).
    LockReleasing {
        /// CPU the release ran on.
        cpu: usize,
        /// The component.
        comp: Component,
    },
    /// A `READ_ONCE` value recorded for the specification function.
    ReadOnce {
        /// CPU the read ran on.
        cpu: usize,
        /// The annotation tag.
        tag: String,
        /// The value read.
        value: u64,
    },
    /// A page entered a component's page-table footprint.
    TablePageAlloc {
        /// The allocating component.
        comp: Component,
        /// The page frame.
        pfn: u64,
    },
    /// A page left a component's page-table footprint.
    TablePageFree {
        /// The freeing component.
        comp: Component,
        /// The page frame.
        pfn: u64,
    },
    /// The hypervisor removed or tightened a live mapping — the "break"
    /// of break-before-make. The matching-scope broadcast [`Event::Tlbi`]
    /// and an [`Event::Dsb`] must follow before the trap exits.
    PteDowngrade {
        /// CPU that performed the table write.
        cpu: usize,
        /// VMID of the affected translation regime.
        vmid: u16,
        /// First input address of the downgraded range.
        ia: u64,
        /// Pages downgraded (`u64::MAX` with `ia == 0` encodes VMID-wide).
        nr: u64,
    },
    /// The hypervisor issued a TLB invalidation.
    Tlbi {
        /// VMID whose translations are dropped.
        vmid: u16,
        /// First input address covered (0 for VMID-wide scopes).
        ia: u64,
        /// Pages covered (`u64::MAX` with `ia == 0` encodes VMID-wide).
        nr: u64,
        /// Whether the `*is` broadcast form was used (reaching all CPUs)
        /// rather than the local-only one.
        broadcast: bool,
        /// CPU that issued the invalidation.
        cpu: usize,
    },
    /// The hypervisor issued the data synchronisation barrier completing
    /// its preceding TLB invalidations.
    Dsb {
        /// CPU that issued the barrier.
        cpu: usize,
    },
    /// A chaos family injected a perturbation here.
    Chaos {
        /// CPU (or worker lane) the injection hit.
        cpu: usize,
        /// Which family fired.
        kind: ChaosKind,
    },
    /// A page range crossed an ownership-transfer edge (share, unshare,
    /// donate, guest map, reclaim, ...) at its commit point.
    Transfer {
        /// CPU the transition committed on.
        cpu: usize,
        /// Which protocol edge was crossed.
        edge: TransferEdge,
        /// First page frame of the range.
        pfn: u64,
        /// Pages in the range.
        nr: u64,
        /// For [`TransferEdge::Reclaim`]: whether the page still held
        /// guest data after the (attempted) wipe. Always `false` for
        /// other edges.
        dirty: bool,
    },
    /// A firmware region was donated to a protected VM
    /// (`vm_load_firmware` succeeded).
    FirmwareDonate {
        /// CPU the donation committed on.
        cpu: usize,
        /// VM handle.
        handle: Handle,
        /// Incarnation id of the VM (survives handle reuse).
        uniq: u64,
        /// First page frame donated.
        pfn: u64,
        /// Pages donated.
        nr: u64,
    },
    /// The host's stage 2 regained access to a page range (donation back,
    /// successful reclaim, guest share). Firmware pages must never appear
    /// here.
    HostRegain {
        /// CPU the transition committed on.
        cpu: usize,
        /// First page frame regained.
        pfn: u64,
        /// Pages regained.
        nr: u64,
    },
    /// One trap's check concluded.
    Check {
        /// CPU the checked trap ran on.
        cpu: usize,
        /// Handler name.
        name: String,
        /// How the check went.
        outcome: TrapOutcome,
    },
    /// A violation was reported (also retained in the bounded log).
    Violation(Violation),
}

impl Event {
    /// Every [`family`](Self::family) tag, for validating family names
    /// given on a command line or in a compaction request.
    pub const FAMILIES: [&'static str; 21] = [
        "hvc",
        "write-mem",
        "corrupt-mem",
        "host-access",
        "push-guest-op",
        "trap-enter",
        "trap-exit",
        "lock-acquired",
        "lock-releasing",
        "read-once",
        "table-page-alloc",
        "table-page-free",
        "pte-downgrade",
        "tlbi",
        "dsb",
        "chaos",
        "transfer",
        "firmware-donate",
        "host-regain",
        "check",
        "violation",
    ];

    /// Stable family tag for summaries.
    pub fn family(&self) -> &'static str {
        match self {
            Event::Hvc { .. } => "hvc",
            Event::WriteMem { .. } => "write-mem",
            Event::CorruptMem { .. } => "corrupt-mem",
            Event::HostAccess { .. } => "host-access",
            Event::PushGuestOp { .. } => "push-guest-op",
            Event::TrapEnter { .. } => "trap-enter",
            Event::TrapExit { .. } => "trap-exit",
            Event::LockAcquired { .. } => "lock-acquired",
            Event::LockReleasing { .. } => "lock-releasing",
            Event::ReadOnce { .. } => "read-once",
            Event::TablePageAlloc { .. } => "table-page-alloc",
            Event::TablePageFree { .. } => "table-page-free",
            Event::PteDowngrade { .. } => "pte-downgrade",
            Event::Tlbi { .. } => "tlbi",
            Event::Dsb { .. } => "dsb",
            Event::Chaos { .. } => "chaos",
            Event::Transfer { .. } => "transfer",
            Event::FirmwareDonate { .. } => "firmware-donate",
            Event::HostRegain { .. } => "host-regain",
            Event::Check { .. } => "check",
            Event::Violation(_) => "violation",
        }
    }

    /// `true` for driver-plane events — the replayable schedule.
    pub fn is_driver(&self) -> bool {
        matches!(
            self,
            Event::Hvc { .. }
                | Event::WriteMem { .. }
                | Event::CorruptMem { .. }
                | Event::HostAccess { .. }
                | Event::PushGuestOp { .. }
        )
    }
}

/// One stamped timeline entry.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Global sequence number (timeline position).
    pub seq: u64,
    /// Producing lane: the campaign worker for driver events, the CPU for
    /// oracle observations.
    pub lane: u32,
    /// Sequence number of the `TrapEnter` this event happened inside, if
    /// the producer was executing a trap.
    pub trap: Option<u64>,
    /// Nanoseconds since the stream was created.
    pub t_ns: u64,
    /// The event itself.
    pub event: Event,
}

/// The one recording interface: producers emit, the stream orders.
pub trait EventSink: Send + Sync {
    /// Appends one event, returning its global sequence number. `trap` is
    /// the sequence number of the enclosing trap's `TrapEnter`, if known.
    fn emit(&self, lane: u32, trap: Option<u64>, event: Event) -> u64;
}

#[derive(Default)]
struct StreamInner {
    next_seq: u64,
    derived_next: u64,
    events: Vec<EventRecord>,
    violations: Vec<Violation>,
    checks: VecDeque<TrapRecord>,
}

/// The shared timeline; see the module docs for the retention policy.
pub struct EventStream {
    started: Instant,
    record_all: bool,
    violation_cap: usize,
    nr_violations: AtomicU64,
    inner: Mutex<StreamInner>,
}

/// An incremental read position into an [`EventStream`] (the drain/cursor
/// replacement for the old clone-everything snapshot).
#[derive(Clone, Copy, Debug, Default)]
pub struct EventCursor(usize);

impl EventStream {
    /// A fresh stream. `record_all` keeps the full timeline (required for
    /// replay); off, only the bounded violation log and trap trace are
    /// retained. `violation_cap` bounds the retained violation log.
    pub fn new(record_all: bool, violation_cap: usize) -> EventStream {
        EventStream {
            started: Instant::now(),
            record_all,
            violation_cap: violation_cap.max(1),
            nr_violations: AtomicU64::new(0),
            inner: Mutex::new(StreamInner::default()),
        }
    }

    /// Whether the full timeline is being retained.
    pub fn record_all(&self) -> bool {
        self.record_all
    }

    fn append(&self, lane: u32, trap: Option<u64>, mut event: Event) -> (u64, bool) {
        let mut g = self.inner.lock();
        let seq = if matches!(event, Event::Check { .. } | Event::Violation(_)) {
            let s = DERIVED_SEQ_BASE + g.derived_next;
            g.derived_next += 1;
            s
        } else {
            let s = g.next_seq;
            g.next_seq += 1;
            s
        };
        let t_ns = self.started.elapsed().as_nanos() as u64;
        let mut retain = self.record_all;
        let mut accepted = true;
        match &mut event {
            Event::Violation(v) => {
                v.set_event_seq(seq);
                if g.violations.len() < self.violation_cap {
                    g.violations.push(v.clone());
                    self.nr_violations
                        .store(g.violations.len() as u64, Ordering::Relaxed);
                } else {
                    // Over cap: the sequence number is still assigned (so
                    // replays stay aligned) but nothing is retained.
                    retain = false;
                    accepted = false;
                }
            }
            Event::Check { cpu, name, outcome } => {
                if g.checks.len() == TRACE_CAP {
                    g.checks.pop_front();
                }
                g.checks.push_back(TrapRecord {
                    cpu: *cpu,
                    name: name.clone(),
                    outcome: outcome.clone(),
                });
            }
            _ => {}
        }
        if retain {
            g.events.push(EventRecord {
                seq,
                lane,
                trap,
                t_ns,
                event,
            });
        }
        (seq, accepted)
    }

    /// Reports a violation into the timeline and the bounded log. Returns
    /// `false` when the log was full and the report was dropped (the
    /// caller counts drops — see `OracleStats::violations_dropped`).
    pub fn violation(&self, lane: u32, trap: Option<u64>, v: Violation) -> bool {
        self.append(lane, trap, Event::Violation(v)).1
    }

    /// Number of events retained in the timeline.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A cursor positioned at the start of the timeline.
    pub fn cursor(&self) -> EventCursor {
        EventCursor(0)
    }

    /// Returns the events appended since the cursor's last poll and
    /// advances it — an incremental drain, so periodic inspection of a
    /// long campaign never re-copies the whole timeline.
    ///
    /// Allocates a fresh vector per call; hot loops (the pipelined checker
    /// drain, long-lived cursors) should use [`Self::poll_into`] and reuse
    /// one buffer.
    pub fn poll(&self, cursor: &mut EventCursor) -> Vec<EventRecord> {
        let mut out = Vec::new();
        self.poll_into(cursor, &mut out);
        out
    }

    /// Batch variant of [`Self::poll`]: clears `out` and fills it with the
    /// events appended since the cursor's last poll, advancing the cursor.
    /// Reusing one buffer across calls amortises the allocation to the
    /// high-water mark of a single batch. Returns the number of records
    /// drained.
    pub fn poll_into(&self, cursor: &mut EventCursor, out: &mut Vec<EventRecord>) -> usize {
        out.clear();
        let g = self.inner.lock();
        out.extend_from_slice(&g.events[cursor.0.min(g.events.len())..]);
        cursor.0 = g.events.len();
        out.len()
    }

    /// Takes the whole retained timeline out of the stream (no clone);
    /// used once at campaign end to move the schedule into the trace.
    pub fn take_events(&self) -> Vec<EventRecord> {
        std::mem::take(&mut self.inner.lock().events)
    }

    /// All retained violations (annotated with their event sequence ids).
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().violations.clone()
    }

    /// Number of retained violations; a single relaxed atomic load, cheap
    /// enough for campaign workers to poll every few steps.
    pub fn violation_count(&self) -> u64 {
        self.nr_violations.load(Ordering::Relaxed)
    }

    /// Drops the retained violations (between test cases). The recorded
    /// timeline, if any, is left untouched.
    pub fn clear_violations(&self) {
        self.inner.lock().violations.clear();
        self.nr_violations.store(0, Ordering::Relaxed);
    }

    /// The most recent check outcomes (bounded at [`TRACE_CAP`]; newest
    /// last).
    pub fn trap_records(&self) -> Vec<TrapRecord> {
        self.inner.lock().checks.iter().cloned().collect()
    }
}

impl EventSink for EventStream {
    fn emit(&self, lane: u32, trap: Option<u64>, event: Event) -> u64 {
        self.append(lane, trap, event).0
    }
}

/// Incremental FNV-1a-style folder for [`novelty_signature`]: feeds the
/// *shape* of a timeline — trap names, check outcomes, lock/table-page
/// component kinds, violation kinds — into one 64-bit hash, deliberately
/// excluding concrete values (page numbers, register contents, VM handles,
/// timestamps). Two runs that walk the same control/ghost-state shape
/// share a signature even when their concrete pages differ; a run that
/// reaches a new post-trap shape gets a new one. The fuzzer uses this as
/// its second feedback channel, alongside named coverage points.
#[derive(Clone, Copy, Debug)]
pub struct ShapeHasher(u64);

impl Default for ShapeHasher {
    fn default() -> Self {
        // FNV-1a 64-bit offset basis.
        ShapeHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl ShapeHasher {
    /// A fresh hasher at the offset basis.
    pub fn new() -> ShapeHasher {
        ShapeHasher::default()
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn tag(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
        self.byte(0);
    }

    fn component(&mut self, comp: &Component) {
        // Kind only: per-VM handles would make every VM incarnation a
        // "new" shape and drown the signal in noise.
        self.byte(match comp {
            Component::Hyp => 1,
            Component::Host => 2,
            Component::VmTable => 3,
            Component::Vm(_) => 4,
        });
    }

    /// Folds one record's shape contribution (a no-op for events that
    /// carry only concrete data, like raw memory writes).
    pub fn observe(&mut self, rec: &EventRecord) {
        match &rec.event {
            Event::TrapExit { name, .. } => {
                self.byte(1);
                self.tag(name);
            }
            Event::Check { name, outcome, .. } => {
                self.byte(2);
                self.tag(name);
                match outcome {
                    TrapOutcome::Clean => self.byte(0),
                    TrapOutcome::Violated(_) => self.byte(1),
                    TrapOutcome::Unchecked(why) => {
                        self.byte(2);
                        self.tag(why);
                    }
                }
            }
            Event::LockAcquired { comp, .. } => {
                self.byte(3);
                self.component(comp);
            }
            Event::LockReleasing { comp, .. } => {
                self.byte(4);
                self.component(comp);
            }
            Event::TablePageAlloc { comp, .. } => {
                self.byte(5);
                self.component(comp);
            }
            Event::TablePageFree { comp, .. } => {
                self.byte(6);
                self.component(comp);
            }
            Event::Violation(v) => {
                self.byte(7);
                self.tag(v.kind());
                if let Some(c) = v.component() {
                    self.tag(c);
                }
            }
            Event::Chaos { kind, .. } => {
                self.byte(8);
                self.tag(kind.name());
            }
            // TLB-maintenance shape: scope kind and broadcastness, not the
            // concrete addresses (every page number would be "novel").
            Event::Tlbi { broadcast, nr, .. } => {
                self.byte(9);
                self.byte(*broadcast as u8);
                self.byte((*nr == u64::MAX) as u8);
            }
            Event::Dsb { .. } => {
                self.byte(10);
            }
            Event::PteDowngrade { nr, .. } => {
                self.byte(11);
                self.byte((*nr == u64::MAX) as u8);
            }
            // Transfer shape: which protocol edge was crossed and (for
            // reclaims) whether the wipe left the page dirty — not the
            // concrete page numbers.
            Event::Transfer { edge, dirty, .. } => {
                self.byte(12);
                self.byte(*edge as u8);
                self.byte(*dirty as u8);
            }
            Event::FirmwareDonate { .. } => {
                self.byte(13);
            }
            Event::HostRegain { .. } => {
                self.byte(14);
            }
            // Driver ops and raw read/trap-enter events are the *input*,
            // not the observed behaviour; folding them in would make every
            // mutation "novel" by construction.
            Event::Hvc { .. }
            | Event::WriteMem { .. }
            | Event::CorruptMem { .. }
            | Event::HostAccess { .. }
            | Event::PushGuestOp { .. }
            | Event::TrapEnter { .. }
            | Event::ReadOnce { .. } => {}
        }
    }

    /// The signature folded so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The ghost-state novelty signature of a recorded timeline: the hash of
/// its post-trap component shapes (see [`ShapeHasher`]).
///
/// Folds records in raw stream order, so it is sensitive to *where* the
/// derived `Check`/`Violation` records land in the timeline. With the
/// pipelined checker those land behind the execution frontier — at later
/// (and run-dependent) positions than inline mode puts them — so cross-mode
/// comparisons must use [`canonical_signature`] instead.
pub fn novelty_signature(records: &[EventRecord]) -> u64 {
    let mut h = ShapeHasher::new();
    for r in records {
        h.observe(r);
    }
    h.finish()
}

/// Mode-independent shape signature: [`novelty_signature`] over a
/// canonicalised record order.
///
/// Hook events (trap/lock/table-page/chaos) are emitted on the mutator
/// thread in both check modes and keep their stream positions. The derived
/// records — `Check` outcomes and `Violation` reports — are appended by
/// the checker, which in pipelined mode runs behind the frontier, so their
/// raw *positions* in the retained timeline differ between modes (and
/// between pipelined runs). Their sequence numbers do not: derived records
/// draw from the separate [`DERIVED_SEQ_BASE`] space in checker-processing
/// order, which both modes produce identically. Sorting by sequence number
/// alone is therefore canonical — hook events in emission order first,
/// derived records in check order after them.
pub fn canonical_signature(records: &[EventRecord]) -> u64 {
    let mut sorted: Vec<&EventRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.seq);
    let mut h = ShapeHasher::new();
    for r in sorted {
        h.observe(r);
    }
    h.finish()
}

/// Latency histogram for one trap name: log2(ns) buckets plus exact
/// min/max/sum so summaries can report mean and range.
#[derive(Clone, Debug)]
pub struct TrapLatency {
    /// Completed enter→exit pairs observed.
    pub count: u64,
    /// `buckets[i]` counts latencies with `floor(log2(ns)) == i`.
    pub buckets: [u64; 64],
    /// Sum of latencies (ns).
    pub sum_ns: u64,
    /// Fastest observed (ns).
    pub min_ns: u64,
    /// Slowest observed (ns).
    pub max_ns: u64,
}

impl Default for TrapLatency {
    fn default() -> Self {
        TrapLatency {
            count: 0,
            buckets: [0; 64],
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
        }
    }
}

impl TrapLatency {
    fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.buckets[63 - ns.max(1).leading_zeros() as usize] += 1;
        self.sum_ns += ns;
        self.min_ns = if self.count == 1 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
    }

    /// Mean latency in ns (0 when nothing was observed).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The `p`-th percentile latency in ns (`p` in `0..=100`), read off
    /// the log2 histogram: the upper bound of the bucket holding the
    /// rank, clamped into the exact observed `[min_ns, max_ns]` range —
    /// so the tail percentiles are bucket-resolution approximations but
    /// `percentile_ns(100) == max_ns` exactly. 0 when nothing was
    /// observed.
    pub fn percentile_ns(&self, p: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // ceil(count * p / 100), at least rank 1.
        let rank = (self.count as u128 * p as u128).div_ceil(100).max(1) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }
}

/// Per-lane occupancy: how busy one worker/CPU lane was.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaneOccupancy {
    /// Events produced on this lane.
    pub events: u64,
    /// Traps completed on this lane.
    pub traps: u64,
    /// Total time spent inside traps (ns).
    pub in_trap_ns: u64,
}

/// The streaming stats consumer: feed it records (live via
/// [`EventStream::poll`] or from a loaded trace file) and it maintains
/// per-family counts, per-trap latency histograms, and per-lane occupancy.
#[derive(Default)]
pub struct TraceStats {
    /// Event counts per family tag.
    pub families: BTreeMap<&'static str, u64>,
    /// Transfer crossings per protocol edge (share, unshare, donate,
    /// guest map, reclaim, ...), keyed by [`TransferEdge::name`].
    pub transfers: BTreeMap<&'static str, u64>,
    /// Reclaim crossings whose page still held guest data (each one is
    /// a wipe the hypervisor skipped — a reclaim-wipe verdict upstream).
    pub dirty_reclaims: u64,
    /// Total pages donated as protected-VM firmware.
    pub firmware_pages: u64,
    /// Latency histograms per trap name.
    pub traps: BTreeMap<String, TrapLatency>,
    /// Occupancy per lane.
    pub lanes: BTreeMap<u32, LaneOccupancy>,
    /// Chaos injections per kind.
    pub chaos: BTreeMap<&'static str, u64>,
    /// For each checked handler name, the 1-based event index at which
    /// its first `Check` record appeared — spec coverage as a function
    /// of trace position.
    pub spec_first_seen: BTreeMap<String, u64>,
    /// The coverage-over-time curve: `(events seen, distinct checked
    /// handlers so far)`, sampled on a doubling grid (256, 512, 1024,
    /// …) so the curve stays O(log n) for arbitrarily long traces.
    pub coverage_curve: Vec<(u64, usize)>,
    /// Records folded in so far.
    pub events_seen: u64,
    open_traps: HashMap<u32, u64>,
    next_sample: u64,
}

impl TraceStats {
    /// An empty accumulator.
    pub fn new() -> TraceStats {
        TraceStats::default()
    }

    /// Folds one record into the histograms. Records must arrive in
    /// sequence order (they do, from both `poll` and a trace file).
    pub fn observe(&mut self, rec: &EventRecord) {
        self.events_seen += 1;
        *self.families.entry(rec.event.family()).or_default() += 1;
        self.lanes.entry(rec.lane).or_default().events += 1;
        match &rec.event {
            Event::TrapEnter { .. } => {
                self.open_traps.insert(rec.lane, rec.t_ns);
            }
            Event::TrapExit { name, .. } => {
                if let Some(entered) = self.open_traps.remove(&rec.lane) {
                    let ns = rec.t_ns.saturating_sub(entered);
                    self.traps.entry(name.clone()).or_default().observe(ns);
                    let lane = self.lanes.entry(rec.lane).or_default();
                    lane.traps += 1;
                    lane.in_trap_ns += ns;
                }
            }
            Event::Chaos { kind, .. } => {
                *self.chaos.entry(kind.name()).or_default() += 1;
            }
            Event::Check { name, .. } => {
                let at = self.events_seen;
                self.spec_first_seen.entry(name.clone()).or_insert(at);
            }
            Event::Transfer { edge, dirty, .. } => {
                *self.transfers.entry(edge.name()).or_default() += 1;
                if *dirty {
                    self.dirty_reclaims += 1;
                }
            }
            Event::FirmwareDonate { nr, .. } => {
                self.firmware_pages += nr;
            }
            _ => {}
        }
        // Lazy grid init: `Default` zeroes the field, the first record
        // arms it.
        if self.next_sample == 0 {
            self.next_sample = 256;
        }
        if self.events_seen >= self.next_sample {
            self.coverage_curve
                .push((self.events_seen, self.spec_first_seen.len()));
            self.next_sample = self.next_sample.saturating_mul(2);
        }
    }

    /// Folds a whole slice of records.
    pub fn observe_all(&mut self, recs: &[EventRecord]) {
        for r in recs {
            self.observe(r);
        }
    }

    /// Renders the summary tables.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "event families:");
        for (family, n) in &self.families {
            let _ = writeln!(out, "  {family:<18} {n:>10}");
        }
        if !self.transfers.is_empty() {
            let _ = writeln!(out, "transfer edges:");
            for (edge, n) in &self.transfers {
                let _ = writeln!(out, "  {edge:<18} {n:>10}");
            }
            let _ = writeln!(
                out,
                "  {:<18} {:>10}",
                "dirty reclaims", self.dirty_reclaims
            );
            let _ = writeln!(
                out,
                "  {:<18} {:>10}",
                "firmware pages", self.firmware_pages
            );
        }
        if !self.chaos.is_empty() {
            let _ = writeln!(out, "chaos injections:");
            for (kind, n) in &self.chaos {
                let _ = writeln!(out, "  {kind:<18} {n:>10}");
            }
        }
        if !self.traps.is_empty() {
            let _ = writeln!(
                out,
                "per-trap latency:    {:>8} {:>10} {:>10} {:>10}",
                "count", "mean ns", "min ns", "max ns"
            );
            for (name, h) in &self.traps {
                let _ = writeln!(
                    out,
                    "  {name:<18} {:>8} {:>10} {:>10} {:>10}",
                    h.count,
                    h.mean_ns(),
                    h.min_ns,
                    h.max_ns
                );
            }
        }
        if !self.lanes.is_empty() {
            let _ = writeln!(
                out,
                "lane occupancy:      {:>8} {:>10} {:>14}",
                "events", "traps", "in-trap ns"
            );
            for (lane, o) in &self.lanes {
                let _ = writeln!(
                    out,
                    "  lane {lane:<13} {:>8} {:>10} {:>14}",
                    o.events, o.traps, o.in_trap_ns
                );
            }
        }
        out
    }

    /// Renders the per-handler latency percentile table (p50/p90/p99
    /// from the log2 histogram, exact min/max).
    pub fn render_percentiles(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.traps.is_empty() {
            return out;
        }
        let _ = writeln!(
            out,
            "latency percentiles: {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "count", "p50 ns", "p90 ns", "p99 ns", "min ns", "max ns"
        );
        for (name, h) in &self.traps {
            let _ = writeln!(
                out,
                "  {name:<18} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                h.count,
                h.percentile_ns(50),
                h.percentile_ns(90),
                h.percentile_ns(99),
                h.min_ns,
                h.max_ns
            );
        }
        out
    }

    /// Renders the spec-coverage-over-time curve: how many distinct
    /// handlers had been checked after 256, 512, 1024, … events, plus
    /// the end point.
    pub fn render_coverage(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "spec coverage over time:");
        for (at, n) in &self.coverage_curve {
            let _ = writeln!(out, "  after {at:>10} events: {n:>3} checked handler(s)");
        }
        let _ = writeln!(
            out,
            "  end   {:>10} events: {:>3} checked handler(s)",
            self.events_seen,
            self.spec_first_seen.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> EventStream {
        EventStream::new(true, 8)
    }

    #[test]
    fn sequence_numbers_are_global_and_match_timeline_order() {
        let s = stream();
        for cpu in 0..5usize {
            s.emit(cpu as u32, None, Event::TrapEnter { cpu });
        }
        let events = s.take_events();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.lane, i as u32);
        }
    }

    #[test]
    fn cursor_polls_incrementally_without_recopying() {
        let s = stream();
        let mut cur = s.cursor();
        s.emit(0, None, Event::TrapEnter { cpu: 0 });
        s.emit(0, None, Event::WriteMem { pa: 8, value: 9 });
        assert_eq!(s.poll(&mut cur).len(), 2);
        assert!(s.poll(&mut cur).is_empty());
        s.emit(1, None, Event::TrapEnter { cpu: 1 });
        let fresh = s.poll(&mut cur);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].seq, 2);
    }

    #[test]
    fn violations_are_tagged_with_their_event_seq_and_capped() {
        let s = EventStream::new(false, 2);
        s.emit(0, None, Event::TrapEnter { cpu: 0 });
        for i in 0..4 {
            let retained = s.violation(
                0,
                Some(0),
                Violation::HypPanic {
                    seq: None,
                    reason: format!("p{i}"),
                },
            );
            assert_eq!(retained, i < 2, "cap is 2");
        }
        let vs = s.violations();
        assert_eq!(vs.len(), 2);
        // Violations with no diverged-at anchor are tagged from the
        // derived sequence space; the primary numbering is untouched.
        assert_eq!(vs[0].event_seq(), Some(DERIVED_SEQ_BASE));
        assert_eq!(vs[1].event_seq(), Some(DERIVED_SEQ_BASE + 1));
        assert_eq!(s.violation_count(), 2);
        // Retention off: nothing but the indexes is kept, yet sequence
        // numbers advanced for every emit — and derived records never
        // consumed a primary sequence number.
        assert!(s.is_empty());
        assert_eq!(s.emit(0, None, Event::TrapEnter { cpu: 0 }), 1);
    }

    #[test]
    fn check_events_feed_the_bounded_trap_trace() {
        let s = EventStream::new(false, 8);
        for i in 0..(TRACE_CAP + 10) {
            s.emit(
                0,
                None,
                Event::Check {
                    cpu: 0,
                    name: format!("t{i}"),
                    outcome: TrapOutcome::Clean,
                },
            );
        }
        let t = s.trap_records();
        assert_eq!(t.len(), TRACE_CAP);
        assert_eq!(t.last().unwrap().name, format!("t{}", TRACE_CAP + 9));
    }

    #[test]
    fn novelty_signature_hashes_shape_not_values() {
        let rec = |event| EventRecord {
            seq: 0,
            lane: 0,
            trap: None,
            t_ns: 0,
            event,
        };
        let shape = |name: &str, pfn: u64, value: u64| {
            novelty_signature(&[
                rec(Event::Hvc {
                    cpu: 0,
                    func: value,
                    args: vec![pfn],
                }),
                rec(Event::WriteMem { pa: pfn, value }),
                rec(Event::LockAcquired {
                    cpu: 0,
                    comp: Component::Vm(value as Handle),
                }),
                rec(Event::TablePageAlloc {
                    comp: Component::Host,
                    pfn,
                }),
                rec(Event::TrapExit {
                    cpu: 0,
                    name: name.into(),
                }),
                rec(Event::Check {
                    cpu: 0,
                    name: name.into(),
                    outcome: TrapOutcome::Clean,
                }),
            ])
        };
        // Concrete values (pfns, register contents, VM handles, driver
        // inputs) do not participate: only the post-trap shape does.
        assert_eq!(
            shape("host_share_hyp", 10, 1),
            shape("host_share_hyp", 99, 7)
        );
        // A different trap name is a different shape.
        assert_ne!(
            shape("host_share_hyp", 10, 1),
            shape("host_unshare_hyp", 10, 1)
        );
        // A different check outcome is a different shape.
        let clean = novelty_signature(&[rec(Event::Check {
            cpu: 0,
            name: "t".into(),
            outcome: TrapOutcome::Clean,
        })]);
        let violated = novelty_signature(&[rec(Event::Check {
            cpu: 0,
            name: "t".into(),
            outcome: TrapOutcome::Violated(1),
        })]);
        let unchecked = novelty_signature(&[rec(Event::Check {
            cpu: 0,
            name: "t".into(),
            outcome: TrapOutcome::Unchecked("why".into()),
        })]);
        assert_ne!(clean, violated);
        assert_ne!(clean, unchecked);
        assert_ne!(violated, unchecked);
        // A new lock-component kind is a different shape.
        let host_lock = novelty_signature(&[rec(Event::LockAcquired {
            cpu: 0,
            comp: Component::Host,
        })]);
        let vm_lock = novelty_signature(&[rec(Event::LockAcquired {
            cpu: 0,
            comp: Component::Vm(3),
        })]);
        assert_ne!(host_lock, vm_lock);
        // ... but two different VM handles are the same kind.
        assert_eq!(
            vm_lock,
            novelty_signature(&[rec(Event::LockAcquired {
                cpu: 0,
                comp: Component::Vm(9),
            })])
        );
        // Order matters (a shape is a sequence, not a set).
        let ab = novelty_signature(&[
            rec(Event::TrapEnter { cpu: 0 }),
            rec(Event::TrapExit {
                cpu: 0,
                name: "a".into(),
            }),
            rec(Event::TrapExit {
                cpu: 0,
                name: "b".into(),
            }),
        ]);
        let ba = novelty_signature(&[
            rec(Event::TrapExit {
                cpu: 0,
                name: "b".into(),
            }),
            rec(Event::TrapExit {
                cpu: 0,
                name: "a".into(),
            }),
        ]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn poll_into_reuses_the_callers_buffer() {
        let s = stream();
        let mut cur = s.cursor();
        let mut buf = Vec::new();
        s.emit(0, None, Event::TrapEnter { cpu: 0 });
        s.emit(0, None, Event::WriteMem { pa: 8, value: 9 });
        assert_eq!(s.poll_into(&mut cur, &mut buf), 2);
        assert_eq!(buf.len(), 2);
        let cap = buf.capacity();
        // An empty drain clears the buffer but keeps its storage.
        assert_eq!(s.poll_into(&mut cur, &mut buf), 0);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
        s.emit(1, None, Event::TrapEnter { cpu: 1 });
        assert_eq!(s.poll_into(&mut cur, &mut buf), 1);
        assert_eq!(buf[0].seq, 2);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn canonical_signature_ignores_where_derived_records_land() {
        let rec = |seq: u64, trap: Option<u64>, event| EventRecord {
            seq,
            lane: 0,
            trap,
            t_ns: 0,
            event,
        };
        let violation = |at: u64| Violation::HypPanic {
            seq: Some(at),
            reason: "p".into(),
        };
        let check = |name: &str| Event::Check {
            cpu: 0,
            name: name.into(),
            outcome: TrapOutcome::Violated(1),
        };
        const D: u64 = DERIVED_SEQ_BASE;
        // Inline: the checker's Check/Violation records sit inside the
        // trap that produced them.
        let inline = [
            rec(0, None, Event::TrapEnter { cpu: 0 }),
            rec(
                1,
                Some(0),
                Event::LockAcquired {
                    cpu: 0,
                    comp: Component::Host,
                },
            ),
            rec(
                2,
                Some(0),
                Event::TrapExit {
                    cpu: 0,
                    name: "a".into(),
                },
            ),
            rec(D, Some(0), Event::Violation(violation(1))),
            rec(D + 1, Some(0), check("a")),
            rec(3, None, Event::TrapEnter { cpu: 1 }),
            rec(
                4,
                Some(3),
                Event::TrapExit {
                    cpu: 1,
                    name: "b".into(),
                },
            ),
            rec(D + 2, Some(3), check("b")),
        ];
        // Pipelined: the checker runs behind the frontier, so the same
        // derived records land later in the retained timeline, past other
        // traps' events — with the same derived seqs, trap links, and
        // diverged-at anchors.
        let pipelined = [
            rec(0, None, Event::TrapEnter { cpu: 0 }),
            rec(
                1,
                Some(0),
                Event::LockAcquired {
                    cpu: 0,
                    comp: Component::Host,
                },
            ),
            rec(
                2,
                Some(0),
                Event::TrapExit {
                    cpu: 0,
                    name: "a".into(),
                },
            ),
            rec(3, None, Event::TrapEnter { cpu: 1 }),
            rec(
                4,
                Some(3),
                Event::TrapExit {
                    cpu: 1,
                    name: "b".into(),
                },
            ),
            rec(D, Some(0), Event::Violation(violation(1))),
            rec(D + 1, Some(0), check("a")),
            rec(D + 2, Some(3), check("b")),
        ];
        assert_eq!(
            canonical_signature(&inline),
            canonical_signature(&pipelined)
        );
        // The raw signature is order-sensitive and would disagree.
        assert_ne!(novelty_signature(&inline), novelty_signature(&pipelined));
        // Canonicalisation still distinguishes genuinely different shapes.
        let mut other = pipelined.clone();
        other[4] = rec(
            4,
            Some(3),
            Event::TrapExit {
                cpu: 1,
                name: "c".into(),
            },
        );
        assert_ne!(canonical_signature(&inline), canonical_signature(&other));
    }

    #[test]
    fn stats_consumer_pairs_traps_and_counts_families() {
        let s = stream();
        s.emit(0, None, Event::TrapEnter { cpu: 0 });
        s.emit(
            0,
            Some(0),
            Event::TrapExit {
                cpu: 0,
                name: "host_share_hyp".into(),
            },
        );
        s.emit(1, None, Event::TrapEnter { cpu: 1 });
        s.emit(
            0,
            None,
            Event::Chaos {
                cpu: 0,
                kind: ChaosKind::TornReadOnce,
            },
        );
        let mut stats = TraceStats::new();
        stats.observe_all(&s.take_events());
        assert_eq!(stats.families["trap-enter"], 2);
        assert_eq!(stats.traps["host_share_hyp"].count, 1);
        assert_eq!(stats.chaos["torn-read-once"], 1);
        let rendered = stats.render();
        assert!(rendered.contains("host_share_hyp"), "{rendered}");
        assert!(rendered.contains("lane 0"), "{rendered}");
    }
}
