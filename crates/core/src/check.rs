//! The runtime check: comparing recorded and computed ghost states.
//!
//! After each handler, the oracle holds three (partial) states — the
//! recorded pre, the recorded post, and the spec-computed post — and
//! performs the *ternary* check of §4.2.2: wherever the computed post is
//! defined it must equal the recorded post, and everywhere else the
//! recorded post must equal the pre.

use pkvm_hyp::hooks::TransferEdge;

use crate::abstraction::Anomaly;
use crate::diff::diff_states;
use crate::state::GhostState;

/// One detected disagreement between implementation and specification (or
/// a broken runtime invariant).
///
/// Every variant carries `seq`: the violation's position in the unified
/// event stream (see [`crate::event`]), filled in when the report enters
/// the stream, so reports can say "diverged at event #N" and a replay can
/// be compared against the original timeline position by position.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// The recorded post-state differs from the spec-computed post-state.
    SpecMismatch {
        /// Event-stream sequence id of this report.
        seq: Option<u64>,
        /// Which trap was being checked.
        trap: String,
        /// Which component disagreed.
        component: String,
        /// The incarnation id of the VM involved, if the component is a VM.
        uniq: Option<u64>,
        /// Rendered diff (computed vs recorded).
        diff: String,
    },
    /// A component the spec did not change differs between pre and post.
    UnexpectedChange {
        /// Event-stream sequence id of this report.
        seq: Option<u64>,
        /// Which trap was being checked.
        trap: String,
        /// Which component changed.
        component: String,
        /// The incarnation id of the VM involved, if the component is a VM.
        uniq: Option<u64>,
        /// Rendered diff (pre vs recorded post).
        diff: String,
    },
    /// A lock-protected component changed while no one held its lock
    /// (§4.4 invariant 1).
    NonInterference {
        /// Event-stream sequence id of this report.
        seq: Option<u64>,
        /// Which component.
        component: String,
        /// The incarnation id of the VM involved, if the component is a VM.
        uniq: Option<u64>,
        /// Rendered diff (last recorded vs now observed).
        diff: String,
    },
    /// A page was allocated into one component's page-table footprint
    /// while belonging to another's (§4.4 invariant 2).
    SeparationOverlap {
        /// Event-stream sequence id of this report.
        seq: Option<u64>,
        /// The component allocating.
        component: String,
        /// The offending page frame.
        pfn: u64,
        /// The component already owning the page.
        owner: String,
    },
    /// The abstraction function found a malformed concrete state.
    AbstractionAnomaly {
        /// Event-stream sequence id of this report.
        seq: Option<u64>,
        /// Where it was found.
        context: String,
        /// What was found.
        anomaly: Anomaly,
    },
    /// The hypervisor panicked.
    HypPanic {
        /// Event-stream sequence id of this report.
        seq: Option<u64>,
        /// The panic reason.
        reason: String,
    },
    /// Oracle self-check: the oracle's own bookkeeping hit a state it
    /// cannot interpret (e.g. a malformed internal component name). The
    /// run continues — one confused record must not poison a whole
    /// campaign — but the confusion itself is surfaced as a finding.
    OracleSelfCheck {
        /// Event-stream sequence id of this report.
        seq: Option<u64>,
        /// Where the oracle got confused.
        context: String,
        /// What it could not interpret.
        detail: String,
    },
    /// Oracle self-check: under shadow validation the incremental
    /// abstraction diverged from the full walk.
    ShadowDivergence {
        /// Event-stream sequence id of this report.
        seq: Option<u64>,
        /// Which component's interpretation diverged.
        component: String,
        /// Rendered diff (full vs incremental).
        diff: String,
    },
    /// A break-before-make breach: a live mapping was removed or
    /// tightened and the trap exited without the matching-scope broadcast
    /// TLB invalidation (plus DSB). `seq` anchors on the offending
    /// table-write event (the `PteDowngrade`), not on this report.
    BreakBeforeMake {
        /// Event-stream sequence id of the offending downgrade.
        seq: Option<u64>,
        /// The trap that exited with the downgrade still unflushed.
        trap: String,
        /// VMID of the downgraded translation regime.
        vmid: u16,
        /// First input address of the downgraded range.
        ia: u64,
        /// Pages downgraded (`u64::MAX` with `ia == 0` is VMID-wide).
        nr: u64,
    },
    /// The host's stage 2 regained access to a page that was donated to a
    /// protected VM as firmware. The property spans the VM's whole
    /// lifetime — including teardown and handle reuse — so `uniq` names
    /// the incarnation the page belonged to, and `seq` anchors on the
    /// event where the host regained access.
    FirmwareProtection {
        /// Event-stream sequence id of the violating regain event.
        seq: Option<u64>,
        /// Handle of the VM the firmware was donated to.
        handle: u32,
        /// Incarnation id of that VM (survives handle reuse).
        uniq: u64,
        /// The firmware page frame the host regained.
        pfn: u64,
    },
    /// A page crossed an ownership-transfer edge its protocol state does
    /// not allow — e.g. becoming accessible to both sides mid-transfer,
    /// or an unshare that does not restore the pre-share owner. `seq`
    /// anchors on the offending transfer event.
    TransferProtocol {
        /// Event-stream sequence id of the offending transfer event.
        seq: Option<u64>,
        /// The edge that was crossed.
        edge: TransferEdge,
        /// The page frame concerned.
        pfn: u64,
        /// What the protocol state machine expected instead.
        detail: String,
    },
    /// A reclaimed guest page re-entered the host's stage 2 still holding
    /// guest data (the wipe was skipped or incomplete). `seq` anchors on
    /// the reclaim transfer event.
    ReclaimWipe {
        /// Event-stream sequence id of the dirty reclaim event.
        seq: Option<u64>,
        /// The page frame returned unwiped.
        pfn: u64,
    },
    /// An oracle-internal step (abstraction, spec, or check) panicked and
    /// the panic was contained. The system under test is *not* implicated:
    /// this is the oracle reporting on itself so a campaign can keep
    /// running instead of aborting.
    OracleInternal {
        /// Event-stream sequence id of this report.
        seq: Option<u64>,
        /// The component (or oracle step) whose processing panicked.
        component: String,
        /// The stringified panic payload.
        payload: String,
    },
}

impl Violation {
    /// Stable kind tag, usable as a grep key in reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::SpecMismatch { .. } => "spec-mismatch",
            Violation::UnexpectedChange { .. } => "unexpected-change",
            Violation::NonInterference { .. } => "non-interference",
            Violation::SeparationOverlap { .. } => "separation-overlap",
            Violation::AbstractionAnomaly { .. } => "abstraction-anomaly",
            Violation::HypPanic { .. } => "hyp-panic",
            Violation::OracleSelfCheck { .. } => "oracle-self-check",
            Violation::ShadowDivergence { .. } => "shadow-divergence",
            Violation::BreakBeforeMake { .. } => "break-before-make",
            Violation::FirmwareProtection { .. } => "firmware-protection",
            Violation::TransferProtocol { .. } => "transfer-protocol",
            Violation::ReclaimWipe { .. } => "reclaim-wipe",
            Violation::OracleInternal { .. } => "oracle-internal",
        }
    }

    /// The trap being checked when the violation was found, if any.
    pub fn trap(&self) -> Option<&str> {
        match self {
            Violation::SpecMismatch { trap, .. }
            | Violation::UnexpectedChange { trap, .. }
            | Violation::BreakBeforeMake { trap, .. } => Some(trap),
            _ => None,
        }
    }

    /// The component (or context acting as one) the violation concerns.
    pub fn component(&self) -> Option<&str> {
        match self {
            Violation::SpecMismatch { component, .. }
            | Violation::UnexpectedChange { component, .. }
            | Violation::NonInterference { component, .. }
            | Violation::SeparationOverlap { component, .. }
            | Violation::ShadowDivergence { component, .. }
            | Violation::OracleInternal { component, .. } => Some(component),
            Violation::AbstractionAnomaly { context, .. }
            | Violation::OracleSelfCheck { context, .. } => Some(context),
            Violation::HypPanic { .. }
            | Violation::BreakBeforeMake { .. }
            | Violation::FirmwareProtection { .. }
            | Violation::TransferProtocol { .. }
            | Violation::ReclaimWipe { .. } => None,
        }
    }

    /// The incarnation id (`Vm::uniq`) of the VM involved, when known.
    pub fn vm_uniq(&self) -> Option<u64> {
        match self {
            Violation::SpecMismatch { uniq, .. }
            | Violation::UnexpectedChange { uniq, .. }
            | Violation::NonInterference { uniq, .. } => *uniq,
            Violation::FirmwareProtection { uniq, .. } => Some(*uniq),
            _ => None,
        }
    }

    /// Annotates the VM incarnation id on variants that carry one, leaving
    /// an already-set id alone.
    pub fn set_vm_uniq(&mut self, id: u64) {
        match self {
            Violation::SpecMismatch { uniq, .. }
            | Violation::UnexpectedChange { uniq, .. }
            | Violation::NonInterference { uniq, .. }
                if uniq.is_none() =>
            {
                *uniq = Some(id);
            }
            _ => {}
        }
    }

    /// The violation's event-stream sequence id, once reported.
    pub fn event_seq(&self) -> Option<u64> {
        match self {
            Violation::SpecMismatch { seq, .. }
            | Violation::UnexpectedChange { seq, .. }
            | Violation::NonInterference { seq, .. }
            | Violation::SeparationOverlap { seq, .. }
            | Violation::AbstractionAnomaly { seq, .. }
            | Violation::HypPanic { seq, .. }
            | Violation::OracleSelfCheck { seq, .. }
            | Violation::ShadowDivergence { seq, .. }
            | Violation::BreakBeforeMake { seq, .. }
            | Violation::FirmwareProtection { seq, .. }
            | Violation::TransferProtocol { seq, .. }
            | Violation::ReclaimWipe { seq, .. }
            | Violation::OracleInternal { seq, .. } => *seq,
        }
    }

    /// Stamps the event-stream sequence id, leaving an already-set id
    /// alone (a replayed report keeps the seq of its own timeline).
    pub fn set_event_seq(&mut self, s: u64) {
        match self {
            Violation::SpecMismatch { seq, .. }
            | Violation::UnexpectedChange { seq, .. }
            | Violation::NonInterference { seq, .. }
            | Violation::SeparationOverlap { seq, .. }
            | Violation::AbstractionAnomaly { seq, .. }
            | Violation::HypPanic { seq, .. }
            | Violation::OracleSelfCheck { seq, .. }
            | Violation::ShadowDivergence { seq, .. }
            | Violation::BreakBeforeMake { seq, .. }
            | Violation::FirmwareProtection { seq, .. }
            | Violation::TransferProtocol { seq, .. }
            | Violation::ReclaimWipe { seq, .. }
            | Violation::OracleInternal { seq, .. } => {
                if seq.is_none() {
                    *seq = Some(s);
                }
            }
        }
    }

    fn detail(&self) -> String {
        match self {
            Violation::SpecMismatch { diff, .. } => format!("spec mismatch:\n{diff}"),
            Violation::UnexpectedChange { diff, .. } => format!("unexpected change:\n{diff}"),
            Violation::NonInterference { diff, .. } => {
                format!("changed while unlocked:\n{diff}")
            }
            Violation::SeparationOverlap { pfn, owner, .. } => {
                format!("allocated table page {pfn:#x} owned by {owner}")
            }
            Violation::AbstractionAnomaly { anomaly, .. } => {
                format!("malformed concrete state: {anomaly:?}")
            }
            Violation::HypPanic { reason, .. } => format!("hypervisor panic: {reason}"),
            Violation::OracleSelfCheck { detail, .. } => {
                format!("oracle self-check failed: {detail}")
            }
            Violation::ShadowDivergence { diff, .. } => {
                format!("incremental abstraction diverged from full walk:\n{diff}")
            }
            Violation::BreakBeforeMake { vmid, ia, nr, .. } => {
                if *ia == 0 && *nr == u64::MAX {
                    format!("downgrade of vmid {vmid} (vmid-wide) exited without TLBI+DSB")
                } else {
                    format!(
                        "downgrade of vmid {vmid} ia {ia:#x} ({nr} pages) exited without \
                         covering broadcast TLBI+DSB"
                    )
                }
            }
            Violation::FirmwareProtection {
                handle, uniq, pfn, ..
            } => {
                format!(
                    "host regained firmware page {pfn:#x} donated to vm {handle:#x} \
                     (incarnation {uniq})"
                )
            }
            Violation::TransferProtocol {
                edge, pfn, detail, ..
            } => {
                format!(
                    "page {pfn:#x} illegally crossed edge {}: {detail}",
                    edge.name()
                )
            }
            Violation::ReclaimWipe { pfn, .. } => {
                format!("page {pfn:#x} reclaimed to the host still holding guest data")
            }
            Violation::OracleInternal { payload, .. } => {
                format!("contained oracle panic: {payload}")
            }
        }
    }
}

/// Every violation renders through the same header so reports are
/// greppable without per-variant knowledge: `violation kind=<kind>
/// trap=<trap|-> comp=<component|-> uniq=<Vm::uniq|-> event=<seq|-> ::
/// <detail>`. The `event=` field is the report's position in the unified
/// event stream — "diverged at event #N" — so a replay can be lined up
/// against the original timeline.
impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let uniq = self
            .vm_uniq()
            .map_or_else(|| "-".to_string(), |u| u.to_string());
        let event = self
            .event_seq()
            .map_or_else(|| "-".to_string(), |s| s.to_string());
        write!(
            f,
            "violation kind={} trap={} comp={} uniq={} event={} :: {}",
            self.kind(),
            self.trap().unwrap_or("-"),
            self.component().unwrap_or("-"),
            uniq,
            event,
            self.detail(),
        )
    }
}

/// The outcome of checking one trap.
#[derive(Clone, Debug, Default)]
pub struct CheckOutcome {
    /// Violations found (empty means the trap passed).
    pub violations: Vec<Violation>,
    /// Components the spec defined but the handler never recorded (no lock
    /// cycle): their computed values seed the oracle's shared copy so the
    /// *next* acquisition validates them.
    pub deferred: Vec<String>,
}

/// Normalises a ghost state for comparison: memory-management details —
/// table-node footprints and memcache contents — are erased, because the
/// specification deliberately abstracts from "allocation of internal
/// structures and reference counting" (§3.1). The raw values stay in the
/// recorded states (the separation check and the teardown spec *read*
/// them); they just do not participate in equality.
pub fn normalize(state: &GhostState) -> GhostState {
    let mut s = state.clone();
    if let Some(h) = s.host.as_mut() {
        h.table_pages.clear();
    }
    if let Some(p) = s.pkvm.as_mut() {
        p.pgt.table_pages.clear();
    }
    for vm in s.vms.values_mut() {
        vm.pgt.table_pages.clear();
        for v in vm.vcpus.iter_mut() {
            if let crate::state::GhostVcpu::Present { memcache, .. } = v {
                memcache.clear();
            }
        }
    }
    for l in s.locals.values_mut() {
        if let Some(lv) = l.loaded.as_mut() {
            lv.memcache.clear();
        }
    }
    s
}

// Extracts the index out of a bracketed component name like "vm[3]" or
// "locals[0]". `None` on malformed names: component names are generated
// internally, but under chaos injection the check path must stay total, so
// a name it cannot parse degrades to "not present" instead of panicking.
fn bracket_index<T: std::str::FromStr>(name: &str, prefix: &str) -> Option<T> {
    name.strip_prefix(prefix)?.strip_suffix(']')?.parse().ok()
}

// The component comparison is done on projected single-component states so
// the diff renderer can be reused untouched.
fn project(state: &GhostState, component: &str) -> GhostState {
    let state = &normalize(state);
    let mut s = GhostState::default();
    match component {
        "host" => s.host = state.host.clone(),
        "pkvm" => s.pkvm = state.pkvm.clone(),
        "vm_table" => s.vm_table = state.vm_table.clone(),
        c if c.starts_with("vm[") => {
            if let Some(h) = bracket_index::<u32>(c, "vm[") {
                if let Some(vm) = state.vms.get(&h) {
                    s.vms.insert(h, vm.clone());
                }
            }
        }
        c if c.starts_with("locals[") => {
            if let Some(cpu) = bracket_index::<usize>(c, "locals[") {
                if let Some(l) = state.locals.get(&cpu) {
                    s.locals.insert(cpu, l.clone());
                }
            }
        }
        // An unknown name projects to the empty state: both sides of the
        // comparison see the same nothing, so it can never fabricate a
        // violation — and never panics mid-campaign.
        _ => {}
    }
    s
}

fn component_present(state: &GhostState, component: &str) -> bool {
    match component {
        "host" => state.host.is_some(),
        "pkvm" => state.pkvm.is_some(),
        "vm_table" => state.vm_table.is_some(),
        c if c.starts_with("vm[") => {
            bracket_index::<u32>(c, "vm[").is_some_and(|h| state.vms.contains_key(&h))
        }
        c if c.starts_with("locals[") => {
            bracket_index::<usize>(c, "locals[").is_some_and(|cpu| state.locals.contains_key(&cpu))
        }
        _ => false,
    }
}

fn all_components(states: [&GhostState; 3]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut push = |c: String| {
        if !out.contains(&c) {
            out.push(c);
        }
    };
    for s in states {
        if s.host.is_some() {
            push("host".into());
        }
        if s.pkvm.is_some() {
            push("pkvm".into());
        }
        if s.vm_table.is_some() {
            push("vm_table".into());
        }
        for h in s.vms.keys() {
            push(format!("vm[{h}]"));
        }
        for c in s.locals.keys() {
            push(format!("locals[{c}]"));
        }
    }
    out
}

/// The ternary check for one trap: `pre` and `recorded` come from the
/// recording machinery, `computed` from the specification function.
pub fn check_trap(
    trap: &str,
    pre: &GhostState,
    recorded: &GhostState,
    computed: &GhostState,
) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    for comp in all_components([pre, recorded, computed]) {
        let in_computed = component_present(computed, &comp);
        let in_recorded = component_present(recorded, &comp);
        let in_pre = component_present(pre, &comp);
        match (in_computed, in_recorded) {
            (true, true) => {
                let c = project(computed, &comp);
                let r = project(recorded, &comp);
                if c != r {
                    out.violations.push(Violation::SpecMismatch {
                        seq: None,
                        trap: trap.into(),
                        component: comp.clone(),
                        uniq: None,
                        diff: diff_states(&c, &r),
                    });
                }
            }
            (true, false) => {
                // The spec defined a component the handler never recorded
                // (e.g. the initial state of a freshly created VM): defer
                // it to the next acquisition's non-interference check.
                out.deferred.push(comp.clone());
            }
            (false, true) => {
                // The spec left it alone: it must not have changed.
                if in_pre {
                    let p = project(pre, &comp);
                    let r = project(recorded, &comp);
                    if p != r {
                        out.violations.push(Violation::UnexpectedChange {
                            seq: None,
                            trap: trap.into(),
                            component: comp.clone(),
                            uniq: None,
                            diff: diff_states(&p, &r),
                        });
                    }
                }
                // A post-only recording with no pre cannot happen through
                // the paired lock helpers; nothing to check if it does.
            }
            (false, false) => {
                // Present only in pre: locked but the spec says nothing and
                // the release recorded nothing — unreachable through the
                // paired helpers.
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maplet::{AbsAttrs, Maplet, MapletTarget};
    use crate::state::{GhostGlobals, GhostHost};
    use pkvm_aarch64::attrs::{MemType, Perms};
    use pkvm_hyp::owner::PageState;

    fn host_state(shared_pages: &[u64]) -> GhostState {
        let mut s = GhostState::blank(&GhostGlobals::default());
        let mut h = GhostHost::default();
        for &ia in shared_pages {
            h.shared.insert(Maplet {
                ia,
                nr_pages: 1,
                target: MapletTarget::Mapped {
                    oa: ia,
                    attrs: AbsAttrs {
                        perms: Perms::RWX,
                        memtype: MemType::Normal,
                        state: Some(PageState::SharedOwned),
                    },
                },
            });
        }
        s.host = Some(h);
        s
    }

    #[test]
    fn matching_states_pass() {
        let pre = host_state(&[]);
        let recorded = host_state(&[0x4000_0000]);
        let computed = host_state(&[0x4000_0000]);
        let o = check_trap("host_share_hyp", &pre, &recorded, &computed);
        assert!(o.violations.is_empty(), "{:?}", o.violations);
    }

    #[test]
    fn spec_mismatch_detected() {
        let pre = host_state(&[]);
        let recorded = host_state(&[0x4000_0000]);
        let computed = host_state(&[0x4000_1000]);
        let o = check_trap("host_share_hyp", &pre, &recorded, &computed);
        assert_eq!(o.violations.len(), 1);
        assert!(
            matches!(&o.violations[0], Violation::SpecMismatch { component, .. } if component == "host")
        );
    }

    #[test]
    fn unexpected_change_detected() {
        let pre = host_state(&[]);
        let recorded = host_state(&[0x4000_0000]);
        let computed = GhostState::blank(&GhostGlobals::default()); // spec: no change
        let o = check_trap("vcpu_put", &pre, &recorded, &computed);
        assert_eq!(o.violations.len(), 1);
        assert!(matches!(
            &o.violations[0],
            Violation::UnexpectedChange { .. }
        ));
    }

    #[test]
    fn untouched_components_pass() {
        let pre = host_state(&[0x4000_0000]);
        let recorded = pre.clone();
        let computed = GhostState::blank(&GhostGlobals::default());
        let o = check_trap("vcpu_put", &pre, &recorded, &computed);
        assert!(o.violations.is_empty());
    }

    #[test]
    fn spec_only_components_are_deferred() {
        let pre = GhostState::blank(&GhostGlobals::default());
        let recorded = GhostState::blank(&GhostGlobals::default());
        let computed = host_state(&[0x4000_0000]);
        let o = check_trap("init", &pre, &recorded, &computed);
        assert!(o.violations.is_empty());
        assert_eq!(o.deferred, vec!["host".to_string()]);
    }

    #[test]
    fn display_is_uniform_and_greppable() {
        let v = Violation::SpecMismatch {
            seq: None,
            trap: "host_share_hyp".into(),
            component: "host".into(),
            uniq: None,
            diff: "d".into(),
        };
        assert!(
            v.to_string().starts_with(
                "violation kind=spec-mismatch trap=host_share_hyp comp=host uniq=- event=- ::"
            ),
            "{v}"
        );
        let mut v = Violation::NonInterference {
            seq: None,
            component: "vm[3]".into(),
            uniq: None,
            diff: "d".into(),
        };
        v.set_vm_uniq(42);
        v.set_event_seq(1234);
        assert!(
            v.to_string().starts_with(
                "violation kind=non-interference trap=- comp=vm[3] uniq=42 event=1234 ::"
            ),
            "{v}"
        );
        // A seq set by the original timeline survives a re-report.
        v.set_event_seq(9999);
        assert_eq!(v.event_seq(), Some(1234));
        let v = Violation::OracleInternal {
            seq: None,
            component: "spec:vcpu_run".into(),
            payload: "boom".into(),
        };
        let s = v.to_string();
        assert!(
            s.starts_with(
                "violation kind=oracle-internal trap=- comp=spec:vcpu_run uniq=- event=- ::"
            ) && s.contains("boom"),
            "{s}"
        );
    }

    #[test]
    fn malformed_component_names_do_not_panic_the_check() {
        let s = GhostState::blank(&GhostGlobals::default());
        for name in ["vm[bogus]", "vm[", "locals[x]", "wat"] {
            assert!(!component_present(&s, name), "{name}");
            assert_eq!(project(&s, name), GhostState::default(), "{name}");
        }
    }

    #[test]
    fn locals_mismatch_detected() {
        let mut pre = GhostState::blank(&GhostGlobals::default());
        pre.write_gpr(0, 1, 7);
        let mut recorded = GhostState::blank(&GhostGlobals::default());
        recorded.write_gpr(0, 1, 0); // impl returned 0
        let mut computed = GhostState::blank(&GhostGlobals::default());
        computed.write_gpr(0, 1, (-1i64) as u64); // spec expected EPERM
        let o = check_trap("host_share_hyp", &pre, &recorded, &computed);
        assert_eq!(o.violations.len(), 1);
        assert!(
            matches!(&o.violations[0], Violation::SpecMismatch { component, .. } if component == "locals[0]")
        );
    }
}
