//! Panic containment and component quarantine for the oracle.
//!
//! A runtime oracle embedded in a production hypervisor can never be
//! allowed to take down the system it monitors. This module gives the
//! oracle a blast shield: every abstraction/spec/check step runs under
//! [`contain`], which converts a panic into an error string the caller
//! turns into `Violation::OracleInternal`; a [`Quarantine`] tracks
//! components whose processing fails repeatedly and benches them for a
//! fixed number of traps, after which the caller re-seeds them from a
//! full abstraction pass and resumes checking.
//!
//! Nothing here knows about ghost states — it is deliberately a small,
//! self-contained mechanism so the policy (what to skip, how to recover)
//! stays readable in `oracle.rs`.

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

use pkvm_aarch64::sync::Mutex;

thread_local! {
    // Depth of nested `contain` calls on this thread. While positive, the
    // process-global panic hook stays silent: a contained panic is a
    // *report*, not an event worth a stderr backtrace per occurrence.
    static CONTAIN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that suppresses the default
/// stderr noise for panics that are about to be contained, and delegates
/// to the previous hook for everything else.
pub fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if CONTAIN_DEPTH.with(|d| d.get()) == 0 {
                prev(info);
            }
        }));
    });
}

/// Renders a panic payload (from `catch_unwind`) into a `String`.
pub fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with panics contained: `Err(payload)` instead of unwinding.
///
/// The closure is wrapped in `AssertUnwindSafe` deliberately: the oracle's
/// shared structures live behind panic-tolerant locks
/// (`pkvm_aarch64::sync` ignores poisoning), and a component whose
/// processing panicked mid-update is exactly what the quarantine/re-seed
/// machinery exists to repair.
pub fn contain<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    CONTAIN_DEPTH.with(|d| d.set(d.get() + 1));
    let out = catch_unwind(AssertUnwindSafe(f));
    CONTAIN_DEPTH.with(|d| d.set(d.get() - 1));
    out.map_err(payload_to_string)
}

/// Per-key failure accounting with time-boxed quarantine.
///
/// Keys are free-form strings — component names (`"host"`, `"vm[3]"`) and
/// per-trap spec steps (`"spec:host_share_hyp"`). Time is measured in
/// traps: the oracle ticks the clock once per `trap_enter`.
#[derive(Debug)]
pub struct Quarantine {
    /// Consecutive failures before a key is quarantined.
    threshold: u32,
    /// How many trap ticks a quarantined key sits out.
    duration: u64,
    tick: AtomicU64,
    inner: Mutex<HashMap<String, Health>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Health {
    consecutive_failures: u32,
    quarantined_until: Option<u64>,
}

/// What the oracle should do with a key right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Healthy (or still accumulating failures): process normally.
    Process,
    /// Benched: skip all processing for this key.
    Skip,
    /// Quarantine just expired: re-seed from a full pass, then process.
    Recover,
}

impl Quarantine {
    /// A quarantine that benches a key after `threshold` consecutive
    /// failures for `duration` trap ticks.
    pub fn new(threshold: u32, duration: u64) -> Self {
        Quarantine {
            threshold: threshold.max(1),
            duration: duration.max(1),
            tick: AtomicU64::new(0),
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Advances the trap clock (call once per trap entry).
    pub fn tick(&self) {
        self.tick.fetch_add(1, Ordering::Relaxed);
    }

    /// Current trap clock, for reports.
    pub fn now(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Looks up the key's disposition, transitioning `Skip -> Recover`
    /// exactly once when its quarantine expires.
    pub fn disposition(&self, key: &str) -> Disposition {
        let now = self.tick.load(Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let Some(h) = inner.get_mut(key) else {
            return Disposition::Process;
        };
        match h.quarantined_until {
            Some(until) if now < until => Disposition::Skip,
            Some(_) => {
                // Served its time: one caller gets the Recover signal and
                // the slate is wiped clean.
                *h = Health::default();
                Disposition::Recover
            }
            None => Disposition::Process,
        }
    }

    /// Records a contained failure for `key`. Returns `true` when this
    /// failure pushed the key over the threshold into quarantine.
    pub fn record_failure(&self, key: &str) -> bool {
        let now = self.tick.load(Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let h = inner.entry(key.to_string()).or_default();
        if h.quarantined_until.is_some() {
            return false;
        }
        h.consecutive_failures += 1;
        if h.consecutive_failures >= self.threshold {
            h.quarantined_until = Some(now + self.duration);
            true
        } else {
            false
        }
    }

    /// Records a successful pass for `key`, resetting its failure streak.
    pub fn record_success(&self, key: &str) {
        let mut inner = self.inner.lock();
        if let Some(h) = inner.get_mut(key) {
            if h.quarantined_until.is_none() {
                h.consecutive_failures = 0;
            }
        }
    }

    /// Number of keys currently benched.
    pub fn active(&self) -> usize {
        let now = self.tick.load(Ordering::Relaxed);
        self.inner
            .lock()
            .values()
            .filter(|h| h.quarantined_until.is_some_and(|u| now < u))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contain_passes_values_and_catches_panics() {
        assert_eq!(contain(|| 7), Ok(7));
        let err = contain(|| -> u32 { panic!("boom {}", 3) }).unwrap_err();
        assert_eq!(err, "boom 3");
        let err = contain(|| -> u32 { panic!("static") }).unwrap_err();
        assert_eq!(err, "static");
    }

    #[test]
    fn quarantine_benches_after_threshold_and_recovers() {
        let q = Quarantine::new(2, 3);
        assert_eq!(q.disposition("host"), Disposition::Process);
        assert!(!q.record_failure("host"));
        assert_eq!(q.disposition("host"), Disposition::Process);
        assert!(q.record_failure("host"), "second failure quarantines");
        assert_eq!(q.disposition("host"), Disposition::Skip);
        assert_eq!(q.active(), 1);
        q.tick();
        q.tick();
        assert_eq!(q.disposition("host"), Disposition::Skip);
        q.tick();
        assert_eq!(q.disposition("host"), Disposition::Recover);
        // Recover is delivered once; afterwards the key is healthy again.
        assert_eq!(q.disposition("host"), Disposition::Process);
        assert_eq!(q.active(), 0);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let q = Quarantine::new(2, 4);
        assert!(!q.record_failure("vm[1]"));
        q.record_success("vm[1]");
        assert!(!q.record_failure("vm[1]"), "streak was reset");
        assert!(q.record_failure("vm[1]"));
    }

    #[test]
    fn failures_while_quarantined_do_not_extend_the_bench() {
        let q = Quarantine::new(1, 2);
        assert!(q.record_failure("pkvm"));
        assert!(!q.record_failure("pkvm"));
        q.tick();
        q.tick();
        assert_eq!(q.disposition("pkvm"), Disposition::Recover);
    }
}
