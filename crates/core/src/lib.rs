//! Reified ghost state and executable test-oracle specification of the
//! pKVM-style hypervisor in `pkvm-hyp` — the paper's primary contribution.
//!
//! The approach (§1): specify the desired behaviour in a form usable as a
//! *test oracle*, and check correspondence between specification and
//! implementation at runtime. Concretely:
//!
//! - [`maplet`] / [`mapping`] — finite range maps of maximally coalesced
//!   maplets: the mathematical meaning of a page table;
//! - [`state`] — the partial ghost state, structured after the
//!   implementation's lock/ownership discipline;
//! - [`abstraction`] — computable abstraction functions interpreting
//!   concrete Arm-format tables (and VM metadata) into ghost state, with
//!   legality checking of the loosely-specified host mapping-on-demand
//!   region;
//! - [`calldata`] — recorded nondeterminism: implementation return codes
//!   and `READ_ONCE` values from host/guest-writable memory;
//! - [`spec`] — one pure specification function per exception handler,
//!   computing the expected post ghost state (Fig. 5);
//! - [`check`] — the ternary pre/recorded-post/computed-post comparison;
//! - [`diff`] — human-readable ghost-state diffs;
//! - [`oracle`] — the runtime recorder implementing the hypervisor's
//!   instrumentation hooks, with the non-interference and separation
//!   invariant checks (§4.4).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use pkvm_ghost::prelude::*;
//! use pkvm_hyp::machine::{Machine, MachineConfig};
//! use pkvm_hyp::faults::FaultSet;
//! use pkvm_hyp::hypercalls::HVC_HOST_SHARE_HYP;
//!
//! let config = MachineConfig::default();
//! let oracle = Oracle::builder(&config).build();
//! let machine = Machine::boot(config, oracle.clone(), Arc::new(FaultSet::none()));
//! assert!(oracle.check_boot());
//! let ret = machine.hvc(0, HVC_HOST_SHARE_HYP, &[0x40100]);
//! assert_eq!(ret, 0);
//! assert!(oracle.is_clean(), "{:#?}", oracle.violations());
//! ```

pub mod abscache;
pub mod abstraction;
pub mod calldata;
pub mod check;
pub mod checker;
pub mod containment;
pub mod diff;
pub mod event;
pub mod maplet;
pub mod mapping;
pub mod oracle;
pub mod prelude;
pub mod print;
pub mod spec;
pub mod state;

pub use abscache::{AbsCache, CacheKey, CacheStats};
pub use abstraction::{
    abstract_host, abstract_host_from_interp, abstract_hyp, abstract_vm, abstract_vm_with_pgt,
    interpret_pgtable, interpret_pgtable_with_meta, interpret_subtree, Anomaly, TableMeta,
};
pub use calldata::GhostCallData;
pub use check::{check_trap, normalize, CheckOutcome, Violation};
pub use checker::{CheckMode, Checker, StatsSnapshot, Verdict};
pub use containment::{contain, Disposition, Quarantine};
pub use diff::diff_states;
pub use event::{
    canonical_signature, novelty_signature, ChaosKind, Event, EventCursor, EventRecord, EventSink,
    EventStream, ShapeHasher, TraceStats, DERIVED_SEQ_BASE, TRACE_CAP,
};
pub use maplet::{AbsAttrs, Maplet, MapletTarget};
pub use mapping::Mapping;
pub use oracle::{Oracle, OracleOpts, OracleStats, ResilienceSnapshot, TrapOutcome, TrapRecord};
pub use print::render_state;
pub use spec::{compute_post, SpecVerdict};
pub use state::{
    AbstractPgtable, GhostCpu, GhostGlobals, GhostHost, GhostLoadedVcpu, GhostPkvm, GhostState,
    GhostVcpu, GhostVm,
};
