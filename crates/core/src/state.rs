//! The reified ghost state (§3.1).
//!
//! A [`GhostState`] is the mathematical abstraction of the hypervisor's
//! concrete state: abstract page tables as finite range maps, VM and vCPU
//! metadata, per-CPU register context, and the constants established at
//! initialisation. Every lock-protected component is optional — a ghost
//! state is *partial*, holding exactly the components whose locks were
//! held when it was recorded, mirroring the implementation ownership
//! structure.

use std::collections::{BTreeMap, BTreeSet};

use pkvm_aarch64::sysreg::GprFile;
use pkvm_hyp::machine::Machine;
use pkvm_hyp::vm::Handle;

use crate::mapping::Mapping;

/// Constants established during pKVM initialisation: "the number of
/// physical CPUs, the offset of the linear mapping, and constants
/// specifying the conversion between host and pKVM virtual addresses".
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GhostGlobals {
    /// Number of hardware threads.
    pub nr_cpus: usize,
    /// `hyp_va = pa + physvirt_offset`.
    pub physvirt_offset: u64,
    /// Where the hypervisor mapped its UART.
    pub uart_va: u64,
    /// The hypervisor carveout as (base pfn, page count).
    pub hyp_range: (u64, u64),
    /// RAM regions as (base, size).
    pub ram: Vec<(u64, u64)>,
    /// MMIO regions as (base, size).
    pub mmio: Vec<(u64, u64)>,
}

impl GhostGlobals {
    /// Copies the globals out of a booted machine. The specification never
    /// reads the machine again — maintaining the paper's hygiene
    /// distinction between implementation and specification state.
    pub fn from_machine(m: &Machine) -> GhostGlobals {
        GhostGlobals {
            nr_cpus: m.nr_cpus(),
            physvirt_offset: m.state.layout.physvirt_offset,
            uart_va: m.state.layout.uart_va.bits(),
            hyp_range: m.state.hyp_range,
            ram: m.config().dram.clone(),
            mmio: m.config().mmio.clone(),
        }
    }

    /// The linear-map hypervisor VA of physical address `pa`.
    pub fn hyp_va(&self, pa: u64) -> u64 {
        pa.wrapping_add(self.physvirt_offset)
    }

    /// Returns `true` if `pa` lies in a RAM region ("allowed memory" in
    /// Fig. 5's `ghost_addr_is_allowed_memory`).
    pub fn is_ram(&self, pa: u64) -> bool {
        self.ram.iter().any(|&(b, s)| pa >= b && pa - b < s)
    }

    /// Returns `true` if `pa` lies in an MMIO region.
    pub fn is_mmio(&self, pa: u64) -> bool {
        self.mmio.iter().any(|&(b, s)| pa >= b && pa - b < s)
    }
}

/// An interpreted page table: its extensional mapping plus the physical
/// footprint of the table nodes themselves (used by the separation check,
/// §4.4).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AbstractPgtable {
    /// The finite range map the table denotes.
    pub mapping: Mapping,
    /// Page frame numbers of every table node reachable from the root
    /// (including the root).
    pub table_pages: BTreeSet<u64>,
}

/// Abstraction of pKVM's own stage 1 component.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GhostPkvm {
    /// pKVM's stage 1 as an abstract page table.
    pub pgt: AbstractPgtable,
}

/// Abstraction of the host stage 2 component.
///
/// Deliberately *not* the full host mapping (§3.1): mapping-on-demand makes
/// plain host-owned mappings nondeterministic, so the ghost records only
/// the two deterministic sub-maps — the owner annotations and the
/// shared/borrowed pages — and checks legality of the rest separately.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GhostHost {
    /// Pages owned by pKVM or a guest (invalid-descriptor annotations).
    pub annot: Mapping,
    /// Pages owned-and-shared by the host, or borrowed by it.
    pub shared: Mapping,
    /// The table-node footprint of the host stage 2.
    pub table_pages: BTreeSet<u64>,
}

/// Abstraction of one vCPU's metadata.
// `Present` is much larger than the other variants; vCPU counts are tiny.
#[expect(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GhostVcpu {
    /// Not yet initialised.
    Uninit,
    /// Initialised, resident under the VM lock.
    Present {
        /// Saved guest registers.
        regs: GprFile,
        /// Pfns of the pages in the vCPU's memcache.
        memcache: Vec<u64>,
    },
    /// Loaded on a physical CPU (its state is thread-local there).
    Loaded {
        /// The owning hardware thread.
        on: usize,
    },
}

/// Abstraction of one VM's lock-protected metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GhostVm {
    /// The host-visible handle.
    pub handle: Handle,
    /// VM-table slot (fixes the guest owner id).
    pub slot: usize,
    /// Protected VMs receive donated (not shared) memory.
    pub protected: bool,
    /// The guest's stage 2 as an abstract page table.
    pub pgt: AbstractPgtable,
    /// Pfns of the metadata pages the host donated.
    pub donated: Vec<u64>,
    /// Pfns of the pvmfw-style firmware region (`vm_load_firmware`);
    /// never returned to the host.
    pub firmware: Vec<u64>,
    /// Per-index vCPU abstractions.
    pub vcpus: Vec<GhostVcpu>,
}

/// Thread-local ghost state of a loaded vCPU (ownership transferred from
/// the VM lock to the hardware thread).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GhostLoadedVcpu {
    /// The VM it belongs to.
    pub handle: Handle,
    /// Its index within the VM.
    pub idx: usize,
    /// Saved guest registers at the transfer point.
    pub regs: GprFile,
    /// Memcache pfns at the transfer point.
    pub memcache: Vec<u64>,
}

/// The per-hardware-thread component: the saved EL1 context and the
/// loaded vCPU.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GhostCpu {
    /// The saved host registers.
    pub regs: GprFile,
    /// The vCPU loaded on this thread, if any.
    pub loaded: Option<GhostLoadedVcpu>,
}

/// The (partial) ghost state: the `struct ghost_state` of §3.1.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GhostState {
    /// pKVM's stage 1, if its lock was held.
    pub pkvm: Option<GhostPkvm>,
    /// The host's stage 2, if its lock was held.
    pub host: Option<GhostHost>,
    /// The VM table (live handle/slot pairs, sorted), if its lock was held.
    pub vm_table: Option<Vec<(Handle, usize)>>,
    /// Per-VM components, for each VM whose lock was held.
    pub vms: BTreeMap<Handle, GhostVm>,
    /// Per-CPU local components, for each recorded hardware thread.
    pub locals: BTreeMap<usize, GhostCpu>,
    /// Initialisation-time constants.
    pub globals: GhostGlobals,
}

impl GhostState {
    /// A blank state carrying only the globals.
    pub fn blank(globals: &GhostGlobals) -> GhostState {
        GhostState {
            globals: globals.clone(),
            ..GhostState::default()
        }
    }

    /// Copies the host component from `src` (the `copy_abstraction_host`
    /// of Fig. 5 step (3)).
    ///
    /// # Panics
    ///
    /// Panics if `src` does not hold the component — the spec may only
    /// copy parts the handler actually locked.
    pub fn copy_host_from(&mut self, src: &GhostState) {
        self.host = Some(
            src.host
                .clone()
                .expect("host component absent in pre-state"),
        );
    }

    /// Copies the pKVM component from `src` (`copy_abstraction_pkvm`).
    ///
    /// # Panics
    ///
    /// Panics if `src` does not hold the component.
    pub fn copy_pkvm_from(&mut self, src: &GhostState) {
        self.pkvm = Some(
            src.pkvm
                .clone()
                .expect("pkvm component absent in pre-state"),
        );
    }

    /// Copies one VM component from `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not hold that VM.
    pub fn copy_vm_from(&mut self, src: &GhostState, handle: Handle) {
        let vm = src
            .vms
            .get(&handle)
            .expect("vm component absent in pre-state")
            .clone();
        self.vms.insert(handle, vm);
    }

    /// Copies the VM-table component from `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not hold it.
    pub fn copy_vm_table_from(&mut self, src: &GhostState) {
        self.vm_table = Some(
            src.vm_table
                .clone()
                .expect("vm_table component absent in pre-state"),
        );
    }

    /// Copies the local component of `cpu` from `src`.
    pub fn copy_local_from(&mut self, src: &GhostState, cpu: usize) {
        if let Some(l) = src.locals.get(&cpu) {
            self.locals.insert(cpu, l.clone());
        }
    }

    /// Reads a general-purpose register of `cpu`'s recorded context
    /// (`ghost_read_gpr`).
    ///
    /// # Panics
    ///
    /// Panics if the local component of `cpu` is absent.
    pub fn read_gpr(&self, cpu: usize, n: usize) -> u64 {
        self.locals
            .get(&cpu)
            .expect("local component absent")
            .regs
            .get(n)
    }

    /// Writes a general-purpose register of `cpu`'s context in this state
    /// (`ghost_write_gpr`), creating the local component if needed.
    pub fn write_gpr(&mut self, cpu: usize, n: usize, v: u64) {
        self.locals.entry(cpu).or_default().regs.set(n, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn globals() -> GhostGlobals {
        GhostGlobals {
            nr_cpus: 2,
            physvirt_offset: 0x8000_0000_0000,
            uart_va: 0x8800_0000_0000,
            hyp_range: (0x44000, 1024),
            ram: vec![(0x4000_0000, 0x800_0000)],
            mmio: vec![(0x900_0000, 0x1000)],
        }
    }

    #[test]
    fn globals_address_predicates() {
        let g = globals();
        assert!(g.is_ram(0x4000_0000));
        assert!(g.is_ram(0x47ff_ffff));
        assert!(!g.is_ram(0x4800_0000));
        assert!(g.is_mmio(0x900_0800));
        assert!(!g.is_mmio(0x901_0000));
        assert_eq!(g.hyp_va(0x4000_0000), 0x8000_4000_0000);
    }

    #[test]
    fn blank_state_is_fully_partial() {
        let s = GhostState::blank(&globals());
        assert!(s.pkvm.is_none() && s.host.is_none() && s.vm_table.is_none());
        assert!(s.vms.is_empty() && s.locals.is_empty());
        assert_eq!(s.globals, globals());
    }

    #[test]
    fn copy_helpers_move_components() {
        let mut src = GhostState::blank(&globals());
        src.host = Some(GhostHost::default());
        src.write_gpr(1, 0, 42);
        let mut dst = GhostState::blank(&globals());
        dst.copy_host_from(&src);
        dst.copy_local_from(&src, 1);
        assert!(dst.host.is_some());
        assert_eq!(dst.read_gpr(1, 0), 42);
    }

    #[test]
    #[should_panic(expected = "pkvm component absent")]
    fn copy_of_absent_component_panics() {
        let src = GhostState::blank(&globals());
        let mut dst = GhostState::blank(&globals());
        dst.copy_pkvm_from(&src);
    }

    #[test]
    fn write_gpr_creates_local() {
        let mut s = GhostState::blank(&globals());
        s.write_gpr(0, 1, 7);
        assert_eq!(s.read_gpr(0, 1), 7);
    }
}
