//! Incremental abstraction: caching page-table interpretations between
//! lock events and re-interpreting only dirtied subtrees.
//!
//! Full interpretation ([`interpret_pgtable`]) walks the entire tree at
//! every lock acquisition *and* release — the dominant per-event cost of
//! the oracle (§4, Fig. 6 steps (2)–(5)) — even when the critical section
//! wrote a handful of PTEs. This module keeps, per component, the last
//! interpretation keyed by `(root, write-log generation)` plus the
//! [`TableMeta`] locating every table node, and on the next event:
//!
//! 1. asks the [`WriteLog`](pkvm_aarch64::memory::WriteLog) which pages
//!    were written since the cached snapshot;
//! 2. intersects them with the cached table footprint — writes to
//!    non-table pages cannot change the interpretation;
//! 3. re-interprets only the subtrees rooted at dirtied table nodes
//!    (keeping the shallowest when nested) and splices each delta over
//!    its span in the cached map ([`Mapping::splice`]);
//! 4. falls back to a full walk when the root moved, the log was trimmed,
//!    the dirty ratio is high, or a replayed subtree reports an anomaly.
//!
//! ## Why the dirty intersection is sound
//!
//! The cached snapshot generation is taken *before* the walk it
//! describes, so writes racing with that walk are re-reported next time
//! (the log over-approximates). A table node leaves or joins the tree
//! only by a PTE write in its (cached) parent node, so a stale footprint
//! entry whose page was re-used is always shadowed by a dirtied ancestor
//! and dropped by the shallowest-subtree filter. Anomalous states are
//! never cached: every event over them takes the full walk and re-reports
//! the anomalies, exactly like the non-incremental oracle.

use std::collections::HashMap;

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::attrs::Stage;
use pkvm_aarch64::memory::PhysMem;

use crate::abstraction::{
    interpret_pgtable_with_meta, interpret_subtree, table_span_pages, Anomaly, TableMeta,
};
use crate::state::AbstractPgtable;

/// Which component's interpretation a cache entry holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// pKVM's own stage 1.
    Hyp,
    /// The host's stage 2.
    Host,
    /// A guest VM's stage 2, by handle.
    Vm(u32),
}

/// If more than one table in `4^-1` of the footprint is dirty, replaying
/// subtrees stops paying; take the full walk.
const DIRTY_RATIO_DEN: usize = 4;

/// Counters describing how the cache resolved requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Served unchanged (no dirty table pages).
    pub clean_hits: u64,
    /// Served by replaying dirty subtrees into the cached map.
    pub incremental: u64,
    /// Subtrees replayed across all incremental serves.
    pub subtrees_replayed: u64,
    /// Full walks: no cache entry yet.
    pub full_cold: u64,
    /// Full walks: the root changed.
    pub full_root_changed: u64,
    /// Full walks: the write log could not answer (disabled or trimmed).
    pub full_log_unavailable: u64,
    /// Full walks: dirty ratio above threshold.
    pub full_dirty_ratio: u64,
    /// Full walks: a replayed subtree reported an anomaly.
    pub full_anomaly: u64,
}

impl CacheStats {
    /// Total requests resolved.
    pub fn requests(&self) -> u64 {
        self.clean_hits
            + self.incremental
            + self.full_cold
            + self.full_root_changed
            + self.full_log_unavailable
            + self.full_dirty_ratio
            + self.full_anomaly
    }

    /// Total full walks taken.
    pub fn full_walks(&self) -> u64 {
        self.full_cold
            + self.full_root_changed
            + self.full_log_unavailable
            + self.full_dirty_ratio
            + self.full_anomaly
    }
}

struct CacheEntry {
    root: PhysAddr,
    stage: Stage,
    /// Write-log snapshot taken before the walk that produced `interp`.
    gen: u64,
    interp: AbstractPgtable,
    meta: TableMeta,
}

/// The per-oracle incremental abstraction cache.
#[derive(Default)]
pub struct AbsCache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Resolution counters (exposed for benches, tests and reports).
    pub stats: CacheStats,
}

impl AbsCache {
    /// An empty cache.
    pub fn new() -> AbsCache {
        AbsCache::default()
    }

    /// Drops every cached interpretation (e.g. when a VM is torn down its
    /// entry must not survive handle reuse).
    pub fn invalidate(&mut self, key: CacheKey) {
        self.entries.remove(&key);
    }

    /// Drops cached VM interpretations whose handle fails `live` — called
    /// when the VM table is observed, so torn-down VMs do not keep their
    /// (now dangling) interpretations resident.
    pub fn retain_vms(&mut self, live: impl Fn(u32) -> bool) {
        self.entries.retain(|k, _| match k {
            CacheKey::Vm(h) => live(*h),
            _ => true,
        });
    }

    /// Interprets the table rooted at `root`, reusing the cached
    /// interpretation for `key` where the write log proves it still
    /// valid. Appends anomalies exactly as [`interpret_pgtable`] would.
    ///
    /// [`interpret_pgtable`]: crate::abstraction::interpret_pgtable
    pub fn interp(
        &mut self,
        mem: &PhysMem,
        stage: Stage,
        root: PhysAddr,
        key: CacheKey,
        anomalies: &mut Vec<Anomaly>,
    ) -> AbstractPgtable {
        let log = mem.write_log();
        // Snapshot before reading any table state: writes racing with
        // this interpretation will be at or after `snap` and therefore
        // re-reported by the next dirty_since query.
        let snap = log.snapshot_generation();

        match self.plan(mem, stage, root, key) {
            Plan::Clean => match self.entries.get_mut(&key) {
                Some(e) => {
                    self.stats.clean_hits += 1;
                    e.gen = snap;
                    e.interp.clone()
                }
                // The plan raced with an eviction (possible only under
                // chaos/containment, where a contained panic can leave the
                // cache partially updated): degrade to a full walk rather
                // than panic in the oracle hot path.
                None => {
                    self.stats.full_cold += 1;
                    self.full_walk(mem, stage, root, key, snap, anomalies)
                }
            },
            Plan::Replay(subtrees) => {
                match self.replay(mem, key, snap, &subtrees) {
                    Some(interp) => {
                        self.stats.incremental += 1;
                        self.stats.subtrees_replayed += subtrees.len() as u64;
                        interp
                    }
                    None => {
                        // A replayed subtree was anomalous; take the full
                        // walk so anomalies are reported once, coherently.
                        self.stats.full_anomaly += 1;
                        self.full_walk(mem, stage, root, key, snap, anomalies)
                    }
                }
            }
            Plan::Full(reason) => {
                *match reason {
                    FullReason::Cold => &mut self.stats.full_cold,
                    FullReason::RootChanged => &mut self.stats.full_root_changed,
                    FullReason::LogUnavailable => &mut self.stats.full_log_unavailable,
                    FullReason::DirtyRatio => &mut self.stats.full_dirty_ratio,
                } += 1;
                self.full_walk(mem, stage, root, key, snap, anomalies)
            }
        }
    }

    fn plan(&self, mem: &PhysMem, stage: Stage, root: PhysAddr, key: CacheKey) -> Plan {
        let Some(e) = self.entries.get(&key) else {
            return Plan::Full(FullReason::Cold);
        };
        if e.root != root || e.stage != stage {
            return Plan::Full(FullReason::RootChanged);
        }
        let Some(dirty) = mem.write_log().dirty_since(e.gen) else {
            return Plan::Full(FullReason::LogUnavailable);
        };
        // Only writes to pages that were table nodes can change the
        // interpretation; everything else is data.
        let mut dirty_tables: Vec<(u64, u8, u64)> = dirty
            .iter()
            .filter_map(|pfn| e.meta.get(pfn).map(|&(level, ia)| (*pfn, level, ia)))
            .collect();
        if dirty_tables.is_empty() {
            return Plan::Clean;
        }
        if dirty_tables.len() * DIRTY_RATIO_DEN > e.meta.len() {
            return Plan::Full(FullReason::DirtyRatio);
        }
        // Keep only the shallowest dirty nodes: a dirty node inside
        // another dirty node's span is covered by replaying the ancestor
        // (and a *stale* node — freed and reused — is always covered by
        // the ancestor whose PTE write unlinked it).
        dirty_tables.sort_by_key(|&(_, level, ia)| (level, ia));
        let mut kept: Vec<(u64, u8, u64)> = Vec::with_capacity(dirty_tables.len());
        'next: for &(pfn, level, ia) in &dirty_tables {
            for &(_, klevel, kia) in &kept {
                let span = table_span_pages(klevel) * PAGE_SIZE;
                if level > klevel && ia >= kia && ia - kia < span {
                    continue 'next;
                }
            }
            kept.push((pfn, level, ia));
        }
        Plan::Replay(kept)
    }

    // Replays `subtrees` over the cached entry; returns `None` (entry
    // invalidated) if any subtree is anomalous.
    fn replay(
        &mut self,
        mem: &PhysMem,
        key: CacheKey,
        snap: u64,
        subtrees: &[(u64, u8, u64)],
    ) -> Option<AbstractPgtable> {
        // `None` (entry vanished between plan and replay — only possible
        // when containment interrupted an update) degrades to a full walk
        // via the caller's anomaly fallback.
        let e = self.entries.get_mut(&key)?;
        let stage = e.stage;
        for &(pfn, level, ia_base) in subtrees {
            let mut sub_meta = TableMeta::new();
            let mut sub_anomalies = Vec::new();
            let sub = interpret_subtree(
                mem,
                stage,
                PhysAddr::new(pfn * PAGE_SIZE),
                level,
                ia_base,
                &mut sub_meta,
                &mut sub_anomalies,
            );
            if !sub_anomalies.is_empty() {
                self.entries.remove(&key);
                return None;
            }
            let span = table_span_pages(level);
            // Splice the subtree's extension over its span, and swap the
            // span's table-node footprint for the subtree's.
            e.interp
                .mapping
                .splice(ia_base, span, sub.mapping.iter().copied());
            let span_bytes = span * PAGE_SIZE;
            let stale: Vec<u64> = e
                .meta
                .iter()
                .filter(|&(_, &(l, ia))| l >= level && ia >= ia_base && ia - ia_base < span_bytes)
                .map(|(&pfn, _)| pfn)
                .collect();
            for pfn in stale {
                e.meta.remove(&pfn);
                e.interp.table_pages.remove(&pfn);
            }
            e.meta.extend(sub_meta);
            e.interp.table_pages.extend(sub.table_pages);
        }
        e.gen = snap;
        Some(e.interp.clone())
    }

    fn full_walk(
        &mut self,
        mem: &PhysMem,
        stage: Stage,
        root: PhysAddr,
        key: CacheKey,
        snap: u64,
        anomalies: &mut Vec<Anomaly>,
    ) -> AbstractPgtable {
        let before = anomalies.len();
        let (interp, meta) = interpret_pgtable_with_meta(mem, stage, root, anomalies);
        if anomalies.len() == before {
            self.entries.insert(
                key,
                CacheEntry {
                    root,
                    stage,
                    gen: snap,
                    interp: interp.clone(),
                    meta,
                },
            );
        } else {
            // Never cache anomalous states: every event over them must
            // re-walk and re-report, like the non-incremental oracle.
            self.entries.remove(&key);
        }
        interp
    }
}

enum Plan {
    Clean,
    Replay(Vec<(u64, u8, u64)>),
    Full(FullReason),
}

enum FullReason {
    Cold,
    RootChanged,
    LogUnavailable,
    DirtyRatio,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::interpret_pgtable;
    use pkvm_aarch64::attrs::{Attrs, Perms};
    use pkvm_aarch64::desc::Pte;
    use pkvm_aarch64::memory::MemRegion;
    use pkvm_hyp::owner::{annotation_pte, OwnerId, PageState};

    fn mem() -> PhysMem {
        let m = PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x800_0000)]);
        m.write_log().set_enabled(true);
        m
    }

    fn leaf(oa: u64) -> Pte {
        Pte::leaf(
            Stage::Stage2,
            3,
            PhysAddr::new(oa),
            Attrs::normal(Perms::RWX).with_sw(PageState::Owned.to_sw()),
        )
    }

    /// root -> l1 -> l2 -> l3 with two pages mapped.
    fn build(m: &PhysMem) -> PhysAddr {
        let root = PhysAddr::new(0x4400_0000);
        let l1 = PhysAddr::new(0x4400_1000);
        let l2 = PhysAddr::new(0x4400_2000);
        let l3 = PhysAddr::new(0x4400_3000);
        m.write_pte(root, 0, Pte::table(l1)).unwrap();
        m.write_pte(l1, 0, Pte::table(l2)).unwrap();
        m.write_pte(l2, 0, Pte::table(l3)).unwrap();
        m.write_pte(l3, 0, leaf(0x4200_0000)).unwrap();
        m.write_pte(l3, 1, leaf(0x4200_1000)).unwrap();
        root
    }

    fn check_agrees(cache: &mut AbsCache, m: &PhysMem, root: PhysAddr) {
        let mut a1 = Vec::new();
        let inc = cache.interp(m, Stage::Stage2, root, CacheKey::Host, &mut a1);
        let mut a2 = Vec::new();
        let full = interpret_pgtable(m, Stage::Stage2, root, &mut a2);
        assert_eq!(inc, full);
        assert_eq!(a1, a2);
    }

    #[test]
    fn clean_reuse_after_data_writes() {
        let m = mem();
        let root = build(&m);
        let mut cache = AbsCache::new();
        check_agrees(&mut cache, &m, root);
        assert_eq!(cache.stats.full_cold, 1);
        // Data writes (not table pages) must not force any re-walk.
        m.write_u64(PhysAddr::new(0x4200_0000), 77).unwrap();
        check_agrees(&mut cache, &m, root);
        assert_eq!(cache.stats.clean_hits, 1);
        assert_eq!(cache.stats.incremental, 0);
    }

    #[test]
    fn pte_write_replays_one_subtree() {
        let m = mem();
        let root = build(&m);
        let mut cache = AbsCache::new();
        check_agrees(&mut cache, &m, root);
        // Change a leaf: only the l3 subtree should replay.
        m.write_pte(PhysAddr::new(0x4400_3000), 2, leaf(0x4200_2000))
            .unwrap();
        check_agrees(&mut cache, &m, root);
        assert_eq!(cache.stats.incremental, 1);
        assert_eq!(cache.stats.subtrees_replayed, 1);
        // Unmap one: replay again.
        m.write_pte(PhysAddr::new(0x4400_3000), 0, Pte(0)).unwrap();
        check_agrees(&mut cache, &m, root);
        assert_eq!(cache.stats.incremental, 2);
    }

    #[test]
    fn nested_dirty_tables_replay_the_ancestor_once() {
        let m = mem();
        let root = build(&m);
        let mut cache = AbsCache::new();
        check_agrees(&mut cache, &m, root);
        // Dirty both l2 (link a second l3) and the new l3's contents.
        let l3b = PhysAddr::new(0x4400_4000);
        m.write_pte(l3b, 0, leaf(0x4200_4000)).unwrap();
        m.write_pte(PhysAddr::new(0x4400_2000), 1, Pte::table(l3b))
            .unwrap();
        check_agrees(&mut cache, &m, root);
        assert_eq!(cache.stats.incremental, 1);
        // l3b was not in the cached footprint, so only l2 replays.
        assert_eq!(cache.stats.subtrees_replayed, 1);
    }

    #[test]
    fn unlink_and_reuse_of_a_table_page_is_covered_by_the_parent() {
        let m = mem();
        let root = build(&m);
        let mut cache = AbsCache::new();
        check_agrees(&mut cache, &m, root);
        let l2 = PhysAddr::new(0x4400_2000);
        let l3 = PhysAddr::new(0x4400_3000);
        // Unlink l3 from l2 and scribble garbage over the freed page (as
        // a reused data page would).
        m.write_pte(l2, 0, Pte(0)).unwrap();
        m.write_u64(l3, 0xdead_beef).unwrap();
        check_agrees(&mut cache, &m, root);
        // The stale l3 must not have been replayed as a subtree.
        let mut a = Vec::new();
        let now = cache.interp(&m, Stage::Stage2, root, CacheKey::Host, &mut a);
        assert!(!now.table_pages.contains(&l3.pfn()));
    }

    #[test]
    fn root_change_falls_back_to_full_walk() {
        let m = mem();
        let root = build(&m);
        let mut cache = AbsCache::new();
        check_agrees(&mut cache, &m, root);
        let root2 = PhysAddr::new(0x4500_0000);
        m.write_pte(root2, 0, annotation_pte(OwnerId::HYP)).unwrap();
        let mut a = Vec::new();
        cache.interp(&m, Stage::Stage2, root2, CacheKey::Host, &mut a);
        assert_eq!(cache.stats.full_root_changed, 1);
        check_agrees(&mut cache, &m, root2);
    }

    #[test]
    fn log_unavailable_falls_back_to_full_walk() {
        let m = mem();
        let root = build(&m);
        let mut cache = AbsCache::new();
        check_agrees(&mut cache, &m, root);
        m.write_log().set_enabled(false);
        m.write_log().set_enabled(true);
        check_agrees(&mut cache, &m, root);
        assert_eq!(cache.stats.full_log_unavailable, 1);
    }

    #[test]
    fn anomalous_states_are_never_cached() {
        let m = mem();
        let root = build(&m);
        let mut cache = AbsCache::new();
        check_agrees(&mut cache, &m, root);
        // Introduce a reserved descriptor (0b01 at level 3) through a
        // tracked table page.
        m.write_pte(PhysAddr::new(0x4400_3000), 3, Pte(0b01))
            .unwrap();
        check_agrees(&mut cache, &m, root);
        assert_eq!(cache.stats.full_anomaly, 1);
        // Still anomalous: must full-walk (and re-report) again, not hit.
        check_agrees(&mut cache, &m, root);
        assert_eq!(cache.stats.full_cold, 2);
        assert_eq!(cache.stats.clean_hits, 0);
    }

    #[test]
    fn invalidate_forces_cold_walk() {
        let m = mem();
        let root = build(&m);
        let mut cache = AbsCache::new();
        check_agrees(&mut cache, &m, root);
        cache.invalidate(CacheKey::Host);
        check_agrees(&mut cache, &m, root);
        assert_eq!(cache.stats.full_cold, 2);
    }
}
