//! Abstract mappings: finite range maps from page addresses to targets.
//!
//! The extensional meaning of a translation table is a finite partial map
//! from 4 KiB input pages to (output page, attributes) tuples, plus owner
//! annotations on unmapped ranges. [`Mapping`] represents exactly that, as
//! a sorted vector of maximally coalesced [`Maplet`]s, with the finite-map
//! operations the specification functions need: empty and singleton maps,
//! insertion, removal, lookup, pointwise difference, and structural
//! equality (which, thanks to the canonical coalesced form, *is* semantic
//! equality).

use std::sync::{Arc, OnceLock};

use pkvm_aarch64::addr::PAGE_SIZE;

use crate::maplet::{Maplet, MapletTarget};

/// A canonical (sorted, non-overlapping, maximally coalesced) finite range
/// map. Structural equality coincides with extensional equality.
///
/// The maplet storage is copy-on-write: `clone()` is an `Arc` bump, and
/// mutation copies the underlying vector only while it is shared. Ghost
/// snapshots (the shared copy, per-trap pre/post states, cache entries)
/// therefore alias one storage until a mutator actually diverges, which is
/// what lets the pipelined checker take per-trap snapshots without cloning
/// mappings wholesale.
#[derive(Clone, Debug)]
pub struct Mapping {
    maplets: Arc<Vec<Maplet>>,
}

impl Default for Mapping {
    fn default() -> Mapping {
        // All empty mappings share one storage: blank ghost states are
        // built in bulk (three per trap), so the empty map must not
        // allocate.
        static EMPTY: OnceLock<Arc<Vec<Maplet>>> = OnceLock::new();
        Mapping {
            maplets: EMPTY.get_or_init(|| Arc::new(Vec::new())).clone(),
        }
    }
}

impl PartialEq for Mapping {
    fn eq(&self, other: &Mapping) -> bool {
        // Undiverged snapshots still share storage; equality is then a
        // pointer compare instead of a maplet-by-maplet walk.
        Arc::ptr_eq(&self.maplets, &other.maplets) || self.maplets == other.maplets
    }
}

impl Eq for Mapping {}

impl Mapping {
    /// The empty mapping.
    pub fn new() -> Mapping {
        Mapping::default()
    }

    /// A mapping containing a single maplet.
    pub fn singleton(m: Maplet) -> Mapping {
        let mut map = Mapping::new();
        map.insert(m);
        map
    }

    /// The maplets in ascending input-address order.
    pub fn iter(&self) -> impl Iterator<Item = &Maplet> {
        self.maplets.iter()
    }

    /// Number of maplets (ranges), not pages.
    pub fn len(&self) -> usize {
        self.maplets.len()
    }

    /// Returns `true` if the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.maplets.is_empty()
    }

    /// Total number of pages in the domain.
    pub fn nr_pages(&self) -> u64 {
        self.maplets.iter().map(|m| m.nr_pages).sum()
    }

    /// The target of the page containing `ia`, if in the domain.
    pub fn lookup(&self, ia: u64) -> Option<MapletTarget> {
        let idx = match self.maplets.binary_search_by(|m| {
            if m.contains(ia) {
                core::cmp::Ordering::Equal
            } else if m.ia > ia {
                core::cmp::Ordering::Greater
            } else {
                core::cmp::Ordering::Less
            }
        }) {
            Ok(i) => i,
            Err(_) => return None,
        };
        Some(self.maplets[idx].target_at(ia & !(PAGE_SIZE - 1)))
    }

    /// Returns `true` if every page of `[ia, ia + nr*4K)` is in the domain.
    pub fn covers(&self, ia: u64, nr_pages: u64) -> bool {
        (0..nr_pages).all(|i| self.lookup(ia + i * PAGE_SIZE).is_some())
    }

    /// Removes `[ia, ia + nr*4K)` from the domain.
    pub fn remove(&mut self, ia: u64, nr_pages: u64) {
        if nr_pages == 0 {
            return;
        }
        let end = ia + nr_pages * PAGE_SIZE;
        // Fast path: nothing overlaps — leave the (possibly shared)
        // storage untouched.
        let first = self.maplets.partition_point(|m| m.end() <= ia);
        match self.maplets.get(first) {
            Some(m) if m.ia < end => {}
            _ => return,
        }
        let mut out = Vec::with_capacity(self.maplets.len() + 1);
        for &m in self.maplets.iter() {
            if m.end() <= ia || m.ia >= end {
                out.push(m);
                continue;
            }
            // Overlap: keep the parts outside [ia, end).
            if m.ia < ia {
                let (l, _) = m.split_at(ia);
                out.push(l);
            }
            if m.end() > end {
                let (_, r) = m.split_at(end);
                out.push(r);
            }
        }
        self.maplets = Arc::new(out);
    }

    /// Inserts `maplet`, overwriting any overlapping range, and restores
    /// the canonical coalesced form.
    pub fn insert(&mut self, maplet: Maplet) {
        if maplet.nr_pages == 0 {
            return;
        }
        self.remove(maplet.ia, maplet.nr_pages);
        let pos = self.maplets.partition_point(|m| m.ia < maplet.ia);
        Arc::make_mut(&mut self.maplets).insert(pos, maplet);
        self.coalesce_around(pos);
    }

    /// Inserts `maplet`, which must not overlap the existing domain.
    ///
    /// # Panics
    ///
    /// Panics on overlap — specification code inserts only into ranges it
    /// has just checked to be absent, so an overlap is a spec bug.
    pub fn insert_new(&mut self, maplet: Maplet) {
        self.try_insert_new(maplet).unwrap_or_else(|ia| {
            panic!("insert_new over existing range at {ia:#x}");
        });
    }

    /// Inserts `maplet` if it does not overlap the existing domain.
    ///
    /// # Errors
    ///
    /// Returns the first overlapping page address. Used by specification
    /// functions to *detect* states a correct hypervisor can never produce
    /// (e.g. a linear-map address aliasing an existing private mapping).
    pub fn try_insert_new(&mut self, maplet: Maplet) -> Result<(), u64> {
        for i in 0..maplet.nr_pages {
            let ia = maplet.ia + i * PAGE_SIZE;
            if self.lookup(ia).is_some() {
                return Err(ia);
            }
        }
        self.insert(maplet);
        Ok(())
    }

    /// Appends a maplet known to start at or after the current maximum
    /// address, coalescing with the tail when possible — the fast path of
    /// the abstraction function's in-order traversal
    /// (`extend_mapping_coalesce` in the paper's Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics if `maplet` is not beyond the current maximum.
    pub fn extend_coalesce(&mut self, maplet: Maplet) {
        if maplet.nr_pages == 0 {
            return;
        }
        let maplets = Arc::make_mut(&mut self.maplets);
        if let Some(last) = maplets.last_mut() {
            assert!(maplet.ia >= last.end(), "extend_coalesce out of order");
            if last.can_coalesce_with(&maplet) {
                last.nr_pages += maplet.nr_pages;
                return;
            }
        }
        maplets.push(maplet);
    }

    /// Replaces the range `[ia, ia + nr_pages)` wholesale with
    /// `replacement` — the delta-application primitive of the incremental
    /// abstraction: a re-interpreted subtree's maplets are spliced over
    /// the subtree's span in the cached map.
    ///
    /// `replacement` must be sorted, non-overlapping, and lie within the
    /// replaced range (any canonical [`Mapping`]'s maplets over that range
    /// qualify). Coalescing is restored at the two seams in O(n + k)
    /// rather than the O(n·k) of repeated [`Self::insert`].
    ///
    /// # Panics
    ///
    /// Panics (in debug) if `replacement` violates the ordering or range
    /// requirements.
    pub fn splice(
        &mut self,
        ia: u64,
        nr_pages: u64,
        replacement: impl IntoIterator<Item = Maplet>,
    ) {
        if nr_pages == 0 {
            return;
        }
        self.remove(ia, nr_pages);
        let end = ia + nr_pages * PAGE_SIZE;
        let rep: Vec<Maplet> = replacement.into_iter().filter(|m| m.nr_pages > 0).collect();
        for w in rep.windows(2) {
            debug_assert!(w[0].end() <= w[1].ia, "replacement out of order");
        }
        if let (Some(first), Some(last)) = (rep.first(), rep.last()) {
            debug_assert!(
                first.ia >= ia && last.end() <= end,
                "replacement outside splice range"
            );
        }
        let pos = self.maplets.partition_point(|m| m.ia < ia);
        let at = pos + rep.len();
        let maplets = Arc::make_mut(&mut self.maplets);
        maplets.splice(pos..pos, rep);
        // Restore coalescing at the trailing seam first (indices shift),
        // then the leading one; the interior of the replacement is already
        // canonical.
        if at > pos && at < maplets.len() {
            let next = maplets[at];
            if maplets[at - 1].can_coalesce_with(&next) {
                maplets[at - 1].nr_pages += next.nr_pages;
                maplets.remove(at);
            }
        }
        if at > pos && pos > 0 {
            let cur = maplets[pos];
            if maplets[pos - 1].can_coalesce_with(&cur) {
                maplets[pos - 1].nr_pages += cur.nr_pages;
                maplets.remove(pos);
            }
        }
    }

    fn coalesce_around(&mut self, pos: usize) {
        let maplets = Arc::make_mut(&mut self.maplets);
        // Try to merge with the successor first, then the predecessor.
        if pos + 1 < maplets.len() {
            let next = maplets[pos + 1];
            if maplets[pos].can_coalesce_with(&next) {
                maplets[pos].nr_pages += next.nr_pages;
                maplets.remove(pos + 1);
            }
        }
        if pos > 0 {
            let cur = maplets[pos];
            if maplets[pos - 1].can_coalesce_with(&cur) {
                maplets[pos - 1].nr_pages += cur.nr_pages;
                maplets.remove(pos);
            }
        }
    }

    /// The union of two mappings ("addition of finite maps" in the
    /// paper's operation list); `other` wins on overlap.
    pub fn union(&self, other: &Mapping) -> Mapping {
        let mut out = self.clone();
        for m in other.iter() {
            out.insert(*m);
        }
        out
    }

    /// Domain subtraction ("subtraction of finite maps"): removes every
    /// page in `other`'s domain from `self`.
    pub fn subtract(&self, other: &Mapping) -> Mapping {
        let mut out = self.clone();
        for m in other.iter() {
            out.remove(m.ia, m.nr_pages);
        }
        out
    }

    /// The pointwise difference: pages where `self` and `other` disagree
    /// (present in one but not the other, or mapped differently), reported
    /// as `(ia, left target, right target)` per disagreeing *range* start.
    /// Used by the ghost-state diffing of §4.2.2.
    pub fn diff<'a>(
        &'a self,
        other: &'a Mapping,
    ) -> Vec<(u64, Option<MapletTarget>, Option<MapletTarget>)> {
        let mut points: Vec<u64> = Vec::new();
        for m in self.maplets.iter().chain(other.maplets.iter()) {
            points.push(m.ia);
            points.push(m.end());
        }
        points.sort_unstable();
        points.dedup();
        let mut out = Vec::new();
        for w in points.windows(2) {
            let (start, end) = (w[0], w[1]);
            // Within [start, end) both mappings are "linear": compare the
            // first page and (for mapped runs) the rest follows.
            let a = self.lookup(start);
            let b = other.lookup(start);
            let disagree = match (a, b) {
                (None, None) => false,
                (Some(x), Some(y)) => x != y,
                _ => true,
            };
            // Output-contiguity within the window is guaranteed by maplet
            // linearity, but attributes/presence could still differ page by
            // page only at maplet boundaries — which are all in `points`.
            let _ = end;
            if disagree {
                out.push((start, a, b));
            }
        }
        out
    }

    /// Structural check of the canonical-form invariants (for tests and
    /// the property suite).
    pub fn check_canonical(&self) -> Result<(), String> {
        for w in self.maplets.windows(2) {
            if w[0].end() > w[1].ia {
                return Err(format!("overlap at {:#x}", w[1].ia));
            }
            if w[0].can_coalesce_with(&w[1]) {
                return Err(format!("uncoalesced neighbours at {:#x}", w[1].ia));
            }
        }
        if self.maplets.iter().any(|m| m.nr_pages == 0) {
            return Err("empty maplet".into());
        }
        Ok(())
    }
}

impl FromIterator<Maplet> for Mapping {
    fn from_iter<T: IntoIterator<Item = Maplet>>(iter: T) -> Mapping {
        let mut m = Mapping::new();
        for maplet in iter {
            m.insert(maplet);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maplet::AbsAttrs;
    use pkvm_aarch64::attrs::{MemType, Perms};
    use pkvm_hyp::owner::{OwnerId, PageState};

    fn attrs() -> AbsAttrs {
        AbsAttrs {
            perms: Perms::RWX,
            memtype: MemType::Normal,
            state: Some(PageState::Owned),
        }
    }

    fn mapped(ia: u64, nr: u64, oa: u64) -> Maplet {
        Maplet {
            ia,
            nr_pages: nr,
            target: MapletTarget::Mapped { oa, attrs: attrs() },
        }
    }

    fn annotated(ia: u64, nr: u64, owner: OwnerId) -> Maplet {
        Maplet {
            ia,
            nr_pages: nr,
            target: MapletTarget::Annotated { owner },
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut m = Mapping::new();
        m.insert(mapped(0x1000, 2, 0x8000));
        assert_eq!(
            m.lookup(0x1000),
            Some(MapletTarget::Mapped {
                oa: 0x8000,
                attrs: attrs()
            })
        );
        assert_eq!(
            m.lookup(0x2fff),
            Some(MapletTarget::Mapped {
                oa: 0x9000,
                attrs: attrs()
            })
        );
        assert_eq!(m.lookup(0x3000), None);
        assert_eq!(m.nr_pages(), 2);
        m.check_canonical().unwrap();
    }

    #[test]
    fn adjacent_inserts_coalesce() {
        let mut m = Mapping::new();
        m.insert(mapped(0x1000, 1, 0x8000));
        m.insert(mapped(0x3000, 1, 0xa000));
        assert_eq!(m.len(), 2);
        // Filling the hole with output-contiguous pages merges all three.
        m.insert(mapped(0x2000, 1, 0x9000));
        assert_eq!(m.len(), 1);
        assert_eq!(m.nr_pages(), 3);
        m.check_canonical().unwrap();
    }

    #[test]
    fn overwrite_splits_ranges() {
        let mut m = Mapping::new();
        m.insert(mapped(0x1000, 4, 0x8000));
        m.insert(annotated(0x2000, 1, OwnerId::HYP));
        assert_eq!(m.len(), 3);
        assert_eq!(
            m.lookup(0x2000),
            Some(MapletTarget::Annotated {
                owner: OwnerId::HYP
            })
        );
        assert_eq!(
            m.lookup(0x3000),
            Some(MapletTarget::Mapped {
                oa: 0xa000,
                attrs: attrs()
            })
        );
        m.check_canonical().unwrap();
    }

    #[test]
    fn remove_middle() {
        let mut m = Mapping::new();
        m.insert(mapped(0x1000, 4, 0x8000));
        m.remove(0x2000, 2);
        assert_eq!(m.nr_pages(), 2);
        assert!(m.lookup(0x2000).is_none());
        assert!(m.lookup(0x1000).is_some());
        assert!(m.lookup(0x4000).is_some());
        m.check_canonical().unwrap();
    }

    #[test]
    fn equality_is_extensional() {
        // Same extension built in different orders compares equal.
        let mut a = Mapping::new();
        a.insert(mapped(0x1000, 1, 0x8000));
        a.insert(mapped(0x2000, 1, 0x9000));
        let mut b = Mapping::new();
        b.insert(mapped(0x1000, 2, 0x8000));
        assert_eq!(a, b);
    }

    #[test]
    fn insert_new_panics_on_overlap() {
        let mut m = Mapping::new();
        m.insert(mapped(0x1000, 2, 0x8000));
        let result = std::panic::catch_unwind(move || {
            m.insert_new(mapped(0x2000, 1, 0xf000));
        });
        assert!(result.is_err());
    }

    #[test]
    fn extend_coalesce_fast_path() {
        let mut m = Mapping::new();
        m.extend_coalesce(mapped(0x1000, 1, 0x8000));
        m.extend_coalesce(mapped(0x2000, 1, 0x9000));
        m.extend_coalesce(mapped(0x4000, 1, 0xb000));
        assert_eq!(m.len(), 2);
        m.check_canonical().unwrap();
    }

    #[test]
    fn diff_reports_disagreements() {
        let mut a = Mapping::new();
        a.insert(mapped(0x1000, 2, 0x8000));
        let mut b = a.clone();
        b.insert(mapped(0x2000, 1, 0xf000)); // changed page
        b.insert(mapped(0x5000, 1, 0x6000)); // added page
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, 0x2000);
        assert!(d[0].1.is_some() && d[0].2.is_some());
        assert_eq!(d[1].0, 0x5000);
        assert!(d[1].1.is_none());
        assert_eq!(a.diff(&a), vec![]);
    }

    #[test]
    fn covers_checks_every_page() {
        let mut m = Mapping::new();
        m.insert(mapped(0x1000, 2, 0x8000));
        m.insert(mapped(0x4000, 1, 0xa000));
        assert!(m.covers(0x1000, 2));
        assert!(!m.covers(0x1000, 3));
        assert!(!m.covers(0x3000, 2));
    }

    #[test]
    fn union_and_subtract() {
        let mut a = Mapping::new();
        a.insert(mapped(0x1000, 2, 0x8000));
        let mut b = Mapping::new();
        b.insert(mapped(0x2000, 2, 0xf000)); // overlaps a's second page
        let u = a.union(&b);
        assert_eq!(u.nr_pages(), 3);
        assert_eq!(
            u.lookup(0x2000),
            Some(MapletTarget::Mapped {
                oa: 0xf000,
                attrs: attrs()
            })
        );
        assert_eq!(
            u.lookup(0x1000),
            Some(MapletTarget::Mapped {
                oa: 0x8000,
                attrs: attrs()
            })
        );
        let s = a.subtract(&b);
        assert_eq!(s.nr_pages(), 1);
        assert!(s.lookup(0x2000).is_none());
        u.check_canonical().unwrap();
        s.check_canonical().unwrap();
        // Identities: m ∪ ∅ = m, m \ m = ∅.
        assert_eq!(a.union(&Mapping::new()), a);
        assert!(a.subtract(&a).is_empty());
    }

    #[test]
    fn annotations_do_not_merge_with_mappings() {
        let mut m = Mapping::new();
        m.insert(annotated(0x1000, 1, OwnerId::HYP));
        m.insert(mapped(0x2000, 1, 0x2000));
        assert_eq!(m.len(), 2);
        m.check_canonical().unwrap();
    }

    /// Reference implementation of splice: remove + repeated insert.
    fn splice_naive(m: &Mapping, ia: u64, nr: u64, rep: &[Maplet]) -> Mapping {
        let mut out = m.clone();
        out.remove(ia, nr);
        for r in rep {
            out.insert(*r);
        }
        out
    }

    #[test]
    fn splice_replaces_a_middle_range_and_recoalesces() {
        let mut m = Mapping::new();
        m.insert(mapped(0x1000, 8, 0x8000));
        // Replace pages [0x3000, 0x5000) with output-contiguous content:
        // the seams coalesce back into a single maplet.
        let rep = vec![mapped(0x3000, 2, 0xa000)];
        let expect = splice_naive(&m, 0x3000, 2, &rep);
        m.splice(0x3000, 2, rep);
        assert_eq!(m, expect);
        assert_eq!(m.len(), 1);
        m.check_canonical().unwrap();
    }

    #[test]
    fn splice_with_different_content_keeps_seams_split() {
        let mut m = Mapping::new();
        m.insert(mapped(0x1000, 8, 0x8000));
        let rep = vec![annotated(0x3000, 1, OwnerId::HYP)];
        let expect = splice_naive(&m, 0x3000, 2, &rep);
        m.splice(0x3000, 2, rep);
        assert_eq!(m, expect);
        // Left part, annotation, hole, right part.
        assert_eq!(m.len(), 3);
        assert!(m.lookup(0x4000).is_none());
        m.check_canonical().unwrap();
    }

    #[test]
    fn splice_empty_replacement_is_remove() {
        let mut m = Mapping::new();
        m.insert(mapped(0x1000, 4, 0x8000));
        let expect = splice_naive(&m, 0x2000, 2, &[]);
        m.splice(0x2000, 2, Vec::new());
        assert_eq!(m, expect);
        assert_eq!(m.nr_pages(), 2);
        m.check_canonical().unwrap();
    }

    #[test]
    fn splice_into_empty_and_at_the_edges() {
        let mut m = Mapping::new();
        m.splice(0x1000, 4, vec![mapped(0x2000, 1, 0x9000)]);
        assert_eq!(m.len(), 1);
        m.check_canonical().unwrap();
        // At the low edge, coalescing with nothing on the left.
        m.splice(0x0, 2, vec![mapped(0x1000, 1, 0x8000)]);
        // At the high edge beyond everything present.
        m.splice(0x10_0000, 2, vec![mapped(0x10_0000, 2, 0xb000)]);
        m.check_canonical().unwrap();
        assert_eq!(m.nr_pages(), 4);
    }

    #[test]
    fn clones_share_storage_until_mutated() {
        let mut a = Mapping::new();
        a.insert(mapped(0x1000, 4, 0x8000));
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.maplets, &b.maplets));
        assert_eq!(a, b);
        // A no-op remove keeps the sharing; a real mutation diverges only
        // the mutated copy.
        a.remove(0x9000, 2);
        assert!(Arc::ptr_eq(&a.maplets, &b.maplets));
        a.insert(annotated(0x2000, 1, OwnerId::HYP));
        assert!(!Arc::ptr_eq(&a.maplets, &b.maplets));
        assert_ne!(a, b);
        assert_eq!(b.nr_pages(), 4);
        assert_eq!(b.len(), 1);
        a.check_canonical().unwrap();
        b.check_canonical().unwrap();
    }

    #[test]
    fn empty_mappings_do_not_allocate_distinct_storage() {
        let a = Mapping::new();
        let b = Mapping::default();
        assert!(Arc::ptr_eq(&a.maplets, &b.maplets));
        assert_eq!(a, b);
    }

    #[test]
    fn splice_zero_pages_is_a_no_op() {
        let mut m = Mapping::new();
        m.insert(mapped(0x1000, 2, 0x8000));
        let before = m.clone();
        m.splice(0x1000, 0, Vec::new());
        assert_eq!(m, before);
    }
}
