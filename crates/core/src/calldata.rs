//! Ghost call data: resolving specification nondeterminism (§4.3).
//!
//! The specification is morally a function of the pre-state, but two kinds
//! of values cannot be computed from it: the implementation's return code
//! (the spec is deliberately loose about `-ENOMEM`), and values the
//! implementation `READ_ONCE`s from memory the host (or a guest) still
//! owns and may be writing concurrently. Both are recorded during the
//! handler's execution and handed to the specification function as its
//! `call` argument.

use pkvm_aarch64::esr::Esr;
use pkvm_aarch64::sysreg::GprFile;

/// Data collected while one exception handler ran.
#[derive(Clone, Debug)]
pub struct GhostCallData {
    /// The hardware thread the trap ran on.
    pub cpu: usize,
    /// The exception syndrome at entry.
    pub esr: Esr,
    /// For aborts: the faulting IPA, when the hardware captured it.
    pub fault_ipa: Option<u64>,
    /// The saved context at entry (argument registers).
    pub regs_pre: GprFile,
    /// The saved context at exit (return registers) — the specification is
    /// parametric on the return value in `x1`.
    pub regs_post: GprFile,
    /// Values the implementation read from host/guest-writable memory,
    /// tagged by read site.
    pub read_onces: Vec<(&'static str, u64)>,
}

impl GhostCallData {
    /// A fresh record for a trap entered with `esr` on `cpu`.
    pub fn new(cpu: usize, esr: Esr, fault_ipa: Option<u64>, regs_pre: GprFile) -> Self {
        Self {
            cpu,
            esr,
            fault_ipa,
            regs_pre,
            regs_post: GprFile::default(),
            read_onces: Vec::new(),
        }
    }

    /// The implementation's return value (host convention: `x1`).
    pub fn ret(&self) -> u64 {
        self.regs_post.get(1)
    }

    /// The first recorded `READ_ONCE` with the given tag.
    pub fn read_once(&self, tag: &str) -> Option<u64> {
        self.read_onces
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_once_lookup_by_tag() {
        let mut c = GhostCallData::new(0, Esr::hvc64(0), None, GprFile::default());
        c.read_onces.push(("init_vm/nr_vcpus", 2));
        c.read_onces.push(("init_vm/protected", 1));
        assert_eq!(c.read_once("init_vm/nr_vcpus"), Some(2));
        assert_eq!(c.read_once("init_vm/protected"), Some(1));
        assert_eq!(c.read_once("missing"), None);
    }

    #[test]
    fn ret_reads_x1_of_exit_context() {
        let mut c = GhostCallData::new(0, Esr::hvc64(0), None, GprFile::default());
        c.regs_post.set(1, (-12i64) as u64);
        assert_eq!(c.ret(), (-12i64) as u64);
    }
}
