//! Unit tests of the specification functions themselves, on synthetic
//! ghost states — no hypervisor involved. These pin down the *functional*
//! reading of each spec: given this pre-state and call data, exactly that
//! post-state.

use pkvm_aarch64::addr::PAGE_SIZE;
use pkvm_aarch64::attrs::{MemType, Perms};
use pkvm_aarch64::esr::Esr;
use pkvm_aarch64::sysreg::GprFile;
use pkvm_ghost::calldata::GhostCallData;
use pkvm_ghost::maplet::{AbsAttrs, Maplet, MapletTarget};
use pkvm_ghost::state::GhostLoadedVcpu;
use pkvm_ghost::{
    compute_post, GhostGlobals, GhostHost, GhostPkvm, GhostState, GhostVcpu, GhostVm, SpecVerdict,
};
use pkvm_hyp::error::Errno;
use pkvm_hyp::hypercalls::*;
use pkvm_hyp::owner::{OwnerId, PageState};

fn globals() -> GhostGlobals {
    GhostGlobals {
        nr_cpus: 2,
        physvirt_offset: 0x8000_0000_0000,
        uart_va: 0x8800_0000_0000,
        hyp_range: (0x47800, 2048),
        ram: vec![(0x4000_0000, 0x800_0000)],
        mmio: vec![(0x900_0000, 0x1000)],
    }
}

/// A pre-state with host + pkvm components and the given hypercall in the
/// CPU 0 context.
fn pre_state(func: u64, args: &[u64]) -> (GhostState, GhostCallData) {
    let g = globals();
    let mut pre = GhostState::blank(&g);
    pre.host = Some(GhostHost::default());
    pre.pkvm = Some(GhostPkvm::default());
    pre.vm_table = Some(Vec::new());
    let mut regs = GprFile::default();
    regs.set(0, func);
    for (i, &a) in args.iter().enumerate() {
        regs.set(i + 1, a);
    }
    pre.locals.entry(0).or_default().regs = regs;
    let call = GhostCallData::new(0, Esr::hvc64(0), None, regs);
    (pre, call)
}

fn run(pre: &GhostState, call: &GhostCallData) -> (SpecVerdict, GhostState) {
    let mut post = GhostState::blank(&pre.globals);
    let v = compute_post(pre, call, &mut post);
    (v, post)
}

#[test]
fn share_spec_computes_both_new_maplets() {
    let (pre, call) = pre_state(HVC_HOST_SHARE_HYP, &[0x40100]);
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    // Fig. 5 step (5): host.shared gains the identity page, pkvm the
    // linear-map page — with exactly the attributes of the paper's diff.
    let host = post.host.as_ref().unwrap();
    assert_eq!(
        host.shared.lookup(0x4010_0000),
        Some(MapletTarget::Mapped {
            oa: 0x4010_0000,
            attrs: AbsAttrs {
                perms: Perms::RWX,
                memtype: MemType::Normal,
                state: Some(PageState::SharedOwned)
            }
        })
    );
    let pkvm = post.pkvm.as_ref().unwrap();
    assert_eq!(
        pkvm.pgt.mapping.lookup(0x8000_4010_0000),
        Some(MapletTarget::Mapped {
            oa: 0x4010_0000,
            attrs: AbsAttrs {
                perms: Perms::RW,
                memtype: MemType::Normal,
                state: Some(PageState::SharedBorrowed)
            }
        })
    );
    // Step (6): x0 scrubbed, x1 = 0.
    assert_eq!(post.read_gpr(0, 0), 0);
    assert_eq!(post.read_gpr(0, 1), 0);
}

#[test]
fn share_spec_rejects_non_memory_and_non_owned() {
    // MMIO pfn.
    let (pre, call) = pre_state(HVC_HOST_SHARE_HYP, &[0x9000]);
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    assert_eq!(Errno::from_ret(post.read_gpr(0, 1)), Some(Errno::EPERM));
    assert!(post.host.is_none(), "error path writes no state components");

    // A page already annotated to the hypervisor.
    let (mut pre, call) = pre_state(HVC_HOST_SHARE_HYP, &[0x40100]);
    pre.host.as_mut().unwrap().annot.insert(Maplet {
        ia: 0x4010_0000,
        nr_pages: 1,
        target: MapletTarget::Annotated {
            owner: OwnerId::HYP,
        },
    });
    let (_, post) = run(&pre, &call);
    assert_eq!(Errno::from_ret(post.read_gpr(0, 1)), Some(Errno::EPERM));
}

#[test]
fn share_spec_is_loose_on_enomem() {
    let (pre, mut call) = pre_state(HVC_HOST_SHARE_HYP, &[0x40100]);
    call.regs_post.set(1, Errno::ENOMEM.to_ret());
    let (v, _) = run(&pre, &call);
    assert!(
        matches!(v, SpecVerdict::Unchecked(_)),
        "ENOMEM is allowed anywhere"
    );
}

#[test]
fn share_spec_detects_linear_map_collision() {
    // Bug-5 shape: the linear VA of the shared page is already mapped.
    let (mut pre, call) = pre_state(HVC_HOST_SHARE_HYP, &[0x40100]);
    pre.pkvm.as_mut().unwrap().pgt.mapping.insert(Maplet {
        ia: globals().hyp_va(0x4010_0000),
        nr_pages: 1,
        target: MapletTarget::Mapped {
            oa: 0x900_0000,
            attrs: AbsAttrs {
                perms: Perms::RW,
                memtype: MemType::Device,
                state: Some(PageState::Owned),
            },
        },
    });
    let (v, _) = run(&pre, &call);
    assert!(matches!(v, SpecVerdict::Impossible(_)), "{v:?}");
}

#[test]
fn unshare_spec_requires_the_matching_pair() {
    // Shared on the host side only: EPERM.
    let (mut pre, call) = pre_state(HVC_HOST_UNSHARE_HYP, &[0x40100]);
    pre.host.as_mut().unwrap().shared.insert(Maplet {
        ia: 0x4010_0000,
        nr_pages: 1,
        target: MapletTarget::Mapped {
            oa: 0x4010_0000,
            attrs: AbsAttrs {
                perms: Perms::RWX,
                memtype: MemType::Normal,
                state: Some(PageState::SharedOwned),
            },
        },
    });
    let (_, post) = run(&pre, &call);
    assert_eq!(Errno::from_ret(post.read_gpr(0, 1)), Some(Errno::EPERM));

    // Both sides present: success, both maplets removed.
    let (mut pre, call) = pre_state(HVC_HOST_UNSHARE_HYP, &[0x40100]);
    pre.host.as_mut().unwrap().shared.insert(Maplet {
        ia: 0x4010_0000,
        nr_pages: 1,
        target: MapletTarget::Mapped {
            oa: 0x4010_0000,
            attrs: AbsAttrs {
                perms: Perms::RWX,
                memtype: MemType::Normal,
                state: Some(PageState::SharedOwned),
            },
        },
    });
    pre.pkvm.as_mut().unwrap().pgt.mapping.insert(Maplet {
        ia: globals().hyp_va(0x4010_0000),
        nr_pages: 1,
        target: MapletTarget::Mapped {
            oa: 0x4010_0000,
            attrs: AbsAttrs {
                perms: Perms::RW,
                memtype: MemType::Normal,
                state: Some(PageState::SharedBorrowed),
            },
        },
    });
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    assert_eq!(post.read_gpr(0, 1), 0);
    assert!(post.host.as_ref().unwrap().shared.is_empty());
    assert!(post.pkvm.as_ref().unwrap().pgt.mapping.is_empty());
}

#[test]
fn reclaim_spec_is_parametric_on_the_return_value() {
    // Same pre-state, two recorded outcomes: both accepted, with the
    // success obliging the annotation removal.
    let build = || {
        let (mut pre, call) = pre_state(HVC_HOST_RECLAIM_PAGE, &[0x40100]);
        pre.host.as_mut().unwrap().annot.insert(Maplet {
            ia: 0x4010_0000,
            nr_pages: 1,
            target: MapletTarget::Annotated {
                owner: OwnerId::guest(0),
            },
        });
        (pre, call)
    };
    let (pre, mut call) = build();
    call.regs_post.set(1, 0);
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    assert!(post.host.as_ref().unwrap().annot.is_empty());

    let (pre, mut call) = build();
    call.regs_post.set(1, Errno::EPERM.to_ret());
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    assert!(post.host.is_none(), "refusal changes nothing");

    // A claimed success on a page that was never guest-owned is impossible.
    let (pre, mut call) = pre_state(HVC_HOST_RECLAIM_PAGE, &[0x40200]);
    call.regs_post.set(1, 0);
    let (v, _) = run(&pre, &call);
    assert!(matches!(v, SpecVerdict::Impossible(_)));
}

fn with_loaded_vcpu(pre: &mut GhostState, handle: u32) {
    let l = pre.locals.get_mut(&0).unwrap();
    l.loaded = Some(GhostLoadedVcpu {
        handle,
        idx: 0,
        regs: GprFile::default(),
        memcache: vec![],
    });
}

#[test]
fn topup_spec_validates_then_donates() {
    // No loaded vCPU.
    let (pre, call) = pre_state(HVC_TOPUP_MEMCACHE, &[0x4030_0000, 2]);
    let (_, post) = run(&pre, &call);
    assert_eq!(Errno::from_ret(post.read_gpr(0, 1)), Some(Errno::ENOENT));

    // Unaligned.
    let (mut pre, call) = pre_state(HVC_TOPUP_MEMCACHE, &[0x4030_0800, 1]);
    with_loaded_vcpu(&mut pre, 0x1000);
    let (_, post) = run(&pre, &call);
    assert_eq!(Errno::from_ret(post.read_gpr(0, 1)), Some(Errno::EINVAL));

    // Oversized.
    let (mut pre, call) = pre_state(HVC_TOPUP_MEMCACHE, &[0x4030_0000, 1 << 20]);
    with_loaded_vcpu(&mut pre, 0x1000);
    let (_, post) = run(&pre, &call);
    assert_eq!(Errno::from_ret(post.read_gpr(0, 1)), Some(Errno::E2BIG));

    // Valid: both components gain the donated range.
    let (mut pre, call) = pre_state(HVC_TOPUP_MEMCACHE, &[0x4030_0000, 2]);
    with_loaded_vcpu(&mut pre, 0x1000);
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    assert_eq!(post.read_gpr(0, 1), 0);
    assert_eq!(
        post.host.as_ref().unwrap().annot.lookup(0x4030_0000),
        Some(MapletTarget::Annotated {
            owner: OwnerId::HYP
        })
    );
    assert_eq!(post.host.as_ref().unwrap().annot.nr_pages(), 2);
    assert!(post
        .pkvm
        .as_ref()
        .unwrap()
        .pgt
        .mapping
        .covers(globals().hyp_va(0x4030_0000), 2));
}

fn vm_in_pre(pre: &mut GhostState, handle: u32, protected: bool) {
    pre.vm_table = Some(vec![(handle, 0)]);
    pre.vms.insert(
        handle,
        GhostVm {
            handle,
            slot: 0,
            protected,
            pgt: Default::default(),
            donated: vec![0x40300, 0x40301],
            firmware: vec![],
            vcpus: vec![GhostVcpu::Present {
                regs: GprFile::default(),
                memcache: vec![0x40500],
            }],
        },
    );
}

#[test]
fn map_guest_spec_donates_or_shares_by_vm_kind() {
    for protected in [true, false] {
        let (mut pre, call) = pre_state(HVC_HOST_MAP_GUEST, &[0x40600, 0x10]);
        with_loaded_vcpu(&mut pre, 0x1000);
        vm_in_pre(&mut pre, 0x1000, protected);
        let (v, post) = run(&pre, &call);
        assert_eq!(v, SpecVerdict::Checked);
        assert_eq!(post.read_gpr(0, 1), 0);
        let host = post.host.as_ref().unwrap();
        let vm = post.vms.get(&0x1000).unwrap();
        if protected {
            assert_eq!(
                host.annot.lookup(0x4060_0000),
                Some(MapletTarget::Annotated {
                    owner: OwnerId::guest(0)
                })
            );
            assert!(matches!(
                vm.pgt.mapping.lookup(0x10 * PAGE_SIZE),
                Some(MapletTarget::Mapped { attrs, .. }) if attrs.state == Some(PageState::Owned)
            ));
        } else {
            assert!(matches!(
                host.shared.lookup(0x4060_0000),
                Some(MapletTarget::Mapped { attrs, .. }) if attrs.state == Some(PageState::SharedOwned)
            ));
            assert!(matches!(
                vm.pgt.mapping.lookup(0x10 * PAGE_SIZE),
                Some(MapletTarget::Mapped { attrs, .. }) if attrs.state == Some(PageState::SharedBorrowed)
            ));
        }
    }
}

#[test]
fn init_vm_spec_computes_the_handle_deterministically() {
    let (mut pre, mut call) = pre_state(HVC_INIT_VM, &[0x40200, 0x40300, 2]);
    // Slot 0 is taken; the spec must predict slot 1, handle 0x1001.
    pre.vm_table = Some(vec![(0x1000, 0)]);
    call.read_onces.push(("init_vm/nr_vcpus", 2));
    call.read_onces.push(("init_vm/protected", 1));
    call.regs_post.set(1, 0x1001);
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    assert_eq!(post.read_gpr(0, 1), 0x1001);
    assert_eq!(
        post.vm_table.as_ref().unwrap(),
        &vec![(0x1000, 0), (0x1001, 1)]
    );
    let vm = post.vms.get(&0x1001).expect("deferred seed for the new VM");
    assert_eq!(vm.vcpus.len(), 2);
    assert!(vm.protected);
    assert_eq!(vm.donated, vec![0x40300, 0x40301]);
}

#[test]
fn teardown_spec_returns_exactly_the_infrastructure_pages() {
    let (mut pre, call) = pre_state(HVC_TEARDOWN_VM, &[0x1000]);
    vm_in_pre(&mut pre, 0x1000, true);
    // The VM also has a stage 2 table footprint and a guest-mapped page.
    {
        let vm = pre.vms.get_mut(&0x1000).unwrap();
        vm.pgt.table_pages.extend([0x40301u64, 0x40700]);
        vm.pgt.mapping.insert(Maplet {
            ia: 0x10 * PAGE_SIZE,
            nr_pages: 1,
            target: MapletTarget::Mapped {
                oa: 0x4080_0000,
                attrs: AbsAttrs {
                    perms: Perms::RWX,
                    memtype: MemType::Normal,
                    state: Some(PageState::Owned),
                },
            },
        });
    }
    // Host annotations for everything the host gave away.
    {
        let host = pre.host.as_mut().unwrap();
        for pfn in [0x40300u64, 0x40301, 0x40500, 0x40700] {
            host.annot.insert(Maplet {
                ia: pfn * PAGE_SIZE,
                nr_pages: 1,
                target: MapletTarget::Annotated {
                    owner: OwnerId::HYP,
                },
            });
        }
        host.annot.insert(Maplet {
            ia: 0x4080_0000,
            nr_pages: 1,
            target: MapletTarget::Annotated {
                owner: OwnerId::guest(0),
            },
        });
        let pkvm = pre.pkvm.as_mut().unwrap();
        for pfn in [0x40300u64, 0x40301, 0x40500, 0x40700] {
            pkvm.pgt.mapping.insert(Maplet {
                ia: globals().hyp_va(pfn * PAGE_SIZE),
                nr_pages: 1,
                target: MapletTarget::Mapped {
                    oa: pfn * PAGE_SIZE,
                    attrs: AbsAttrs {
                        perms: Perms::RW,
                        memtype: MemType::Normal,
                        state: Some(PageState::Owned),
                    },
                },
            });
        }
    }
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    let host = post.host.as_ref().unwrap();
    // Infrastructure pages (donated, memcache, table) return to the host...
    for pfn in [0x40300u64, 0x40301, 0x40500, 0x40700] {
        assert!(
            host.annot.lookup(pfn * PAGE_SIZE).is_none(),
            "pfn {pfn:#x} must return"
        );
    }
    // ...but the guest's memory page stays annotated until reclaim.
    assert_eq!(
        host.annot.lookup(0x4080_0000),
        Some(MapletTarget::Annotated {
            owner: OwnerId::guest(0)
        })
    );
    assert_eq!(post.vm_table.as_ref().unwrap(), &Vec::new());
    assert!(post.pkvm.as_ref().unwrap().pgt.mapping.is_empty());
}

#[test]
fn vcpu_load_and_put_move_the_ghost_vcpu() {
    let (mut pre, call) = pre_state(HVC_VCPU_LOAD, &[0x1000, 0]);
    vm_in_pre(&mut pre, 0x1000, true);
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    assert_eq!(post.read_gpr(0, 1), 0);
    assert!(matches!(
        post.vms.get(&0x1000).unwrap().vcpus[0],
        GhostVcpu::Loaded { on: 0 }
    ));
    let loaded = post.locals.get(&0).unwrap().loaded.as_ref().unwrap();
    assert_eq!(loaded.handle, 0x1000);

    // And back.
    let (mut pre2, call2) = pre_state(HVC_VCPU_PUT, &[]);
    vm_in_pre(&mut pre2, 0x1000, true);
    pre2.vms.get_mut(&0x1000).unwrap().vcpus[0] = GhostVcpu::Loaded { on: 0 };
    let mut regs = GprFile::default();
    regs.set(5, 0x77);
    pre2.locals.get_mut(&0).unwrap().loaded = Some(GhostLoadedVcpu {
        handle: 0x1000,
        idx: 0,
        regs,
        memcache: vec![],
    });
    let (v, post) = run(&pre2, &call2);
    assert_eq!(v, SpecVerdict::Checked);
    assert!(post.locals.get(&0).unwrap().loaded.is_none());
    match &post.vms.get(&0x1000).unwrap().vcpus[0] {
        GhostVcpu::Present { regs, .. } => assert_eq!(regs.get(5), 0x77, "state preserved"),
        other => panic!("expected Present, got {other:?}"),
    }
}

#[test]
fn vcpu_run_spec_follows_the_recorded_guest_step() {
    // WFI.
    let (mut pre, mut call) = pre_state(HVC_VCPU_RUN, &[]);
    with_loaded_vcpu(&mut pre, 0x1000);
    call.read_onces.push(("vcpu_run/op", 0));
    call.read_onces.push(("vcpu_run/ipa", 0));
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    assert_eq!(post.read_gpr(0, 1), exit::WFI);

    // A read of an unmapped gipa: MEM_ABORT with details in x2/x3.
    let (mut pre, mut call) = pre_state(HVC_VCPU_RUN, &[]);
    with_loaded_vcpu(&mut pre, 0x1000);
    vm_in_pre(&mut pre, 0x1000, true);
    pre.vms.get_mut(&0x1000).unwrap().vcpus[0] = GhostVcpu::Loaded { on: 0 };
    call.read_onces.push(("vcpu_run/op", 2));
    call.read_onces.push(("vcpu_run/ipa", 0x20 * PAGE_SIZE));
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    assert_eq!(post.read_gpr(0, 1), exit::MEM_ABORT);
    assert_eq!(post.read_gpr(0, 2), 0x20 * PAGE_SIZE);
    assert_eq!(post.read_gpr(0, 3), 1, "write flag");
}

#[test]
fn reg_access_specs_touch_only_the_thread_local_state() {
    let (mut pre, call) = pre_state(HVC_VCPU_SET_REG, &[4, 0xbeef]);
    with_loaded_vcpu(&mut pre, 0x1000);
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    assert!(post.host.is_none() && post.pkvm.is_none() && post.vms.is_empty());
    assert_eq!(
        post.locals
            .get(&0)
            .unwrap()
            .loaded
            .as_ref()
            .unwrap()
            .regs
            .get(4),
        0xbeef
    );

    let (mut pre, call) = pre_state(HVC_VCPU_GET_REG, &[4]);
    with_loaded_vcpu(&mut pre, 0x1000);
    pre.locals
        .get_mut(&0)
        .unwrap()
        .loaded
        .as_mut()
        .unwrap()
        .regs
        .set(4, 0xf00d);
    let (v, post) = run(&pre, &call);
    assert_eq!(v, SpecVerdict::Checked);
    assert_eq!(post.read_gpr(0, 2), 0xf00d, "value returned in x2");
}

#[test]
fn host_abort_spec_preserves_tracked_state_exactly() {
    let g = globals();
    let mut pre = GhostState::blank(&g);
    let mut host = GhostHost::default();
    host.annot.insert(Maplet {
        ia: 0x4780_0000,
        nr_pages: 4,
        target: MapletTarget::Annotated {
            owner: OwnerId::HYP,
        },
    });
    pre.host = Some(host.clone());
    pre.locals.entry(0).or_default();
    let call = GhostCallData::new(
        0,
        Esr::abort(
            pkvm_aarch64::walk::Access::Read,
            pkvm_aarch64::walk::Fault::Translation { level: 2 },
        ),
        Some(0x4100_0000),
        GprFile::default(),
    );
    let mut post = GhostState::blank(&g);
    let v = compute_post(&pre, &call, &mut post);
    assert_eq!(v, SpecVerdict::Checked);
    assert_eq!(
        post.host.as_ref().unwrap(),
        &host,
        "annot/shared evolve deterministically: unchanged"
    );
}
