//! End-to-end oracle tests: the executable specification checking the
//! live hypervisor, as in the paper's §5.
//!
//! Two families: *clean* runs (every hypercall flow, success and error
//! paths, must produce zero violations — the spec and the implementation
//! agree), and *bug* runs (each re-introduced real or synthetic bug must
//! be flagged).

use std::sync::Arc;

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::walk::Access;
use pkvm_ghost::prelude::*;

use pkvm_hyp::error::Errno;
use pkvm_hyp::faults::{Fault, FaultSet};
use pkvm_hyp::hypercalls::*;
use pkvm_hyp::machine::{Machine, MachineConfig};
use pkvm_hyp::vm::GuestOp;

const PARAMS_PFN: u64 = 0x40200;
const DONATE_PFN: u64 = 0x40300;
const VCPU_PFN: u64 = 0x40310;
const GUEST_PFN: u64 = 0x40400;
const MC_PFN: u64 = 0x40500;
const SHARE_PFN: u64 = 0x40100;

struct Rig {
    machine: Arc<Machine>,
    oracle: Arc<Oracle>,
}

fn boot_with_oracle(faults: FaultSet) -> Rig {
    let config = MachineConfig::default();
    let oracle = Oracle::builder(&config).build();
    let machine = Machine::boot(config, oracle.clone(), Arc::new(faults));
    Rig { machine, oracle }
}

fn assert_clean(r: &Rig) {
    let vs = r.oracle.violations();
    assert!(vs.is_empty(), "unexpected violations:\n{}", render(&vs));
}

fn render(vs: &[Violation]) -> String {
    vs.iter().map(|v| format!("{v}\n")).collect()
}

fn write_params(m: &Machine, nr_vcpus: u64, protected: u64) {
    let pa = PhysAddr::from_pfn(PARAMS_PFN);
    m.mem.write_u64(pa, nr_vcpus).unwrap();
    m.mem.write_u64(pa.wrapping_add(8), protected).unwrap();
}

fn make_vm(r: &Rig, protected: u64) -> u64 {
    write_params(&r.machine, 1, protected);
    let handle = r.machine.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, DONATE_PFN, 2]);
    assert!(
        Errno::from_ret(handle).is_none(),
        "init_vm failed: {handle:#x}"
    );
    assert_eq!(r.machine.hvc(0, HVC_INIT_VCPU, &[handle, 0, VCPU_PFN]), 0);
    handle
}

// ---------------------------------------------------------------- clean --

#[test]
fn boot_matches_the_boot_spec() {
    let r = boot_with_oracle(FaultSet::none());
    assert!(r.oracle.check_boot(), "{}", render(&r.oracle.violations()));
    assert_clean(&r);
}

#[test]
fn share_unshare_cycle_is_clean() {
    let r = boot_with_oracle(FaultSet::none());
    assert_eq!(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN]), 0);
    assert_eq!(r.machine.hvc(0, HVC_HOST_UNSHARE_HYP, &[SHARE_PFN]), 0);
    assert_eq!(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN]), 0);
    assert_clean(&r);
    assert_eq!(r.oracle.verdict().wait().stats().traps_checked, 3);
}

#[test]
fn error_paths_are_specified_too() {
    let r = boot_with_oracle(FaultSet::none());
    // Double share -> EPERM; unshare of unshared -> EPERM; share of MMIO
    // and of the carveout -> EPERM; unknown hypercall -> EOPNOTSUPP.
    assert_eq!(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN]), 0);
    assert_eq!(
        Errno::from_ret(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN])),
        Some(Errno::EPERM)
    );
    assert_eq!(
        Errno::from_ret(r.machine.hvc(0, HVC_HOST_UNSHARE_HYP, &[0x40101])),
        Some(Errno::EPERM)
    );
    assert_eq!(
        Errno::from_ret(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[0x9000])),
        Some(Errno::EPERM)
    );
    let (pool_pfn, _) = r.machine.state.hyp_range;
    assert_eq!(
        Errno::from_ret(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[pool_pfn])),
        Some(Errno::EPERM)
    );
    assert_eq!(
        Errno::from_ret(r.machine.hvc(0, 0xc600_4242, &[1, 2, 3])),
        Some(Errno::EOPNOTSUPP)
    );
    assert_clean(&r);
}

#[test]
fn full_vm_lifecycle_is_clean() {
    let r = boot_with_oracle(FaultSet::none());
    let handle = make_vm(&r, 1);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_LOAD, &[handle, 0]), 0);
    assert_eq!(
        r.machine.hvc(
            0,
            HVC_TOPUP_MEMCACHE,
            &[PhysAddr::from_pfn(MC_PFN).bits(), 8]
        ),
        0
    );
    assert_eq!(r.machine.hvc(0, HVC_HOST_MAP_GUEST, &[GUEST_PFN, 0x10]), 0);
    r.machine
        .push_guest_op(handle as u32, 0, GuestOp::Write(0x10 * PAGE_SIZE, 7))
        .unwrap();
    assert_eq!(r.machine.hvc(0, HVC_VCPU_RUN, &[]), exit::CONTINUE);
    r.machine
        .push_guest_op(handle as u32, 0, GuestOp::Read(0x10 * PAGE_SIZE))
        .unwrap();
    assert_eq!(r.machine.hvc(0, HVC_VCPU_RUN, &[]), exit::CONTINUE);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_RUN, &[]), exit::WFI);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_PUT, &[]), 0);
    assert_eq!(r.machine.hvc(0, HVC_TEARDOWN_VM, &[handle]), 0);
    assert_eq!(r.machine.hvc(0, HVC_HOST_RECLAIM_PAGE, &[GUEST_PFN]), 0);
    assert_clean(&r);
}

#[test]
fn guest_fault_and_guest_shares_are_clean() {
    let r = boot_with_oracle(FaultSet::none());
    let handle = make_vm(&r, 1);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_LOAD, &[handle, 0]), 0);
    assert_eq!(
        r.machine.hvc(
            0,
            HVC_TOPUP_MEMCACHE,
            &[PhysAddr::from_pfn(MC_PFN).bits(), 8]
        ),
        0
    );
    // Guest faults, host maps, guest retries, then shares back and revokes.
    r.machine
        .push_guest_op(handle as u32, 0, GuestOp::Read(0x20 * PAGE_SIZE))
        .unwrap();
    assert_eq!(r.machine.hvc(0, HVC_VCPU_RUN, &[]), exit::MEM_ABORT);
    assert_eq!(r.machine.hvc(0, HVC_HOST_MAP_GUEST, &[GUEST_PFN, 0x20]), 0);
    r.machine
        .push_guest_op(handle as u32, 0, GuestOp::Read(0x20 * PAGE_SIZE))
        .unwrap();
    assert_eq!(r.machine.hvc(0, HVC_VCPU_RUN, &[]), exit::CONTINUE);
    r.machine
        .push_guest_op(handle as u32, 0, GuestOp::HvcShareHost(0x20 * PAGE_SIZE))
        .unwrap();
    assert_eq!(r.machine.hvc(0, HVC_VCPU_RUN, &[]), exit::GUEST_HVC);
    r.machine
        .push_guest_op(handle as u32, 0, GuestOp::HvcUnshareHost(0x20 * PAGE_SIZE))
        .unwrap();
    assert_eq!(r.machine.hvc(0, HVC_VCPU_RUN, &[]), exit::GUEST_HVC);
    assert_clean(&r);
}

#[test]
fn unprotected_vm_share_flow_is_clean() {
    let r = boot_with_oracle(FaultSet::none());
    let handle = make_vm(&r, 0);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_LOAD, &[handle, 0]), 0);
    assert_eq!(
        r.machine.hvc(
            0,
            HVC_TOPUP_MEMCACHE,
            &[PhysAddr::from_pfn(MC_PFN).bits(), 4]
        ),
        0
    );
    assert_eq!(r.machine.hvc(0, HVC_HOST_MAP_GUEST, &[GUEST_PFN, 0x10]), 0);
    assert!(r
        .machine
        .host_access(1, PhysAddr::from_pfn(GUEST_PFN).bits(), Access::Read)
        .is_ok());
    assert_clean(&r);
}

#[test]
fn host_mapping_on_demand_is_clean() {
    let r = boot_with_oracle(FaultSet::none());
    // Plain RAM, MMIO, a denied carveout access, and unbacked space.
    assert!(r.machine.host_access(0, 0x4123_4568, Access::Write).is_ok());
    assert!(r.machine.host_access(1, 0x0900_0008, Access::Read).is_ok());
    let (pool_pfn, _) = r.machine.state.hyp_range;
    assert!(r
        .machine
        .host_access(2, pool_pfn * PAGE_SIZE, Access::Read)
        .is_err());
    assert!(r
        .machine
        .host_access(3, 0x2_0000_0000, Access::Read)
        .is_err());
    assert_clean(&r);
}

#[test]
fn concurrent_shares_across_cpus_are_clean() {
    let r = boot_with_oracle(FaultSet::none());
    let m = &r.machine;
    std::thread::scope(|s| {
        for cpu in 0..m.nr_cpus() {
            let m = Arc::clone(m);
            s.spawn(move || {
                for i in 0..32u64 {
                    let pfn = 0x41000 + cpu as u64 * 0x100 + i;
                    assert_eq!(m.hvc(cpu, HVC_HOST_SHARE_HYP, &[pfn]), 0);
                    assert_eq!(m.hvc(cpu, HVC_HOST_UNSHARE_HYP, &[pfn]), 0);
                }
            });
        }
    });
    assert_clean(&r);
}

#[test]
fn concurrent_mixed_workload_is_clean() {
    let r = boot_with_oracle(FaultSet::none());
    let m = &r.machine;
    std::thread::scope(|s| {
        // CPU 0: VM lifecycle; others: shares and host faults.
        {
            let m = Arc::clone(m);
            s.spawn(move || {
                write_params(&m, 1, 1);
                let h = m.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, DONATE_PFN, 2]);
                assert!(Errno::from_ret(h).is_none());
                assert_eq!(m.hvc(0, HVC_INIT_VCPU, &[h, 0, VCPU_PFN]), 0);
                assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[h, 0]), 0);
                assert_eq!(
                    m.hvc(
                        0,
                        HVC_TOPUP_MEMCACHE,
                        &[PhysAddr::from_pfn(MC_PFN).bits(), 8]
                    ),
                    0
                );
                assert_eq!(m.hvc(0, HVC_HOST_MAP_GUEST, &[GUEST_PFN, 0x10]), 0);
                assert_eq!(m.hvc(0, HVC_VCPU_PUT, &[]), 0);
                assert_eq!(m.hvc(0, HVC_TEARDOWN_VM, &[h]), 0);
            });
        }
        for cpu in 1..m.nr_cpus() {
            let m = Arc::clone(m);
            s.spawn(move || {
                for i in 0..16u64 {
                    let pfn = 0x42000 + cpu as u64 * 0x100 + i;
                    assert_eq!(m.hvc(cpu, HVC_HOST_SHARE_HYP, &[pfn]), 0);
                    let _ = m.host_access(
                        cpu,
                        (0x43000 + cpu as u64 * 0x100 + i) * PAGE_SIZE,
                        Access::Read,
                    );
                    assert_eq!(m.hvc(cpu, HVC_HOST_UNSHARE_HYP, &[pfn]), 0);
                }
            });
        }
    });
    assert_clean(&r);
}

// ----------------------------------------------------------------- bugs --

fn expect_violation(r: &Rig, what: &str) {
    let vs = r.oracle.violations();
    assert!(!vs.is_empty(), "oracle missed the injected bug ({what})");
}

#[test]
fn catches_syn_share_wrong_state() {
    let faults = FaultSet::none();
    faults.inject(Fault::SynShareWrongState);
    let r = boot_with_oracle(faults);
    assert_eq!(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN]), 0);
    expect_violation(&r, "share marks host side Owned instead of SharedOwned");
}

#[test]
fn catches_syn_share_hyp_exec() {
    let faults = FaultSet::none();
    faults.inject(Fault::SynShareHypExec);
    let r = boot_with_oracle(faults);
    assert_eq!(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN]), 0);
    expect_violation(&r, "share maps page executable in pKVM stage 1");
}

#[test]
fn catches_syn_unshare_keeps_hyp_mapping() {
    let faults = FaultSet::none();
    faults.inject(Fault::SynUnshareKeepsHypMapping);
    let r = boot_with_oracle(faults);
    assert_eq!(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN]), 0);
    assert_eq!(r.machine.hvc(0, HVC_HOST_UNSHARE_HYP, &[SHARE_PFN]), 0);
    expect_violation(&r, "unshare leaves the borrowed mapping in place");
}

#[test]
fn catches_syn_share_skips_check() {
    let faults = FaultSet::none();
    faults.inject(Fault::SynShareSkipsCheck);
    let r = boot_with_oracle(faults);
    assert_eq!(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN]), 0);
    r.oracle.clear_violations(); // first share is coincidentally legal
    assert_eq!(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN]), 0);
    expect_violation(&r, "double share accepted");
}

#[test]
fn catches_syn_donate_wrong_owner() {
    let faults = FaultSet::none();
    faults.inject(Fault::SynDonateWrongOwner);
    let r = boot_with_oracle(faults);
    let handle = make_vm(&r, 1);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_LOAD, &[handle, 0]), 0);
    assert_eq!(
        r.machine.hvc(
            0,
            HVC_TOPUP_MEMCACHE,
            &[PhysAddr::from_pfn(MC_PFN).bits(), 8]
        ),
        0
    );
    assert_eq!(r.machine.hvc(0, HVC_HOST_MAP_GUEST, &[GUEST_PFN, 0x10]), 0);
    expect_violation(&r, "donation annotates the wrong owner id");
}

#[test]
fn catches_syn_vcpu_put_leak() {
    let faults = FaultSet::none();
    faults.inject(Fault::SynVcpuPutLeak);
    let r = boot_with_oracle(faults);
    let handle = make_vm(&r, 1);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_LOAD, &[handle, 0]), 0);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_PUT, &[]), 0);
    expect_violation(&r, "vcpu_put leaves the slot marked loaded");
}

#[test]
fn catches_syn_teardown_skips_reclaim() {
    let faults = FaultSet::none();
    faults.inject(Fault::SynTeardownSkipsUnmap);
    let r = boot_with_oracle(faults);
    let handle = make_vm(&r, 1);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_LOAD, &[handle, 0]), 0);
    assert_eq!(
        r.machine.hvc(
            0,
            HVC_TOPUP_MEMCACHE,
            &[PhysAddr::from_pfn(MC_PFN).bits(), 8]
        ),
        0
    );
    assert_eq!(r.machine.hvc(0, HVC_HOST_MAP_GUEST, &[GUEST_PFN, 0x10]), 0);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_PUT, &[]), 0);
    assert_eq!(r.machine.hvc(0, HVC_TEARDOWN_VM, &[handle]), 0);
    expect_violation(
        &r,
        "teardown returns guest pages without the reclaim protocol",
    );
}

#[test]
fn catches_syn_host_map_off_by_one() {
    let faults = FaultSet::none();
    faults.inject(Fault::SynHostMapOffByOne);
    let r = boot_with_oracle(faults);
    // Fault on the page just below the carveout: the off-by-one extension
    // maps the first hyp-owned page into the host.
    let (pool_pfn, _) = r.machine.state.hyp_range;
    let _ = r
        .machine
        .host_access(0, (pool_pfn - 1) * PAGE_SIZE, Access::Read);
    expect_violation(&r, "host fault handler maps one page too many");
}

#[test]
fn catches_bug1_memcache_alignment() {
    let faults = FaultSet::none();
    faults.inject(Fault::Bug1MemcacheAlignment);
    let r = boot_with_oracle(faults);
    let handle = make_vm(&r, 1);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_LOAD, &[handle, 0]), 0);
    // Unaligned donation "succeeds" under the bug.
    assert_eq!(
        r.machine.hvc(
            0,
            HVC_TOPUP_MEMCACHE,
            &[PhysAddr::from_pfn(MC_PFN).bits() + 0x800, 1]
        ),
        0
    );
    expect_violation(&r, "unaligned memcache top-up accepted");
}

#[test]
fn catches_bug2_memcache_size() {
    let faults = FaultSet::none();
    faults.inject(Fault::Bug2MemcacheSize);
    let r = boot_with_oracle(faults);
    let handle = make_vm(&r, 1);
    assert_eq!(r.machine.hvc(0, HVC_VCPU_LOAD, &[handle, 0]), 0);
    // 0x10000 truncates to 0 through the narrow type: "success".
    assert_eq!(
        r.machine.hvc(
            0,
            HVC_TOPUP_MEMCACHE,
            &[PhysAddr::from_pfn(MC_PFN).bits(), 0x1_0000]
        ),
        0
    );
    expect_violation(&r, "oversized memcache top-up accepted");
}

#[test]
fn catches_bug3_vcpu_load_race() {
    let faults = FaultSet::none();
    faults.inject(Fault::Bug3VcpuLoadRace);
    let r = boot_with_oracle(faults);
    write_params(&r.machine, 2, 1);
    let handle = r.machine.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, DONATE_PFN, 2]);
    assert_eq!(r.machine.hvc(0, HVC_INIT_VCPU, &[handle, 0, VCPU_PFN]), 0);
    // Loading the never-initialised vCPU 1 "succeeds" under the bug.
    assert_eq!(r.machine.hvc(0, HVC_VCPU_LOAD, &[handle, 1]), 0);
    expect_violation(&r, "load of an uninitialised vCPU accepted");
}

#[test]
fn catches_bug4_host_fault_race_panic() {
    let faults = FaultSet::none();
    faults.inject(Fault::Bug4HostFaultRace);
    let r = boot_with_oracle(faults);
    // Host stage 1 in host memory; the racing host zaps it mid-fault.
    use pkvm_aarch64::attrs::{Attrs, Perms, Stage};
    use pkvm_aarch64::desc::Pte;
    let s1_root = PhysAddr::new(0x4060_0000);
    let l1 = PhysAddr::new(0x4060_1000);
    let l2 = PhysAddr::new(0x4060_2000);
    let l3 = PhysAddr::new(0x4060_3000);
    r.machine.mem.write_pte(s1_root, 0, Pte::table(l1)).unwrap();
    r.machine.mem.write_pte(l1, 0, Pte::table(l2)).unwrap();
    r.machine.mem.write_pte(l2, 0, Pte::table(l3)).unwrap();
    r.machine
        .mem
        .write_pte(
            l3,
            0,
            Pte::leaf(
                Stage::Stage1,
                3,
                PhysAddr::new(0x4070_0000),
                Attrs::normal(Perms::RWX),
            ),
        )
        .unwrap();
    r.machine.register_host_s1(s1_root);
    let _ = r.machine.host_access_via_s1(0, 0, Access::Read, || {
        r.machine.mem.write_pte(l3, 0, Pte::invalid()).unwrap();
    });
    assert!(r.machine.panicked().is_some());
    let vs = r.oracle.violations();
    assert!(
        vs.iter().any(|v| matches!(v, Violation::HypPanic { .. })),
        "oracle missed the hypervisor panic: {}",
        render(&vs)
    );
}

#[test]
fn catches_bug5_linear_map_overlap() {
    let faults = Arc::new(FaultSet::none());
    faults.inject(Fault::Bug5LinearMapOverlap);
    let config = MachineConfig::huge_dram();
    let oracle = Oracle::builder(&config).build();
    let machine = Machine::boot(config, oracle.clone(), faults);
    // The boot check compares against the *correct* layout and flags the
    // misplaced UART mapping.
    assert!(!oracle.check_boot(), "boot check missed the layout overlap");
    // And sharing the aliased page trips the spec's collision detection.
    oracle.clear_violations();
    let aliased_pfn =
        (machine.state.layout.uart_va.bits() - machine.state.layout.physvirt_offset) / PAGE_SIZE;
    let _ = machine.hvc(0, HVC_HOST_SHARE_HYP, &[aliased_pfn]);
    assert!(
        !oracle.is_clean(),
        "oracle missed the linear-map/IO aliasing on share"
    );
}

#[test]
fn clean_huge_dram_passes_boot_check() {
    let config = MachineConfig::huge_dram();
    let oracle = Oracle::builder(&config).build();
    let _machine = Machine::boot(config, oracle.clone(), Arc::new(FaultSet::none()));
    assert!(oracle.check_boot(), "{}", render(&oracle.violations()));
}

#[test]
fn trap_trace_records_outcomes() {
    let r = boot_with_oracle(FaultSet::none());
    assert_eq!(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN]), 0);
    assert_eq!(r.machine.hvc(0, HVC_HOST_UNSHARE_HYP, &[SHARE_PFN]), 0);
    let _ = r.machine.hvc(0, 0xc600_9999, &[]);
    let trace = r.oracle.trace();
    let names: Vec<&str> = trace.iter().map(|t| t.name.as_str()).collect();
    assert_eq!(names, vec!["host_share_hyp", "host_unshare_hyp", "unknown"]);
    assert!(trace.iter().all(|t| t.outcome == TrapOutcome::Clean));
    // A violated trap shows up as such.
    r.machine.faults.inject(Fault::SynShareWrongState);
    let _ = r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN]);
    let last = r.oracle.trace().pop().unwrap();
    assert!(matches!(last.outcome, TrapOutcome::Violated(_)), "{last:?}");
}

#[test]
fn noninterference_check_catches_silent_table_edits() {
    let r = boot_with_oracle(FaultSet::none());
    assert_eq!(r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN]), 0);
    // Corrupt the host's stage 2 behind the hypervisor's back (no lock
    // held): flip the shared page's software state bits.
    let host_root = r.machine.state.host_pgt.lock().root;
    let pgt = pkvm_hyp::pgtable::KvmPgtable {
        root: host_root,
        stage: pkvm_aarch64::attrs::Stage::Stage2,
    };
    let (pte, level) = pkvm_hyp::pgtable::get_leaf(&r.machine.mem, &pgt, SHARE_PFN * PAGE_SIZE);
    assert_eq!(level, 3);
    // Find the table holding the leaf by re-walking manually: easiest is
    // to rewrite through a fresh walk of the table tree.
    let mut table = host_root;
    for lvl in 0..3u8 {
        let idx = pkvm_aarch64::addr::ia_index(SHARE_PFN * PAGE_SIZE, lvl);
        let e = r.machine.mem.read_pte(table, idx).unwrap();
        table = e.table_addr();
    }
    let idx = pkvm_aarch64::addr::ia_index(SHARE_PFN * PAGE_SIZE, 3);
    r.machine.mem.write_pte(table, idx, pte.with_sw(0)).unwrap();
    // The next acquisition of the host lock must flag the interference.
    let _ = r.machine.hvc(0, HVC_HOST_SHARE_HYP, &[SHARE_PFN + 1]);
    let vs = r.oracle.violations();
    assert!(
        vs.iter()
            .any(|v| matches!(v, Violation::NonInterference { .. })),
        "non-interference check missed the edit: {}",
        render(&vs)
    );
}
