//! Minimal `parking_lot`-style synchronisation primitives over `std::sync`.
//!
//! The workspace builds in hermetic environments with no crates.io access,
//! so the locks the simulation needs are provided in-tree. The API mirrors
//! the subset of `parking_lot` the codebase uses: `lock()` / `read()` /
//! `write()` return guards directly (no poisoning — a panic while a lock
//! is held is already a test failure; subsequent accesses should observe
//! the state, not a `PoisonError`).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// The guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// The guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
