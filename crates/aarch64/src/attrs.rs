//! Architecture-visible attributes of a translation-table leaf entry.
//!
//! These are the *decoded* forms: memory type, access permissions, and the
//! software-defined bits that the architecture reserves for system software
//! (pKVM uses them to encode logical page ownership, see `pkvm-hyp`).

use core::fmt;

/// Which stage of translation a table implements.
///
/// pKVM manages one *stage 1* table (its own EL2 mapping) and several
/// *stage 2* tables (one for the host, one per guest). The two stages use
/// different descriptor attribute encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Single-stage EL2 translation (pKVM's own mapping).
    Stage1,
    /// Second-stage translation (host and guest IPA to PA).
    Stage2,
}

/// Access permissions of a mapping, decoded from AP/S2AP and XN bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Read permission.
    pub r: bool,
    /// Write permission.
    pub w: bool,
    /// Execute permission.
    pub x: bool,
}

impl Perms {
    /// Read-write-execute.
    pub const RWX: Self = Self {
        r: true,
        w: true,
        x: true,
    };
    /// Read-write, no execute.
    pub const RW: Self = Self {
        r: true,
        w: true,
        x: false,
    };
    /// Read-execute, no write.
    pub const RX: Self = Self {
        r: true,
        w: false,
        x: true,
    };
    /// Read-only.
    pub const R: Self = Self {
        r: true,
        w: false,
        x: false,
    };
    /// No access (used only transiently).
    pub const NONE: Self = Self {
        r: false,
        w: false,
        x: false,
    };

    /// Returns `true` if `self` allows everything `other` allows.
    #[inline]
    pub const fn allows(self, other: Self) -> bool {
        (self.r || !other.r) && (self.w || !other.w) && (self.x || !other.x)
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.r { 'R' } else { '-' },
            if self.w { 'W' } else { '-' },
            if self.x { 'X' } else { '-' }
        )
    }
}

/// Memory type of a mapping: cacheable normal memory or device memory.
///
/// In the Android/pKVM configuration only these two MAIR attribute entries
/// are used, so the full 8-entry MAIR indirection collapses to a boolean.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemType {
    /// Normal write-back cacheable memory.
    Normal,
    /// Device-nGnRE memory (MMIO).
    Device,
}

impl fmt::Display for MemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemType::Normal => write!(f, "M"),
            MemType::Device => write!(f, "D"),
        }
    }
}

/// The MAIR_EL2 attribute index used for normal memory (stage 1).
pub const MT_NORMAL_IDX: u64 = 0;
/// The MAIR_EL2 attribute index used for device memory (stage 1).
pub const MT_DEVICE_IDX: u64 = 1;

/// The stage 2 MemAttr field encoding for normal write-back memory.
pub const S2_MEMATTR_NORMAL: u64 = 0b1111;
/// The stage 2 MemAttr field encoding for device-nGnRE memory.
pub const S2_MEMATTR_DEVICE: u64 = 0b0001;

/// Fully decoded leaf attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Attrs {
    /// Access permissions.
    pub perms: Perms,
    /// Memory type.
    pub memtype: MemType,
    /// Software-defined bits (PTE bits \[58:55\]); pKVM stores the logical
    /// page state here.
    pub sw: u8,
}

impl Attrs {
    /// Attributes for normal memory with the given permissions and no
    /// software bits set.
    #[inline]
    pub const fn normal(perms: Perms) -> Self {
        Self {
            perms,
            memtype: MemType::Normal,
            sw: 0,
        }
    }

    /// Attributes for device memory with the given permissions.
    #[inline]
    pub const fn device(perms: Perms) -> Self {
        Self {
            perms,
            memtype: MemType::Device,
            sw: 0,
        }
    }

    /// Returns a copy with the software bits replaced.
    #[inline]
    pub const fn with_sw(mut self, sw: u8) -> Self {
        self.sw = sw;
        self
    }
}

impl fmt::Display for Attrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} sw={}", self.perms, self.memtype, self.sw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perms_allows_is_a_partial_order() {
        assert!(Perms::RWX.allows(Perms::RW));
        assert!(Perms::RWX.allows(Perms::RWX));
        assert!(!Perms::RW.allows(Perms::RWX));
        assert!(!Perms::R.allows(Perms::RW));
        assert!(Perms::R.allows(Perms::NONE));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Perms::RWX.to_string(), "RWX");
        assert_eq!(Perms::RW.to_string(), "RW-");
        assert_eq!(Attrs::normal(Perms::RX).to_string(), "R-X M sw=0");
    }

    #[test]
    fn with_sw_preserves_other_fields() {
        let a = Attrs::device(Perms::RW).with_sw(2);
        assert_eq!(a.memtype, MemType::Device);
        assert_eq!(a.perms, Perms::RW);
        assert_eq!(a.sw, 2);
    }
}
