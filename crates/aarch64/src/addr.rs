//! Address types and page arithmetic for the simulated Arm-A machine.
//!
//! Three address spaces appear in pKVM, mirroring the Arm-A VMSAv8-64
//! architecture:
//!
//! - *physical addresses* ([`PhysAddr`]) index the simulated physical memory;
//! - *intermediate-physical addresses* ([`Ipa`]) are the input addresses of a
//!   stage 2 translation (the "guest-physical" addresses of the host kernel
//!   or of a guest VM);
//! - *virtual addresses* ([`VirtAddr`]) are the input addresses of pKVM's own
//!   single-stage (stage 1) translation at EL2.
//!
//! All three are `u64` newtypes so that the hypervisor and the ghost
//! specification cannot accidentally mix address spaces — one of the classic
//! sources of hypervisor bugs.

use core::fmt;

/// Log2 of the translation granule (4 KiB pages).
pub const PAGE_SHIFT: u64 = 12;
/// The translation granule size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Byte mask covering the offset-within-page bits.
pub const PAGE_MASK: u64 = PAGE_SIZE - 1;
/// Number of 8-byte translation-table entries per 4 KiB table.
pub const PTES_PER_TABLE: u64 = 512;
/// Number of bits resolved per translation level.
pub const BITS_PER_LEVEL: u64 = 9;
/// Size of the output-address space modelled (48-bit OA).
pub const PA_BITS: u64 = 48;
/// Maximum representable physical address + 1.
pub const PA_LIMIT: u64 = 1 << PA_BITS;

/// Translation-table levels used in the Android/pKVM configuration:
/// a 4-level, 4 KiB-granule table walks levels 0 through 3.
pub const START_LEVEL: u8 = 0;
/// The final (leaf-only) level of a 4-level walk.
pub const LEAF_LEVEL: u8 = 3;

/// Returns the bit position of the least-significant input-address bit
/// resolved *below* `level`, i.e. the size shift of a region mapped by one
/// entry at `level`.
///
/// Level 3 entries map 4 KiB (`shift 12`), level 2 map 2 MiB, level 1 map
/// 1 GiB, level 0 map 512 GiB.
#[inline]
pub const fn level_shift(level: u8) -> u64 {
    PAGE_SHIFT + BITS_PER_LEVEL * (LEAF_LEVEL - level) as u64
}

/// Size in bytes of the region covered by a single entry at `level`.
#[inline]
pub const fn level_size(level: u8) -> u64 {
    1 << level_shift(level)
}

/// Number of 4 KiB pages covered by a single entry at `level`.
#[inline]
pub const fn level_pages(level: u8) -> u64 {
    1 << (level_shift(level) - PAGE_SHIFT)
}

/// Extracts the table index for `level` from input address `ia`.
#[inline]
pub const fn ia_index(ia: u64, level: u8) -> usize {
    ((ia >> level_shift(level)) & (PTES_PER_TABLE - 1)) as usize
}

/// Returns `true` if `addr` is 4 KiB aligned.
#[inline]
pub const fn is_page_aligned(addr: u64) -> bool {
    addr & PAGE_MASK == 0
}

/// Rounds `addr` down to a 4 KiB boundary.
#[inline]
pub const fn page_align_down(addr: u64) -> u64 {
    addr & !PAGE_MASK
}

/// Rounds `addr` up to a 4 KiB boundary (saturating at `u64::MAX & !PAGE_MASK`).
#[inline]
pub const fn page_align_up(addr: u64) -> u64 {
    page_align_down(addr.saturating_add(PAGE_MASK))
}

macro_rules! addr_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit address.
            #[inline]
            pub const fn new(bits: u64) -> Self {
                Self(bits)
            }

            /// The raw 64-bit address.
            #[inline]
            pub const fn bits(self) -> u64 {
                self.0
            }

            /// The 4 KiB frame number of this address.
            #[inline]
            pub const fn pfn(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// Constructs the address of the start of frame `pfn`.
            #[inline]
            pub const fn from_pfn(pfn: u64) -> Self {
                Self(pfn << PAGE_SHIFT)
            }

            /// The offset of this address within its 4 KiB page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & PAGE_MASK
            }

            /// Returns `true` if this address is 4 KiB aligned.
            #[inline]
            pub const fn is_page_aligned(self) -> bool {
                is_page_aligned(self.0)
            }

            /// This address rounded down to its page base.
            #[inline]
            pub const fn page_base(self) -> Self {
                Self(page_align_down(self.0))
            }

            /// Checked addition of a byte offset.
            #[inline]
            pub fn checked_add(self, rhs: u64) -> Option<Self> {
                self.0.checked_add(rhs).map(Self)
            }

            /// Wrapping addition of a byte offset.
            #[inline]
            pub const fn wrapping_add(self, rhs: u64) -> Self {
                Self(self.0.wrapping_add(rhs))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

addr_type! {
    /// A physical address: the output of the final stage of translation,
    /// indexing simulated physical memory.
    PhysAddr
}

addr_type! {
    /// An intermediate-physical address: the input of a stage 2 translation.
    ///
    /// For the host's stage 2 the IPA space is identity-related to physical
    /// memory; for guests it is an independent "guest-physical" space.
    Ipa
}

addr_type! {
    /// A virtual address: the input of pKVM's own stage 1 translation at EL2.
    VirtAddr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_shifts_match_vmsav8() {
        assert_eq!(level_shift(3), 12);
        assert_eq!(level_shift(2), 21);
        assert_eq!(level_shift(1), 30);
        assert_eq!(level_shift(0), 39);
    }

    #[test]
    fn level_sizes() {
        assert_eq!(level_size(3), 4 << 10);
        assert_eq!(level_size(2), 2 << 20);
        assert_eq!(level_size(1), 1 << 30);
        assert_eq!(level_pages(3), 1);
        assert_eq!(level_pages(2), 512);
        assert_eq!(level_pages(1), 512 * 512);
    }

    #[test]
    fn index_extraction() {
        // An address with distinct per-level index fields.
        let ia = (1u64 << 39) | (2 << 30) | (3 << 21) | (4 << 12) | 0x123;
        assert_eq!(ia_index(ia, 0), 1);
        assert_eq!(ia_index(ia, 1), 2);
        assert_eq!(ia_index(ia, 2), 3);
        assert_eq!(ia_index(ia, 3), 4);
    }

    #[test]
    fn alignment_helpers() {
        assert!(is_page_aligned(0));
        assert!(is_page_aligned(0x1000));
        assert!(!is_page_aligned(0x1001));
        assert_eq!(page_align_down(0x1fff), 0x1000);
        assert_eq!(page_align_up(0x1001), 0x2000);
        assert_eq!(page_align_up(0x1000), 0x1000);
    }

    #[test]
    fn addr_newtypes_do_not_mix() {
        let p = PhysAddr::new(0x8000_1000);
        assert_eq!(p.pfn(), 0x80001);
        assert_eq!(PhysAddr::from_pfn(p.pfn()), p.page_base());
        assert_eq!(p.page_offset(), 0);
        let v = VirtAddr::new(0x8000_1234);
        assert_eq!(v.page_base().bits(), 0x8000_1000);
        assert_eq!(v.page_offset(), 0x234);
    }

    #[test]
    fn checked_add_saturates_properly() {
        let p = PhysAddr::new(u64::MAX - 4);
        assert!(p.checked_add(8).is_none());
        assert_eq!(p.checked_add(4), Some(PhysAddr::new(u64::MAX)));
    }
}
