//! VMSAv8-64 translation-table descriptor encoding and decoding.
//!
//! Translation tables are stored in simulated physical memory as arrays of
//! little-endian 64-bit descriptors in the real Arm-A format (4 KiB granule,
//! 48-bit output addresses). Both the "hardware" walk ([`mod@crate::walk`]) and
//! the ghost abstraction function in `pkvm-ghost` interpret these bits, so
//! the encoding here is the single point of truth for the architecture
//! representation that the paper's specification abstracts from.

use crate::addr::{level_shift, PhysAddr, LEAF_LEVEL, PAGE_SHIFT};
use crate::attrs::{
    Attrs, MemType, Perms, Stage, MT_DEVICE_IDX, MT_NORMAL_IDX, S2_MEMATTR_DEVICE,
    S2_MEMATTR_NORMAL,
};

/// Bit 0: descriptor is valid.
const PTE_VALID: u64 = 1 << 0;
/// Bit 1: at levels 0-2 selects table (1) vs block (0); at level 3 must be 1
/// for a page descriptor.
const PTE_TYPE_TABLE_OR_PAGE: u64 = 1 << 1;

/// Output/next-table address field, bits \[47:12\].
const PTE_ADDR_MASK: u64 = ((1u64 << 48) - 1) & !((1 << PAGE_SHIFT) - 1);

/// Stage 1 lower attributes.
const S1_ATTRIDX_SHIFT: u64 = 2; // AttrIndx[2:0] at bits [4:2]
const S1_ATTRIDX_MASK: u64 = 0b111 << S1_ATTRIDX_SHIFT;
const S1_AP_RDONLY: u64 = 1 << 7; // AP[2]: read-only when set
const S1_SH_INNER: u64 = 0b11 << 8;
const S1_AF: u64 = 1 << 10;
const S1_XN: u64 = 1 << 54;

/// Stage 2 lower attributes.
const S2_MEMATTR_SHIFT: u64 = 2; // MemAttr[3:0] at bits [5:2]
const S2_MEMATTR_MASK: u64 = 0b1111 << S2_MEMATTR_SHIFT;
const S2AP_R: u64 = 1 << 6;
const S2AP_W: u64 = 1 << 7;
const S2_SH_INNER: u64 = 0b11 << 8;
const S2_AF: u64 = 1 << 10;
const S2_XN: u64 = 1 << 54;

/// Software-defined bits \[58:55\], ignored by hardware.
const PTE_SW_SHIFT: u64 = 55;
const PTE_SW_MASK: u64 = 0b1111 << PTE_SW_SHIFT;

/// Owner annotation stored by pKVM in *invalid* descriptors, bits \[9:2\]
/// (mirrors `KVM_INVALID_PTE_OWNER_MASK` in the pKVM sources).
const PTE_INVALID_OWNER_SHIFT: u64 = 2;
const PTE_INVALID_OWNER_MASK: u64 = 0xff << PTE_INVALID_OWNER_SHIFT;

/// The architectural kind of a descriptor, as a function of its bits *and*
/// the level at which it was found (the same bits mean different things at
/// different levels).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// Invalid descriptor: the input-address range is unmapped. May carry a
    /// software owner annotation.
    Invalid,
    /// Pointer to a next-level table (levels 0-2 only).
    Table,
    /// Block mapping (levels 1-2 only): maps a 1 GiB or 2 MiB region.
    Block,
    /// Page mapping (level 3 only): maps one 4 KiB page.
    Page,
    /// An encoding reserved by the architecture (e.g. a block at level 0, or
    /// bit 1 clear at level 3). Hardware treats these as faults.
    Reserved,
}

/// A raw 64-bit translation-table descriptor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(pub u64);

impl Pte {
    /// An all-zero invalid descriptor.
    pub const ZERO: Self = Self(0);

    /// Returns the raw bits.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Returns `true` if the valid bit is set.
    #[inline]
    pub const fn is_valid(self) -> bool {
        self.0 & PTE_VALID != 0
    }

    /// Classifies this descriptor at the given level, following the
    /// VMSAv8-64 decode rules for the 4 KiB granule.
    pub const fn kind(self, level: u8) -> EntryKind {
        if !self.is_valid() {
            return EntryKind::Invalid;
        }
        let table_or_page = self.0 & PTE_TYPE_TABLE_OR_PAGE != 0;
        if level == LEAF_LEVEL {
            if table_or_page {
                EntryKind::Page
            } else {
                EntryKind::Reserved
            }
        } else if table_or_page {
            EntryKind::Table
        } else if level == 0 {
            // 4 KiB granule has no level 0 blocks.
            EntryKind::Reserved
        } else {
            EntryKind::Block
        }
    }

    /// Builds an invalid descriptor with no annotation.
    #[inline]
    pub const fn invalid() -> Self {
        Self::ZERO
    }

    /// Builds an invalid descriptor carrying a software owner annotation
    /// (pKVM records the logical owner of unmapped-but-owned ranges here).
    #[inline]
    pub const fn invalid_with_owner(owner: u8) -> Self {
        Self((owner as u64) << PTE_INVALID_OWNER_SHIFT)
    }

    /// Reads the owner annotation of an invalid descriptor.
    #[inline]
    pub const fn invalid_owner(self) -> u8 {
        ((self.0 & PTE_INVALID_OWNER_MASK) >> PTE_INVALID_OWNER_SHIFT) as u8
    }

    /// Builds a table descriptor pointing at the next-level table `next`.
    ///
    /// # Panics
    ///
    /// Panics if `next` is not page aligned (table addresses are 4 KiB
    /// aligned by construction in the architecture).
    #[inline]
    pub fn table(next: PhysAddr) -> Self {
        assert!(next.is_page_aligned(), "table address must be page aligned");
        Self(next.bits() & PTE_ADDR_MASK | PTE_VALID | PTE_TYPE_TABLE_OR_PAGE)
    }

    /// The next-level table address of a table descriptor.
    #[inline]
    pub const fn table_addr(self) -> PhysAddr {
        PhysAddr::new(self.0 & PTE_ADDR_MASK)
    }

    /// Builds a leaf descriptor (page at level 3, block at levels 1-2)
    /// mapping to output address `oa` with the given decoded attributes,
    /// encoded for `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `oa` is not aligned to the block/page size of `level`, or
    /// if `level` cannot hold a leaf.
    pub fn leaf(stage: Stage, level: u8, oa: PhysAddr, attrs: Attrs) -> Self {
        let shift = level_shift(level);
        assert!(
            (1..=LEAF_LEVEL).contains(&level),
            "no leaf descriptors at level {level}"
        );
        assert!(
            oa.bits() & ((1 << shift) - 1) == 0,
            "leaf OA misaligned for level"
        );
        let mut bits = (oa.bits() & PTE_ADDR_MASK) | PTE_VALID;
        if level == LEAF_LEVEL {
            bits |= PTE_TYPE_TABLE_OR_PAGE;
        }
        bits |= ((attrs.sw as u64) << PTE_SW_SHIFT) & PTE_SW_MASK;
        match stage {
            Stage::Stage1 => {
                bits |= S1_AF | S1_SH_INNER;
                bits |= match attrs.memtype {
                    MemType::Normal => MT_NORMAL_IDX,
                    MemType::Device => MT_DEVICE_IDX,
                } << S1_ATTRIDX_SHIFT;
                if !attrs.perms.w {
                    bits |= S1_AP_RDONLY;
                }
                if !attrs.perms.x {
                    bits |= S1_XN;
                }
            }
            Stage::Stage2 => {
                bits |= S2_AF | S2_SH_INNER;
                bits |= match attrs.memtype {
                    MemType::Normal => S2_MEMATTR_NORMAL,
                    MemType::Device => S2_MEMATTR_DEVICE,
                } << S2_MEMATTR_SHIFT;
                if attrs.perms.r {
                    bits |= S2AP_R;
                }
                if attrs.perms.w {
                    bits |= S2AP_W;
                }
                if !attrs.perms.x {
                    bits |= S2_XN;
                }
            }
        }
        Self(bits)
    }

    /// The output address of a leaf descriptor at `level` (block OA bits
    /// below the level size are zero by the encoding invariant).
    #[inline]
    pub const fn leaf_oa(self, level: u8) -> PhysAddr {
        let shift = level_shift(level);
        PhysAddr::new(self.0 & PTE_ADDR_MASK & !((1 << shift) - 1))
    }

    /// Decodes the attributes of a leaf descriptor for `stage`.
    pub const fn leaf_attrs(self, stage: Stage) -> Attrs {
        let sw = ((self.0 & PTE_SW_MASK) >> PTE_SW_SHIFT) as u8;
        match stage {
            Stage::Stage1 => {
                let memtype = if (self.0 & S1_ATTRIDX_MASK) >> S1_ATTRIDX_SHIFT == MT_DEVICE_IDX {
                    MemType::Device
                } else {
                    MemType::Normal
                };
                Attrs {
                    perms: Perms {
                        r: true,
                        w: self.0 & S1_AP_RDONLY == 0,
                        x: self.0 & S1_XN == 0,
                    },
                    memtype,
                    sw,
                }
            }
            Stage::Stage2 => {
                let memattr = (self.0 & S2_MEMATTR_MASK) >> S2_MEMATTR_SHIFT;
                let memtype = if memattr == S2_MEMATTR_DEVICE {
                    MemType::Device
                } else {
                    MemType::Normal
                };
                Attrs {
                    perms: Perms {
                        r: self.0 & S2AP_R != 0,
                        w: self.0 & S2AP_W != 0,
                        x: self.0 & S2_XN == 0,
                    },
                    memtype,
                    sw,
                }
            }
        }
    }

    /// Returns a copy of this leaf descriptor with the software bits
    /// replaced, leaving all architectural fields untouched.
    #[inline]
    pub const fn with_sw(self, sw: u8) -> Self {
        Self((self.0 & !PTE_SW_MASK) | (((sw as u64) << PTE_SW_SHIFT) & PTE_SW_MASK))
    }

    /// Reads the software bits of this descriptor.
    #[inline]
    pub const fn sw(self) -> u8 {
        ((self.0 & PTE_SW_MASK) >> PTE_SW_SHIFT) as u8
    }
}

impl core::fmt::Debug for Pte {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Pte({:#018x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_decode_rules() {
        assert_eq!(Pte::ZERO.kind(0), EntryKind::Invalid);
        assert_eq!(Pte::ZERO.kind(3), EntryKind::Invalid);
        let table = Pte::table(PhysAddr::new(0x8000_0000));
        assert_eq!(table.kind(0), EntryKind::Table);
        assert_eq!(table.kind(2), EntryKind::Table);
        // The same bits at level 3 decode as a page.
        assert_eq!(table.kind(3), EntryKind::Page);
        // Valid, bit1 clear: block at 1-2, reserved at 0 and 3.
        let blockish = Pte(PTE_VALID);
        assert_eq!(blockish.kind(0), EntryKind::Reserved);
        assert_eq!(blockish.kind(1), EntryKind::Block);
        assert_eq!(blockish.kind(2), EntryKind::Block);
        assert_eq!(blockish.kind(3), EntryKind::Reserved);
    }

    #[test]
    fn invalid_owner_annotation_roundtrip() {
        let pte = Pte::invalid_with_owner(3);
        assert_eq!(pte.kind(2), EntryKind::Invalid);
        assert_eq!(pte.invalid_owner(), 3);
        assert_eq!(Pte::invalid().invalid_owner(), 0);
    }

    #[test]
    fn table_addr_roundtrip() {
        let next = PhysAddr::new(0x4321_7000);
        let pte = Pte::table(next);
        assert_eq!(pte.table_addr(), next);
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn table_misaligned_panics() {
        let _ = Pte::table(PhysAddr::new(0x1234));
    }

    #[test]
    fn s1_leaf_roundtrip() {
        let attrs = Attrs::normal(Perms::RW).with_sw(1);
        let pte = Pte::leaf(Stage::Stage1, 3, PhysAddr::new(0x8000_5000), attrs);
        assert_eq!(pte.kind(3), EntryKind::Page);
        assert_eq!(pte.leaf_oa(3), PhysAddr::new(0x8000_5000));
        assert_eq!(pte.leaf_attrs(Stage::Stage1), attrs);
    }

    #[test]
    fn s2_leaf_roundtrip_all_perms() {
        for perms in [Perms::RWX, Perms::RW, Perms::RX, Perms::R, Perms::NONE] {
            for memtype in [MemType::Normal, MemType::Device] {
                for sw in 0..4u8 {
                    let attrs = Attrs { perms, memtype, sw };
                    let pte = Pte::leaf(Stage::Stage2, 3, PhysAddr::new(0x4000_0000), attrs);
                    assert_eq!(pte.leaf_attrs(Stage::Stage2), attrs, "attrs {attrs:?}");
                }
            }
        }
    }

    #[test]
    fn s2_block_roundtrip() {
        let attrs = Attrs::normal(Perms::RWX);
        let pte = Pte::leaf(Stage::Stage2, 2, PhysAddr::new(0x4020_0000), attrs);
        assert_eq!(pte.kind(2), EntryKind::Block);
        assert_eq!(pte.leaf_oa(2), PhysAddr::new(0x4020_0000));
        assert_eq!(pte.leaf_attrs(Stage::Stage2), attrs);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn block_oa_misaligned_panics() {
        let _ = Pte::leaf(
            Stage::Stage2,
            2,
            PhysAddr::new(0x4000_1000),
            Attrs::normal(Perms::RWX),
        );
    }

    #[test]
    fn with_sw_only_touches_sw_bits() {
        let attrs = Attrs::normal(Perms::RX);
        let pte = Pte::leaf(Stage::Stage1, 3, PhysAddr::new(0x9000_0000), attrs);
        let pte2 = pte.with_sw(2);
        assert_eq!(pte2.sw(), 2);
        assert_eq!(pte2.leaf_oa(3), pte.leaf_oa(3));
        let mut want = attrs;
        want.sw = 2;
        assert_eq!(pte2.leaf_attrs(Stage::Stage1), want);
    }
}
