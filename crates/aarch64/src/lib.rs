//! Simulated Arm-A VMSAv8-64 substrate for the pKVM test-oracle reproduction.
//!
//! The paper's oracle specifies a hypervisor whose observable behaviour is
//! *the extensional meaning of in-memory Arm translation tables* — what the
//! implicit hardware walks of the host, guests, and pKVM itself would see.
//! This crate provides that architectural layer in simulation:
//!
//! - [`addr`] — address-space newtypes ([`PhysAddr`], [`Ipa`], [`VirtAddr`])
//!   and 4 KiB-granule level arithmetic;
//! - [`attrs`] — decoded leaf attributes (permissions, memory type,
//!   software bits) for stage 1 and stage 2;
//! - [`desc`] — the raw 64-bit descriptor encoding ([`Pte`], [`EntryKind`]);
//! - [`memory`] — sparse simulated physical memory ([`PhysMem`]) holding
//!   translation tables in the real bit format;
//! - [`mod@walk`] — the hardware translation-table walk ([`walk()`],
//!   [`translate()`]);
//! - [`esr`] — exception syndromes ([`Esr`]) for hypercalls and aborts;
//! - [`sysreg`] — the translation-relevant system registers
//!   ([`SysRegs`], [`Vttbr`]) and the general-purpose register file.
//!
//! Everything downstream (the `pkvm-hyp` hypervisor and the `pkvm-ghost`
//! oracle) reads and writes page tables only through these types, so the
//! implementation and the specification meet at the same architectural
//! interface as in the paper.

pub mod addr;
pub mod attrs;
pub mod desc;
pub mod esr;
pub mod memory;
pub mod sync;
pub mod sysreg;
pub mod tlb;
pub mod walk;

pub use addr::{Ipa, PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE};
pub use attrs::{Attrs, MemType, Perms, Stage};
pub use desc::{EntryKind, Pte};
pub use esr::{Esr, ExceptionClass};
pub use memory::{BusError, MemRegion, PhysMem, RegionKind};
pub use sysreg::{GprFile, SysRegs, Vttbr};
pub use tlb::{RemoteDelivery, TlbInvalidationPolicy, TlbSet, TlbiScope, VMID_HOST, VMID_HYP};
pub use walk::{translate, translate_two_stage, walk, Access, Fault, Translation};
