//! The hardware translation-table walk.
//!
//! This is the simulated equivalent of the Arm-A hardware walker: given a
//! translation root and an input address, it follows table descriptors down
//! to a leaf and produces the output address and decoded attributes, or a
//! fault. Host and guest memory accesses in the simulation go through this
//! function, so the hypervisor's page tables are exercised exactly as the
//! implicit hardware walks of the paper exercise pKVM's.

use crate::addr::{ia_index, level_size, PhysAddr, LEAF_LEVEL, PA_LIMIT, START_LEVEL};
use crate::attrs::{Attrs, Stage};
use crate::desc::EntryKind;
use crate::memory::PhysMem;

/// The kind of access being translated, for permission checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// A successful translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// The translated output address (leaf OA plus the in-region offset).
    pub oa: PhysAddr,
    /// The level at which the leaf was found (1, 2 or 3).
    pub level: u8,
    /// Decoded leaf attributes.
    pub attrs: Attrs,
}

/// A translation fault, mirroring the Arm FSC fault taxonomy we need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No mapping: an invalid descriptor was found at `level`.
    Translation {
        /// Level of the invalid descriptor.
        level: u8,
    },
    /// The mapping exists but does not permit the access.
    Permission {
        /// Level of the leaf descriptor.
        level: u8,
    },
    /// The input address is outside the modelled 48-bit space.
    AddressSize,
    /// A reserved descriptor encoding was found at `level`.
    Malformed {
        /// Level of the malformed descriptor.
        level: u8,
    },
    /// A descriptor fetch itself hit unbacked physical memory.
    External {
        /// Level whose descriptor fetch failed.
        level: u8,
    },
}

impl Fault {
    /// Returns `true` for faults a well-behaved handler may resolve by
    /// installing a mapping (translation faults), as opposed to errors.
    pub fn is_translation(self) -> bool {
        matches!(self, Fault::Translation { .. })
    }
}

/// Walks the table rooted at `root` for input address `ia`, without a
/// permission check.
///
/// # Errors
///
/// Returns a [`Fault`] if the walk does not reach a valid leaf.
pub fn walk(mem: &PhysMem, stage: Stage, root: PhysAddr, ia: u64) -> Result<Translation, Fault> {
    if ia >= PA_LIMIT {
        return Err(Fault::AddressSize);
    }
    let mut table = root;
    for level in START_LEVEL..=LEAF_LEVEL {
        let pte = mem
            .read_pte(table, ia_index(ia, level))
            .map_err(|_| Fault::External { level })?;
        match pte.kind(level) {
            EntryKind::Invalid => return Err(Fault::Translation { level }),
            EntryKind::Reserved => return Err(Fault::Malformed { level }),
            EntryKind::Table => table = pte.table_addr(),
            EntryKind::Block | EntryKind::Page => {
                let offset = ia & (level_size(level) - 1);
                return Ok(Translation {
                    oa: pte.leaf_oa(level).wrapping_add(offset),
                    level,
                    attrs: pte.leaf_attrs(stage),
                });
            }
        }
    }
    unreachable!("level 3 descriptors are always leaves or faults");
}

/// Translates `ia` for the given `access`, including the permission check.
///
/// # Errors
///
/// Returns [`Fault::Permission`] if a valid leaf is found but its
/// permissions deny the access, or any fault from [`walk`].
pub fn translate(
    mem: &PhysMem,
    stage: Stage,
    root: PhysAddr,
    ia: u64,
    access: Access,
) -> Result<Translation, Fault> {
    let tr = walk(mem, stage, root, ia)?;
    let ok = match access {
        Access::Read => tr.attrs.perms.r,
        Access::Write => tr.attrs.perms.w,
        Access::Exec => tr.attrs.perms.x,
    };
    if ok {
        Ok(tr)
    } else {
        Err(Fault::Permission { level: tr.level })
    }
}

/// The full two-stage translation: a guest virtual address through the
/// guest's stage 1 (each stage 1 table-walk access itself being subject to
/// stage 2!), then the resulting IPA through stage 2.
///
/// pKVM's oracle never needs this — guests manage their own stage 1 and
/// the hypervisor only constrains stage 2 — but the simulation provides it
/// for architectural completeness and for tests that model a guest kernel
/// with paging enabled.
///
/// # Errors
///
/// Returns [`Fault::External`] for a table-walk access that stage 2
/// rejects, or the faulting stage's own fault.
pub fn translate_two_stage(
    mem: &PhysMem,
    s1_root: PhysAddr,
    s2_root: PhysAddr,
    va: u64,
    access: Access,
) -> Result<Translation, Fault> {
    use crate::addr::{ia_index, LEAF_LEVEL, START_LEVEL};
    use crate::desc::EntryKind;
    if va >= PA_LIMIT {
        return Err(Fault::AddressSize);
    }
    // Stage 1 walk, with every descriptor fetch translated by stage 2.
    let mut table_ipa = s1_root;
    let mut s1_leaf = None;
    for level in START_LEVEL..=LEAF_LEVEL {
        let entry_ipa = table_ipa.wrapping_add(8 * ia_index(va, level) as u64);
        let entry_pa = translate(mem, Stage::Stage2, s2_root, entry_ipa.bits(), Access::Read)
            .map_err(|_| Fault::External { level })?;
        let pte = crate::desc::Pte(
            mem.read_u64(entry_pa.oa)
                .map_err(|_| Fault::External { level })?,
        );
        match pte.kind(level) {
            EntryKind::Invalid => return Err(Fault::Translation { level }),
            EntryKind::Reserved => return Err(Fault::Malformed { level }),
            EntryKind::Table => table_ipa = pte.table_addr(),
            EntryKind::Block | EntryKind::Page => {
                let offset = va & (level_size(level) - 1);
                s1_leaf = Some(Translation {
                    oa: pte.leaf_oa(level).wrapping_add(offset),
                    level,
                    attrs: pte.leaf_attrs(Stage::Stage1),
                });
                break;
            }
        }
    }
    let Some(s1) = s1_leaf else {
        return Err(Fault::Translation { level: LEAF_LEVEL });
    };
    let ok = match access {
        Access::Read => s1.attrs.perms.r,
        Access::Write => s1.attrs.perms.w,
        Access::Exec => s1.attrs.perms.x,
    };
    if !ok {
        return Err(Fault::Permission { level: s1.level });
    }
    // Stage 2 on the resulting IPA.
    translate(mem, Stage::Stage2, s2_root, s1.oa.bits(), access)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Perms;
    use crate::desc::Pte;
    use crate::memory::MemRegion;

    /// Builds a fresh memory with a RAM region and hand-rolls a small
    /// 4-level table inside it.
    fn setup() -> (PhysMem, PhysAddr) {
        let mem = PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x100_0000)]);
        let root = PhysAddr::new(0x4000_0000);
        (mem, root)
    }

    /// Installs a 4 KiB page mapping `ia -> oa` by writing raw descriptors,
    /// allocating intermediate tables at fixed addresses.
    fn map_page(mem: &PhysMem, root: PhysAddr, ia: u64, oa: u64, perms: Perms) {
        let mut table = root;
        let mut next_free = 0x4010_0000u64;
        for level in 0..3u8 {
            let idx = ia_index(ia, level);
            let pte = mem.read_pte(table, idx).unwrap();
            table = if pte.is_valid() {
                pte.table_addr()
            } else {
                let t = PhysAddr::new(next_free);
                mem.write_pte(table, idx, Pte::table(t)).unwrap();
                t
            };
            next_free += 0x1000;
        }
        let attrs = Attrs::normal(perms);
        mem.write_pte(
            table,
            ia_index(ia, 3),
            Pte::leaf(Stage::Stage2, 3, PhysAddr::new(oa), attrs),
        )
        .unwrap();
    }

    #[test]
    fn unmapped_faults_at_level_0() {
        let (mem, root) = setup();
        assert_eq!(
            walk(&mem, Stage::Stage2, root, 0x8000_0000),
            Err(Fault::Translation { level: 0 })
        );
    }

    #[test]
    fn mapped_page_translates_with_offset() {
        let (mem, root) = setup();
        map_page(&mem, root, 0x8000_0000, 0x4050_0000, Perms::RWX);
        let tr = translate(&mem, Stage::Stage2, root, 0x8000_0123, Access::Read).unwrap();
        assert_eq!(tr.oa, PhysAddr::new(0x4050_0123));
        assert_eq!(tr.level, 3);
        assert_eq!(tr.attrs.perms, Perms::RWX);
    }

    #[test]
    fn permission_fault_on_write_to_readonly() {
        let (mem, root) = setup();
        map_page(&mem, root, 0x8000_0000, 0x4050_0000, Perms::R);
        assert!(translate(&mem, Stage::Stage2, root, 0x8000_0000, Access::Read).is_ok());
        assert_eq!(
            translate(&mem, Stage::Stage2, root, 0x8000_0000, Access::Write),
            Err(Fault::Permission { level: 3 })
        );
        assert_eq!(
            translate(&mem, Stage::Stage2, root, 0x8000_0000, Access::Exec),
            Err(Fault::Permission { level: 3 })
        );
    }

    #[test]
    fn block_mapping_translates_interior_addresses() {
        let (mem, root) = setup();
        // Level-2 block at ia 0x4000_0000 (2 MiB aligned) -> oa 0x4020_0000.
        let l0 = root;
        let l1 = PhysAddr::new(0x4011_0000);
        mem.write_pte(l0, ia_index(0x4000_0000, 0), Pte::table(l1))
            .unwrap();
        let l2 = PhysAddr::new(0x4012_0000);
        mem.write_pte(l1, ia_index(0x4000_0000, 1), Pte::table(l2))
            .unwrap();
        let attrs = Attrs::normal(Perms::RW);
        mem.write_pte(
            l2,
            ia_index(0x4000_0000, 2),
            Pte::leaf(Stage::Stage2, 2, PhysAddr::new(0x4020_0000), attrs),
        )
        .unwrap();
        let tr = walk(&mem, Stage::Stage2, root, 0x4000_0000 + 0x12_3456).unwrap();
        assert_eq!(tr.level, 2);
        assert_eq!(tr.oa, PhysAddr::new(0x4020_0000 + 0x12_3456));
    }

    #[test]
    fn address_size_fault_beyond_48_bits() {
        let (mem, root) = setup();
        assert_eq!(
            walk(&mem, Stage::Stage2, root, 1 << 48),
            Err(Fault::AddressSize)
        );
    }

    #[test]
    fn malformed_descriptor_faults() {
        let (mem, root) = setup();
        // A "valid block" at level 0 is a reserved encoding.
        mem.write_pte(root, ia_index(0, 0), Pte(1)).unwrap();
        assert_eq!(
            walk(&mem, Stage::Stage2, root, 0),
            Err(Fault::Malformed { level: 0 })
        );
    }

    #[test]
    fn two_stage_translation_composes() {
        let (mem, s2_root) = setup();
        // Stage 2: identity-map the guest's "RAM" (covering its stage 1
        // tables and data) page by page.
        for pfn in 0x40600..0x40700u64 {
            map_page(&mem, s2_root, pfn << 12, pfn << 12, Perms::RWX);
        }
        // Guest stage 1 (in guest memory): va 0 -> ipa 0x4060_5000.
        let s1_root = PhysAddr::new(0x4060_0000);
        let l1 = PhysAddr::new(0x4060_1000);
        let l2 = PhysAddr::new(0x4060_2000);
        let l3 = PhysAddr::new(0x4060_3000);
        mem.write_pte(s1_root, 0, Pte::table(l1)).unwrap();
        mem.write_pte(l1, 0, Pte::table(l2)).unwrap();
        mem.write_pte(l2, 0, Pte::table(l3)).unwrap();
        mem.write_pte(
            l3,
            0,
            Pte::leaf(
                Stage::Stage1,
                3,
                PhysAddr::new(0x4060_5000),
                Attrs::normal(Perms::RW),
            ),
        )
        .unwrap();
        let tr = translate_two_stage(&mem, s1_root, s2_root, 0x123, Access::Read).unwrap();
        assert_eq!(tr.oa, PhysAddr::new(0x4060_5123));
        // Stage 1 denies execution.
        assert_eq!(
            translate_two_stage(&mem, s1_root, s2_root, 0x123, Access::Exec),
            Err(Fault::Permission { level: 3 })
        );
    }

    #[test]
    fn two_stage_fails_when_stage2_hides_the_stage1_table() {
        let (mem, s2_root) = setup();
        // Stage 2 maps the guest data but NOT the stage 1 tables.
        let s1_root = PhysAddr::new(0x4060_0000);
        mem.write_pte(s1_root, 0, Pte::table(PhysAddr::new(0x4060_1000)))
            .unwrap();
        assert_eq!(
            translate_two_stage(&mem, s1_root, s2_root, 0, Access::Read),
            Err(Fault::External { level: 0 }),
            "the stage 1 root fetch itself is stage 2 translated"
        );
    }

    #[test]
    fn external_abort_when_table_points_outside_memory() {
        let (mem, root) = setup();
        mem.write_pte(
            root,
            ia_index(0, 0),
            Pte::table(PhysAddr::new(0x9_0000_0000)),
        )
        .unwrap();
        assert_eq!(
            walk(&mem, Stage::Stage2, root, 0),
            Err(Fault::External { level: 1 })
        );
    }
}
