//! A simulated translation lookaside buffer.
//!
//! Hardware caches translations per VMID/ASID; system software must
//! invalidate (`tlbi`) after removing or downgrading mappings, or stale
//! translations keep working — the class of bugs the paper's companion
//! work ("Abstract architecture to catch concrete bugs: checking Android
//! hypervisor TLB synchronisation") targets. The simulation caches
//! page-granular translations keyed by `(vmid, input page)`; the machine
//! consults it before walking, and the hypervisor issues the
//! architectural invalidations through [`Tlb::invalidate_page`] /
//! [`Tlb::invalidate_vmid`].
//!
//! Note the division of labour, mirroring the paper: the *ghost oracle*
//! checks the extensional meaning of the in-memory tables; TLB staleness
//! is outside its scope and is caught behaviourally by the harness.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::sync::RwLock;

use crate::addr::PAGE_MASK;
use crate::walk::Translation;

/// The VMID used for the host's stage 2 translations.
pub const VMID_HOST: u16 = 0;
/// The pseudo-VMID used for the hypervisor's own stage 1 translations.
pub const VMID_HYP: u16 = 0xffff;

/// A simulated, page-granular TLB shared by all hardware threads.
#[derive(Debug, Default)]
pub struct Tlb {
    entries: RwLock<HashMap<(u16, u64), Translation>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Tlb {
    /// An empty TLB.
    pub fn new() -> Tlb {
        Tlb::default()
    }

    /// Looks up the translation of the page containing `ia` under `vmid`,
    /// counting hit/miss statistics.
    pub fn lookup(&self, vmid: u16, ia: u64) -> Option<Translation> {
        let r = self.entries.read().get(&(vmid, ia & !PAGE_MASK)).copied();
        if r.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Caches the translation of the page containing `ia`.
    ///
    /// The cached [`Translation`] is normalised to the page base so later
    /// lookups can re-add their own offsets.
    pub fn fill(&self, vmid: u16, ia: u64, mut tr: Translation) {
        let offset = ia & PAGE_MASK;
        tr.oa = crate::addr::PhysAddr::new(tr.oa.bits().wrapping_sub(offset));
        self.entries.write().insert((vmid, ia & !PAGE_MASK), tr);
    }

    /// `tlbi ipas2e1is`-style: drops the cached translation of one page.
    pub fn invalidate_page(&self, vmid: u16, ia: u64) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        self.entries.write().remove(&(vmid, ia & !PAGE_MASK));
    }

    /// Drops the cached translations of a page range.
    pub fn invalidate_range(&self, vmid: u16, ia: u64, nr_pages: u64) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        let mut e = self.entries.write();
        for i in 0..nr_pages {
            e.remove(&(vmid, (ia & !PAGE_MASK) + i * crate::addr::PAGE_SIZE));
        }
    }

    /// `tlbi vmalls12e1is`-style: drops everything cached under `vmid`.
    pub fn invalidate_vmid(&self, vmid: u16) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        self.entries.write().retain(|&(v, _), _| v != vmid);
    }

    /// `tlbi alle1is`-style: drops everything.
    pub fn invalidate_all(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        self.entries.write().clear();
    }

    /// Cached entries (for tests and reports).
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Invalidation operations so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::attrs::{Attrs, Perms};

    fn tr(oa: u64) -> Translation {
        Translation {
            oa: PhysAddr::new(oa),
            level: 3,
            attrs: Attrs::normal(Perms::RWX),
        }
    }

    #[test]
    fn fill_and_lookup_normalise_to_page() {
        let t = Tlb::new();
        t.fill(0, 0x4000_1234, tr(0x5000_1234));
        let hit = t.lookup(0, 0x4000_1fff).unwrap();
        assert_eq!(hit.oa, PhysAddr::new(0x5000_1000), "page-base normalised");
        assert_eq!(t.hits(), 1);
        assert!(t.lookup(0, 0x4000_2000).is_none());
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn vmids_are_isolated() {
        let t = Tlb::new();
        t.fill(0, 0x1000, tr(0xa000));
        t.fill(1, 0x1000, tr(0xb000));
        assert_eq!(t.lookup(0, 0x1000).unwrap().oa, PhysAddr::new(0xa000));
        assert_eq!(t.lookup(1, 0x1000).unwrap().oa, PhysAddr::new(0xb000));
        t.invalidate_vmid(1);
        assert!(t.lookup(1, 0x1000).is_none());
        assert!(t.lookup(0, 0x1000).is_some());
    }

    #[test]
    fn page_invalidation_is_precise() {
        let t = Tlb::new();
        t.fill(0, 0x1000, tr(0xa000));
        t.fill(0, 0x2000, tr(0xb000));
        t.invalidate_page(0, 0x1abc);
        assert!(t.lookup(0, 0x1000).is_none());
        assert!(t.lookup(0, 0x2000).is_some());
    }

    #[test]
    fn range_and_full_invalidation() {
        let t = Tlb::new();
        for i in 0..8u64 {
            t.fill(3, i * 0x1000, tr(0x9_0000 + i * 0x1000));
        }
        t.invalidate_range(3, 0x2000, 3);
        assert!(t.lookup(3, 0x2000).is_none());
        assert!(t.lookup(3, 0x4000).is_none());
        assert!(t.lookup(3, 0x5000).is_some());
        t.invalidate_all();
        assert!(t.is_empty());
    }
}
