//! Simulated per-CPU translation lookaside buffers.
//!
//! Hardware caches translations per VMID/ASID *per hardware thread*;
//! system software must invalidate (`tlbi ... is` broadcast, or the
//! local-only variants) after removing or downgrading mappings, or stale
//! translations keep working — the class of bugs the paper's companion
//! work ("Abstract architecture to catch concrete bugs: checking Android
//! hypervisor TLB synchronisation") targets. The simulation caches
//! page-granular translations keyed by `(vmid, input page)` in one
//! [`TlbSet`] holding a private TLB per simulated CPU: fills are
//! CPU-local, broadcast invalidations reach every CPU, and the
//! non-broadcast variants reach only the issuer — leaving remote CPUs
//! demonstrably stale.
//!
//! The division of labour with the ghost oracle: the oracle checks both
//! the extensional meaning of the in-memory tables *and* (since the
//! break-before-make check) that every downgrading table write is
//! followed by its matching-scope invalidation; *serving* a stale
//! translation remains the harness's behavioural concern, driven by the
//! [`TlbInvalidationPolicy`] seam below. An installed policy may delay or
//! drop the delivery of a broadcast invalidation to a remote CPU; the
//! affected entries are retained and marked, so a consumer can assert
//! that every stale translation served corresponds to a concrete
//! suppressed delivery — the TLB never fabricates staleness.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::{Mutex, RwLock};

use crate::addr::{PAGE_MASK, PAGE_SIZE};
use crate::walk::{Access, Translation};

/// The VMID used for the host's stage 2 translations.
pub const VMID_HOST: u16 = 0;
/// The pseudo-VMID used for the hypervisor's own stage 1 translations.
pub const VMID_HYP: u16 = 0xffff;

/// The scope of one TLB invalidation operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbiScope {
    /// A page range under one VMID (`tlbi ipas2e1` over `nr_pages`).
    Range {
        /// The VMID whose translations are dropped.
        vmid: u16,
        /// First input address of the range (any offset within the page).
        ia: u64,
        /// Number of pages covered.
        nr_pages: u64,
    },
    /// Everything under one VMID (`tlbi vmalls12e1`).
    Vmid {
        /// The VMID whose translations are dropped.
        vmid: u16,
    },
    /// Everything (`tlbi alle1`).
    All,
}

impl TlbiScope {
    /// Whether this scope covers the cached entry keyed `(vmid, page)`.
    fn covers(&self, vmid: u16, page: u64) -> bool {
        match *self {
            TlbiScope::Range {
                vmid: v,
                ia,
                nr_pages,
            } => {
                let base = (ia & !PAGE_MASK) as u128;
                let end = base + nr_pages as u128 * PAGE_SIZE as u128;
                v == vmid && (page as u128) >= base && (page as u128) < end
            }
            TlbiScope::Vmid { vmid: v } => v == vmid,
            TlbiScope::All => true,
        }
    }
}

/// What happens to a broadcast invalidation on its way to a remote CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteDelivery {
    /// The invalidation applies to the remote TLB immediately (correct
    /// hardware behaviour).
    Deliver,
    /// The invalidation is queued on the remote CPU and applies only at
    /// its next [`TlbSet::settle`]; until then the covered entries are
    /// retained and marked stale.
    Delay,
    /// The invalidation never reaches the remote CPU; the covered entries
    /// are retained and marked stale until a later delivered invalidation
    /// covers them.
    Drop,
}

/// Decides, per remote CPU, what happens to a broadcast invalidation —
/// the seam a chaos harness installs to expose cross-CPU staleness
/// without the architecture crate depending on the harness.
pub trait TlbInvalidationPolicy: Send + Sync {
    /// Delivery decision for the invalidation `scope` issued on `issuer`
    /// travelling to `target` (never called with `issuer == target`; the
    /// issuing CPU always invalidates its own TLB).
    fn remote(&self, issuer: usize, target: usize, scope: &TlbiScope) -> RemoteDelivery;
}

/// One CPU's private TLB.
#[derive(Debug, Default)]
struct CpuTlb {
    entries: RwLock<HashMap<(u16, u64), Translation>>,
    /// Keys covered by a suppressed (delayed or dropped) invalidation:
    /// still served, but known-stale. Cleared by a delivered covering
    /// invalidation or a fresh fill of the same key.
    stale: Mutex<HashSet<(u16, u64)>>,
    /// Delayed invalidations awaiting [`TlbSet::settle`].
    pending: Mutex<Vec<TlbiScope>>,
}

impl CpuTlb {
    fn apply(&self, scope: &TlbiScope) {
        match *scope {
            TlbiScope::Range { vmid, ia, nr_pages } => {
                let base = ia & !PAGE_MASK;
                let mut e = self.entries.write();
                // Walk the smaller side: a handful of pages removes
                // directly (with wrapping arithmetic so a large range
                // near the address-space top cannot overflow-panic); a
                // huge range filters the map instead.
                if nr_pages <= 512 && nr_pages <= e.len() as u64 {
                    for i in 0..nr_pages {
                        e.remove(&(vmid, base.wrapping_add(i.wrapping_mul(PAGE_SIZE))));
                    }
                } else {
                    e.retain(|&(v, page), _| !scope.covers(v, page) || v != vmid);
                    let _ = base;
                }
            }
            TlbiScope::Vmid { vmid } => {
                self.entries.write().retain(|&(v, _), _| v != vmid);
            }
            TlbiScope::All => self.entries.write().clear(),
        }
        self.stale
            .lock()
            .retain(|&(v, page)| !scope.covers(v, page));
    }

    fn mark_stale(&self, scope: &TlbiScope) {
        let e = self.entries.read();
        let mut stale = self.stale.lock();
        for &(v, page) in e.keys() {
            if scope.covers(v, page) {
                stale.insert((v, page));
            }
        }
    }
}

/// Per-CPU TLBs behind one handle, with a policy seam for remote
/// invalidation delivery.
#[derive(Default)]
pub struct TlbSet {
    cpus: Vec<CpuTlb>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// TLBI operations *issued* — one per invalidate call, regardless of
    /// the pages or CPUs it covers.
    invalidations: AtomicU64,
    /// Lookups served from an entry a suppressed invalidation left live.
    stale_served: AtomicU64,
    /// Remote deliveries suppressed (delayed or dropped) by the policy.
    suppressed_remote: AtomicU64,
    policy: RwLock<Option<Arc<dyn TlbInvalidationPolicy>>>,
}

impl std::fmt::Debug for TlbSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlbSet")
            .field("cpus", &self.cpus.len())
            .field("entries", &self.len())
            .finish()
    }
}

impl TlbSet {
    /// Empty TLBs for `nr_cpus` hardware threads.
    pub fn new(nr_cpus: usize) -> TlbSet {
        TlbSet {
            cpus: (0..nr_cpus.max(1)).map(|_| CpuTlb::default()).collect(),
            ..TlbSet::default()
        }
    }

    /// Number of per-CPU TLBs.
    pub fn nr_cpus(&self) -> usize {
        self.cpus.len()
    }

    fn tlb(&self, cpu: usize) -> &CpuTlb {
        // Out-of-range CPUs (a harness driving a lane the machine does
        // not have) fold onto CPU 0 rather than panicking mid-trap.
        self.cpus.get(cpu).unwrap_or(&self.cpus[0])
    }

    /// Installs (or with `None` removes) the remote-delivery policy.
    pub fn set_policy(&self, policy: Option<Arc<dyn TlbInvalidationPolicy>>) {
        *self.policy.write() = policy;
    }

    /// Looks up the translation of the page containing `ia` under `vmid`
    /// in `cpu`'s TLB, honouring the access permission: an entry whose
    /// permissions reject `access` behaves — and is counted — as a miss
    /// (the hardware re-walks), so the hit/miss statistics match
    /// observable behaviour.
    pub fn lookup(&self, cpu: usize, vmid: u16, ia: u64, access: Access) -> Option<Translation> {
        let tlb = self.tlb(cpu);
        let page = ia & !PAGE_MASK;
        let hit = tlb
            .entries
            .read()
            .get(&(vmid, page))
            .copied()
            .filter(|tr| match access {
                Access::Read => tr.attrs.perms.r,
                Access::Write => tr.attrs.perms.w,
                Access::Exec => tr.attrs.perms.x,
            });
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if tlb.stale.lock().contains(&(vmid, page)) {
                self.stale_served.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Caches the translation of the page containing `ia` in `cpu`'s TLB.
    ///
    /// The cached [`Translation`] is normalised to the page base so later
    /// lookups can re-add their own offsets. A fresh fill un-marks a
    /// previously stale key: the walk that produced it saw the live
    /// tables.
    pub fn fill(&self, cpu: usize, vmid: u16, ia: u64, mut tr: Translation) {
        let offset = ia & PAGE_MASK;
        tr.oa = crate::addr::PhysAddr::new(tr.oa.bits().wrapping_sub(offset));
        let tlb = self.tlb(cpu);
        let page = ia & !PAGE_MASK;
        tlb.entries.write().insert((vmid, page), tr);
        tlb.stale.lock().remove(&(vmid, page));
    }

    /// `tlbi ipas2e1(is)`-style: drops the cached translation of one page.
    pub fn invalidate_page(&self, cpu: usize, vmid: u16, ia: u64, broadcast: bool) {
        self.invalidate(
            cpu,
            TlbiScope::Range {
                vmid,
                ia,
                nr_pages: 1,
            },
            broadcast,
        );
    }

    /// Drops the cached translations of a page range.
    pub fn invalidate_range(&self, cpu: usize, vmid: u16, ia: u64, nr_pages: u64, broadcast: bool) {
        self.invalidate(cpu, TlbiScope::Range { vmid, ia, nr_pages }, broadcast);
    }

    /// `tlbi vmalls12e1(is)`-style: drops everything cached under `vmid`.
    pub fn invalidate_vmid(&self, cpu: usize, vmid: u16, broadcast: bool) {
        self.invalidate(cpu, TlbiScope::Vmid { vmid }, broadcast);
    }

    /// `tlbi alle1(is)`-style: drops everything.
    pub fn invalidate_all(&self, cpu: usize, broadcast: bool) {
        self.invalidate(cpu, TlbiScope::All, broadcast);
    }

    /// One TLBI operation: always applied to the issuing CPU; with
    /// `broadcast` also offered to every other CPU, subject to the
    /// installed [`TlbInvalidationPolicy`].
    pub fn invalidate(&self, cpu: usize, scope: TlbiScope, broadcast: bool) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        let issuer = if cpu < self.cpus.len() { cpu } else { 0 };
        self.cpus[issuer].apply(&scope);
        if !broadcast {
            return;
        }
        let policy = self.policy.read().clone();
        for (target, tlb) in self.cpus.iter().enumerate() {
            if target == issuer {
                continue;
            }
            let delivery = policy.as_ref().map_or(RemoteDelivery::Deliver, |p| {
                p.remote(issuer, target, &scope)
            });
            match delivery {
                RemoteDelivery::Deliver => tlb.apply(&scope),
                RemoteDelivery::Delay => {
                    self.suppressed_remote.fetch_add(1, Ordering::Relaxed);
                    tlb.mark_stale(&scope);
                    tlb.pending.lock().push(scope);
                }
                RemoteDelivery::Drop => {
                    self.suppressed_remote.fetch_add(1, Ordering::Relaxed);
                    tlb.mark_stale(&scope);
                }
            }
        }
    }

    /// Applies `cpu`'s delayed invalidations (the late end of a
    /// [`RemoteDelivery::Delay`]). Dropped deliveries never settle.
    pub fn settle(&self, cpu: usize) {
        let tlb = self.tlb(cpu);
        let pending: Vec<TlbiScope> = tlb.pending.lock().drain(..).collect();
        for scope in &pending {
            tlb.apply(scope);
        }
    }

    /// Total cached entries across all CPUs (tests and reports).
    pub fn len(&self) -> usize {
        self.cpus.iter().map(|t| t.entries.read().len()).sum()
    }

    /// Cached entries in `cpu`'s TLB.
    pub fn cpu_len(&self, cpu: usize) -> usize {
        self.tlb(cpu).entries.read().len()
    }

    /// Returns `true` if nothing is cached on any CPU.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys currently marked stale on `cpu` (retained only because a
    /// delivery was suppressed) — the soundness witness: the harness can
    /// assert every stale serve maps to one of these.
    pub fn stale_keys(&self, cpu: usize) -> Vec<(u16, u64)> {
        let mut keys: Vec<(u16, u64)> = self.tlb(cpu).stale.lock().iter().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Lookup hits so far (permission-filtered: only translations the
    /// access was actually served from).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far (including present entries whose permissions
    /// rejected the access).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// TLBI operations issued so far — one per invalidate call, the same
    /// unit for page, range and VMID scopes.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Lookups served from an entry a suppressed invalidation retained.
    pub fn stale_served(&self) -> u64 {
        self.stale_served.load(Ordering::Relaxed)
    }

    /// Remote deliveries the policy delayed or dropped.
    pub fn suppressed_remote(&self) -> u64 {
        self.suppressed_remote.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::attrs::{Attrs, Perms};

    fn tr(oa: u64) -> Translation {
        Translation {
            oa: PhysAddr::new(oa),
            level: 3,
            attrs: Attrs::normal(Perms::RWX),
        }
    }

    fn tr_ro(oa: u64) -> Translation {
        Translation {
            oa: PhysAddr::new(oa),
            level: 3,
            attrs: Attrs::normal(Perms::R),
        }
    }

    #[test]
    fn fill_and_lookup_normalise_to_page() {
        let t = TlbSet::new(2);
        t.fill(0, 0, 0x4000_1234, tr(0x5000_1234));
        let hit = t.lookup(0, 0, 0x4000_1fff, Access::Read).unwrap();
        assert_eq!(hit.oa, PhysAddr::new(0x5000_1000), "page-base normalised");
        assert_eq!(t.hits(), 1);
        assert!(t.lookup(0, 0, 0x4000_2000, Access::Read).is_none());
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn fills_are_cpu_local() {
        let t = TlbSet::new(2);
        t.fill(0, 0, 0x1000, tr(0xa000));
        assert!(t.lookup(0, 0, 0x1000, Access::Read).is_some());
        assert!(
            t.lookup(1, 0, 0x1000, Access::Read).is_none(),
            "CPU 1 sees CPU 0's fill"
        );
        assert_eq!(t.cpu_len(0), 1);
        assert_eq!(t.cpu_len(1), 0);
    }

    #[test]
    fn permission_rejected_entries_behave_and_count_as_misses() {
        let t = TlbSet::new(1);
        t.fill(0, 0, 0x1000, tr_ro(0xa000));
        assert!(t.lookup(0, 0, 0x1000, Access::Read).is_some());
        assert!(t.lookup(0, 0, 0x1000, Access::Write).is_none());
        assert!(t.lookup(0, 0, 0x1000, Access::Exec).is_none());
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2, "rejected entries must count as misses");
    }

    #[test]
    fn vmids_are_isolated() {
        let t = TlbSet::new(1);
        t.fill(0, 0, 0x1000, tr(0xa000));
        t.fill(0, 1, 0x1000, tr(0xb000));
        assert_eq!(
            t.lookup(0, 0, 0x1000, Access::Read).unwrap().oa,
            PhysAddr::new(0xa000)
        );
        assert_eq!(
            t.lookup(0, 1, 0x1000, Access::Read).unwrap().oa,
            PhysAddr::new(0xb000)
        );
        t.invalidate_vmid(0, 1, true);
        assert!(t.lookup(0, 1, 0x1000, Access::Read).is_none());
        assert!(t.lookup(0, 0, 0x1000, Access::Read).is_some());
    }

    #[test]
    fn page_invalidation_is_precise() {
        let t = TlbSet::new(1);
        t.fill(0, 0, 0x1000, tr(0xa000));
        t.fill(0, 0, 0x2000, tr(0xb000));
        t.invalidate_page(0, 0, 0x1abc, true);
        assert!(t.lookup(0, 0, 0x1000, Access::Read).is_none());
        assert!(t.lookup(0, 0, 0x2000, Access::Read).is_some());
    }

    #[test]
    fn range_and_full_invalidation() {
        let t = TlbSet::new(1);
        for i in 0..8u64 {
            t.fill(0, 3, i * 0x1000, tr(0x9_0000 + i * 0x1000));
        }
        t.invalidate_range(0, 3, 0x2000, 3, true);
        assert!(t.lookup(0, 3, 0x2000, Access::Read).is_none());
        assert!(t.lookup(0, 3, 0x4000, Access::Read).is_none());
        assert!(t.lookup(0, 3, 0x5000, Access::Read).is_some());
        t.invalidate_all(0, true);
        assert!(t.is_empty());
    }

    #[test]
    fn every_invalidation_scope_counts_one_tlbi_operation() {
        let t = TlbSet::new(2);
        t.invalidate_page(0, 0, 0x1000, true);
        t.invalidate_range(0, 0, 0x1000, 512, true);
        t.invalidate_vmid(0, 0, true);
        t.invalidate_all(0, false);
        assert_eq!(t.invalidations(), 4, "one count per TLBI issued");
    }

    #[test]
    fn huge_ranges_near_the_address_space_top_do_not_overflow() {
        let t = TlbSet::new(1);
        let top_page = !PAGE_MASK; // the last page of the address space
        t.fill(0, 0, top_page, tr(0xa000));
        t.fill(0, 0, 0x1000, tr(0xb000));
        // A range whose `ia + nr * PAGE_SIZE` overflows u64 must neither
        // panic nor wrap onto unrelated low pages.
        t.invalidate_range(0, 0, u64::MAX - 8 * PAGE_SIZE, u64::MAX / PAGE_SIZE, true);
        assert!(t.lookup(0, 0, top_page, Access::Read).is_none());
        assert!(
            t.lookup(0, 0, 0x1000, Access::Read).is_some(),
            "range wrapped around onto low pages"
        );
    }

    #[test]
    fn broadcast_reaches_remote_cpus_non_broadcast_does_not() {
        let t = TlbSet::new(2);
        t.fill(0, 0, 0x1000, tr(0xa000));
        t.fill(1, 0, 0x1000, tr(0xa000));
        t.invalidate_page(0, 0, 0x1000, false);
        assert!(t.lookup(0, 0, 0x1000, Access::Read).is_none());
        assert!(
            t.lookup(1, 0, 0x1000, Access::Read).is_some(),
            "non-broadcast TLBI reached a remote CPU"
        );
        t.invalidate_page(0, 0, 0x1000, true);
        assert!(t.lookup(1, 0, 0x1000, Access::Read).is_none());
    }

    struct Always(RemoteDelivery);

    impl TlbInvalidationPolicy for Always {
        fn remote(&self, _: usize, _: usize, _: &TlbiScope) -> RemoteDelivery {
            self.0
        }
    }

    #[test]
    fn dropped_remote_deliveries_retain_and_mark_exactly_the_covered_entries() {
        let t = TlbSet::new(2);
        t.fill(1, 0, 0x1000, tr(0xa000));
        t.fill(1, 0, 0x2000, tr(0xb000));
        t.fill(1, 7, 0x1000, tr(0xc000));
        t.set_policy(Some(Arc::new(Always(RemoteDelivery::Drop))));
        t.invalidate_page(0, 0, 0x1000, true);
        // The issuer is clean; the remote CPU retains the covered entry,
        // marked stale — and only that one.
        assert_eq!(t.suppressed_remote(), 1);
        assert_eq!(t.stale_keys(1), vec![(0, 0x1000)]);
        assert!(t.lookup(1, 0, 0x1000, Access::Read).is_some());
        assert_eq!(t.stale_served(), 1, "stale serve must be counted");
        // Uncovered entries are not stale; serving them counts nothing.
        assert!(t.lookup(1, 0, 0x2000, Access::Read).is_some());
        assert!(t.lookup(1, 7, 0x1000, Access::Read).is_some());
        assert_eq!(t.stale_served(), 1);
        // A delivered covering invalidation finally kills it.
        t.set_policy(None);
        t.invalidate_vmid(0, 0, true);
        assert!(t.lookup(1, 0, 0x1000, Access::Read).is_none());
        assert!(t.stale_keys(1).is_empty());
    }

    #[test]
    fn delayed_deliveries_apply_at_settle() {
        let t = TlbSet::new(2);
        t.fill(1, 0, 0x1000, tr(0xa000));
        t.set_policy(Some(Arc::new(Always(RemoteDelivery::Delay))));
        t.invalidate_page(0, 0, 0x1000, true);
        assert!(
            t.lookup(1, 0, 0x1000, Access::Read).is_some(),
            "delayed delivery applied immediately"
        );
        assert_eq!(t.stale_served(), 1);
        t.settle(1);
        assert!(t.lookup(1, 0, 0x1000, Access::Read).is_none());
        assert!(t.stale_keys(1).is_empty());
    }

    #[test]
    fn a_fresh_fill_clears_the_stale_mark() {
        let t = TlbSet::new(2);
        t.fill(1, 0, 0x1000, tr(0xa000));
        t.set_policy(Some(Arc::new(Always(RemoteDelivery::Drop))));
        t.invalidate_page(0, 0, 0x1000, true);
        assert_eq!(t.stale_keys(1), vec![(0, 0x1000)]);
        // CPU 1 re-walks and re-fills: the new entry reflects the live
        // tables, so it is no longer stale.
        t.fill(1, 0, 0x1000, tr(0xd000));
        assert!(t.stale_keys(1).is_empty());
        t.lookup(1, 0, 0x1000, Access::Read);
        assert_eq!(t.stale_served(), 0);
    }
}
