//! Exception syndrome encoding (ESR_EL2).
//!
//! Entries into the hypervisor carry an exception syndrome in the real
//! architectural bit layout: the exception class in bits \[31:26\] and a
//! class-specific ISS in bits \[24:0\]. We encode exactly the classes pKVM
//! handles: `HVC` from EL1 (hypercalls), data aborts from lower exception
//! levels (stage 2 translation/permission faults), and SMC.

use crate::walk::{Access, Fault};

/// Exception class values (ESR_EL2.EC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ExceptionClass {
    /// HVC instruction executed at AArch64 EL1.
    Hvc64 = 0x16,
    /// SMC instruction trapped from AArch64 EL1.
    Smc64 = 0x17,
    /// Data abort from a lower exception level.
    DataAbortLowerEl = 0x24,
    /// Instruction abort from a lower exception level.
    InstAbortLowerEl = 0x20,
}

const ESR_EC_SHIFT: u64 = 26;
const ESR_ISS_MASK: u64 = (1 << 25) - 1;
const ISS_DABT_WNR: u64 = 1 << 6;
/// FSC encodings: translation fault level 0..3 = 0b0001'00 + level,
/// permission fault level 1..3 = 0b0011'00 + level.
const FSC_TRANSLATION_BASE: u64 = 0b000100;
const FSC_PERMISSION_BASE: u64 = 0b001100;

/// A raw exception syndrome register value.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Esr(pub u64);

impl Esr {
    /// Encodes an HVC from EL1 with the given immediate.
    pub const fn hvc64(imm16: u16) -> Self {
        Self(((ExceptionClass::Hvc64 as u64) << ESR_EC_SHIFT) | imm16 as u64)
    }

    /// Encodes an SMC from EL1.
    pub const fn smc64() -> Self {
        Self((ExceptionClass::Smc64 as u64) << ESR_EC_SHIFT)
    }

    /// Encodes a stage 2 data or instruction abort from a lower EL.
    pub fn abort(access: Access, fault: Fault) -> Self {
        let ec = match access {
            Access::Exec => ExceptionClass::InstAbortLowerEl,
            _ => ExceptionClass::DataAbortLowerEl,
        };
        let mut iss = match fault {
            Fault::Translation { level } => FSC_TRANSLATION_BASE + level as u64,
            Fault::Permission { level } => FSC_PERMISSION_BASE + level as u64,
            // Other faults are reported as level-0 translation faults; pKVM
            // treats anything unexpected as fatal anyway.
            _ => FSC_TRANSLATION_BASE,
        };
        if matches!(access, Access::Write) {
            iss |= ISS_DABT_WNR;
        }
        Self(((ec as u64) << ESR_EC_SHIFT) | iss)
    }

    /// Decodes the exception class, if it is one we model.
    pub const fn ec(self) -> Option<ExceptionClass> {
        match (self.0 >> ESR_EC_SHIFT) as u8 {
            0x16 => Some(ExceptionClass::Hvc64),
            0x17 => Some(ExceptionClass::Smc64),
            0x24 => Some(ExceptionClass::DataAbortLowerEl),
            0x20 => Some(ExceptionClass::InstAbortLowerEl),
            _ => None,
        }
    }

    /// The class-specific ISS field.
    pub const fn iss(self) -> u64 {
        self.0 & ESR_ISS_MASK
    }

    /// For an abort: `true` if the faulting access was a write.
    pub const fn is_write(self) -> bool {
        self.0 & ISS_DABT_WNR != 0
    }

    /// For an abort: `true` if the FSC encodes a translation fault.
    pub const fn is_translation_fault(self) -> bool {
        let fsc = self.iss() & 0b111111;
        fsc >= FSC_TRANSLATION_BASE && fsc < FSC_TRANSLATION_BASE + 4
    }

    /// For an abort: `true` if the FSC encodes a permission fault.
    pub const fn is_permission_fault(self) -> bool {
        let fsc = self.iss() & 0b111111;
        fsc >= FSC_PERMISSION_BASE && fsc < FSC_PERMISSION_BASE + 4
    }
}

impl core::fmt::Debug for Esr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Esr({:#010x}, ec={:?})", self.0, self.ec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hvc_roundtrip() {
        let esr = Esr::hvc64(0);
        assert_eq!(esr.ec(), Some(ExceptionClass::Hvc64));
        assert_eq!(esr.iss(), 0);
    }

    #[test]
    fn write_translation_abort() {
        let esr = Esr::abort(Access::Write, Fault::Translation { level: 3 });
        assert_eq!(esr.ec(), Some(ExceptionClass::DataAbortLowerEl));
        assert!(esr.is_write());
        assert!(esr.is_translation_fault());
        assert!(!esr.is_permission_fault());
    }

    #[test]
    fn exec_abort_uses_instruction_class() {
        let esr = Esr::abort(Access::Exec, Fault::Translation { level: 1 });
        assert_eq!(esr.ec(), Some(ExceptionClass::InstAbortLowerEl));
        assert!(!esr.is_write());
    }

    #[test]
    fn permission_fault_fsc() {
        let esr = Esr::abort(Access::Read, Fault::Permission { level: 2 });
        assert!(esr.is_permission_fault());
        assert!(!esr.is_translation_fault());
    }

    #[test]
    fn unknown_class_decodes_to_none() {
        assert_eq!(Esr(0).ec(), None);
    }
}
