//! The handful of system registers the simulation models.
//!
//! pKVM manages the translation configuration of the machine: its own
//! stage 1 root in `TTBR0_EL2` and the current stage 2 root plus VMID in
//! `VTTBR_EL2`. Context switching between the host and a guest is exactly
//! an update of `VTTBR_EL2`, so the register file here is what makes
//! "which page table does the hardware walk" an architectural, observable
//! fact rather than a convention.

use crate::addr::PhysAddr;

const VTTBR_BADDR_MASK: u64 = (1 << 48) - 2; // bits [47:1]
const VTTBR_VMID_SHIFT: u64 = 48;

/// A VTTBR_EL2 value: stage 2 root address plus VMID.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Vttbr(pub u64);

impl Vttbr {
    /// Encodes a VTTBR from a VMID and a table base address.
    pub fn new(vmid: u16, baddr: PhysAddr) -> Self {
        Self(((vmid as u64) << VTTBR_VMID_SHIFT) | (baddr.bits() & VTTBR_BADDR_MASK))
    }

    /// The VMID field.
    pub const fn vmid(self) -> u16 {
        (self.0 >> VTTBR_VMID_SHIFT) as u16
    }

    /// The stage 2 translation root.
    pub const fn baddr(self) -> PhysAddr {
        PhysAddr::new(self.0 & VTTBR_BADDR_MASK)
    }
}

/// Per-hardware-thread system register state relevant to translation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SysRegs {
    /// pKVM's own stage 1 translation root (EL2).
    pub ttbr0_el2: u64,
    /// Current stage 2 root and VMID (host or loaded guest).
    pub vttbr_el2: Vttbr,
    /// Hypervisor configuration; we track only the VM bit (stage 2 enable).
    pub hcr_el2: u64,
}

/// HCR_EL2.VM: stage 2 translation enable.
pub const HCR_VM: u64 = 1 << 0;

impl SysRegs {
    /// The stage 1 root as an address.
    pub const fn s1_root(&self) -> PhysAddr {
        PhysAddr::new(self.ttbr0_el2)
    }

    /// The current stage 2 root as an address.
    pub const fn s2_root(&self) -> PhysAddr {
        self.vttbr_el2.baddr()
    }
}

/// General-purpose register file of one hardware thread (x0-x30).
///
/// Hypercall arguments and return values travel through `x0..` exactly as
/// in the SMCCC convention the paper describes (function id in `x0`,
/// arguments in `x1..`, return value written back to `x1`... in pKVM's
/// host-call convention the return goes in `x1`).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct GprFile {
    /// The 31 general-purpose registers.
    pub x: [u64; 31],
}

impl GprFile {
    /// Reads register `xn`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 30`.
    #[inline]
    pub fn get(&self, n: usize) -> u64 {
        self.x[n]
    }

    /// Writes register `xn`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 30`.
    #[inline]
    pub fn set(&mut self, n: usize, v: u64) {
        self.x[n] = v;
    }
}

impl core::fmt::Debug for GprFile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Print only the argument registers; the rest are rarely interesting.
        write!(
            f,
            "GprFile {{ x0: {:#x}, x1: {:#x}, x2: {:#x}, x3: {:#x}, .. }}",
            self.x[0], self.x[1], self.x[2], self.x[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vttbr_roundtrip() {
        let v = Vttbr::new(7, PhysAddr::new(0x4123_4000));
        assert_eq!(v.vmid(), 7);
        assert_eq!(v.baddr(), PhysAddr::new(0x4123_4000));
    }

    #[test]
    fn vttbr_vmid_does_not_leak_into_baddr() {
        let v = Vttbr::new(u16::MAX, PhysAddr::new(0x4000_0000));
        assert_eq!(v.baddr(), PhysAddr::new(0x4000_0000));
        assert_eq!(v.vmid(), u16::MAX);
    }

    #[test]
    fn gpr_get_set() {
        let mut g = GprFile::default();
        g.set(0, 0xc600_0003);
        g.set(1, 0x1234);
        assert_eq!(g.get(0), 0xc600_0003);
        assert_eq!(g.get(1), 0x1234);
        assert_eq!(g.get(30), 0);
    }
}
