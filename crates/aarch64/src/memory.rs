//! Simulated physical memory.
//!
//! Physical memory is a sparse, page-granular byte store: pages are
//! allocated zero-filled on first write, so very large physical address
//! spaces (needed to reproduce pKVM bug 5, where huge DRAM made the linear
//! map overlap the IO space) cost nothing until touched.
//!
//! The address space is described by a list of [`MemRegion`]s: RAM regions
//! back translation tables, hypervisor memory and host/guest pages; MMIO
//! regions model devices. Accesses to MMIO are permitted but *logged*, so
//! tests (and the linear-map-overlap reproduction) can observe the
//! hypervisor touching device memory it never intended to.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::sync::{Mutex, RwLock};

use crate::addr::{PhysAddr, PAGE_MASK, PAGE_SIZE};
use crate::desc::Pte;

/// Dirty-page tracking: a generational log of every page the simulated
/// system writes.
///
/// Consumers (the ghost oracle's incremental abstraction cache) take a
/// [`WriteLog::snapshot_generation`] *before* reading derived state, and
/// later ask [`WriteLog::dirty_since`] that snapshot to learn which pages
/// may have invalidated it. Writes racing with the read land at or after
/// the snapshot generation and so are re-reported next time — the log
/// over-approximates, never under-reports.
///
/// Tracking is off by default (one relaxed atomic load per write); the
/// instrumented machine switches it on when its hooks want dirty
/// information. The log is bounded: on overflow the oldest half is
/// discarded and snapshots from before the trim point report `None`
/// ("unknown — assume everything dirty").
#[derive(Debug, Default)]
pub struct WriteLog {
    enabled: AtomicBool,
    inner: Mutex<WriteLogInner>,
}

#[derive(Debug, Default)]
struct WriteLogInner {
    /// Current generation; bumped by every snapshot.
    generation: u64,
    /// `(generation, pfn)` in non-decreasing generation order.
    entries: VecDeque<(u64, u64)>,
    /// Pages already logged in the current generation (dedup).
    seen: HashSet<u64>,
    /// Snapshots older than this have lost entries to trimming.
    trimmed_before: u64,
}

/// Cap on retained log entries; oldest half is dropped on overflow.
const WRITE_LOG_CAP: usize = 1 << 16;

impl WriteLog {
    /// Returns `true` if writes are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Switches recording on or off. Turning it off clears the log, so
    /// pre-existing snapshots conservatively report `None`.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
        if !on {
            let mut l = self.inner.lock();
            l.trimmed_before = l.generation + 1;
            l.entries.clear();
            l.seen.clear();
        }
    }

    /// The current generation (diagnostics; snapshots come from
    /// [`Self::snapshot_generation`]).
    pub fn generation(&self) -> u64 {
        self.inner.lock().generation
    }

    /// Retained log entries (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Returns `true` if no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Opens a new generation and returns it: every write logged from now
    /// on — including writes racing with state the caller is about to
    /// read — satisfies `dirty_since(returned)`.
    pub fn snapshot_generation(&self) -> u64 {
        let mut l = self.inner.lock();
        l.generation += 1;
        l.seen.clear();
        l.generation
    }

    /// The set of pages written at or after snapshot `gen`, or `None` if
    /// the log cannot answer (tracking off, or `gen` trimmed away) and the
    /// caller must assume everything is dirty.
    pub fn dirty_since(&self, gen: u64) -> Option<BTreeSet<u64>> {
        if !self.enabled() {
            return None;
        }
        let l = self.inner.lock();
        if gen < l.trimmed_before {
            return None;
        }
        // Entries are in generation order: the answer is a suffix.
        Some(
            l.entries
                .iter()
                .rev()
                .take_while(|&&(g, _)| g >= gen)
                .map(|&(_, pfn)| pfn)
                .collect(),
        )
    }

    fn record(&self, pfn: u64) {
        if !self.enabled() {
            return;
        }
        let mut l = self.inner.lock();
        if !l.seen.insert(pfn) {
            return;
        }
        let g = l.generation;
        l.entries.push_back((g, pfn));
        if l.entries.len() > WRITE_LOG_CAP {
            l.entries.drain(..WRITE_LOG_CAP / 2);
            // The oldest retained generation may now be incomplete.
            l.trimmed_before = l.entries.front().map_or(g + 1, |&(g, _)| g + 1);
        }
    }
}

/// The kind of a physical-memory region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionKind {
    /// DRAM: ordinary byte-addressable memory.
    Ram,
    /// Device (MMIO) space: accesses are logged.
    Mmio,
}

/// A contiguous region of the physical address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRegion {
    /// First byte of the region.
    pub base: PhysAddr,
    /// Region length in bytes.
    pub size: u64,
    /// RAM or MMIO.
    pub kind: RegionKind,
}

impl MemRegion {
    /// A RAM region `[base, base+size)`.
    pub const fn ram(base: u64, size: u64) -> Self {
        Self {
            base: PhysAddr::new(base),
            size,
            kind: RegionKind::Ram,
        }
    }

    /// An MMIO region `[base, base+size)`.
    pub const fn mmio(base: u64, size: u64) -> Self {
        Self {
            base: PhysAddr::new(base),
            size,
            kind: RegionKind::Mmio,
        }
    }

    /// Returns `true` if `pa` lies within this region.
    #[inline]
    pub fn contains(&self, pa: PhysAddr) -> bool {
        pa.bits() >= self.base.bits() && pa.bits() - self.base.bits() < self.size
    }

    /// One past the last byte of the region.
    #[inline]
    pub fn end(&self) -> PhysAddr {
        PhysAddr::new(self.base.bits() + self.size)
    }
}

/// Error returned for accesses outside every region ("bus error").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusError {
    /// The offending physical address.
    pub addr: PhysAddr,
}

impl core::fmt::Display for BusError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "bus error at {}", self.addr)
    }
}

impl std::error::Error for BusError {}

/// Sparse simulated physical memory.
pub struct PhysMem {
    regions: Vec<MemRegion>,
    pages: RwLock<HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>>,
    mmio_reads: AtomicU64,
    mmio_writes: AtomicU64,
    write_log: WriteLog,
}

impl PhysMem {
    /// Creates memory with the given region layout.
    ///
    /// # Panics
    ///
    /// Panics if any regions overlap or are not page aligned.
    pub fn new(regions: Vec<MemRegion>) -> Self {
        for r in &regions {
            assert!(
                r.base.is_page_aligned() && r.size % PAGE_SIZE == 0,
                "misaligned region {r:?}"
            );
        }
        let mut sorted = regions.clone();
        sorted.sort_by_key(|r| r.base.bits());
        for w in sorted.windows(2) {
            assert!(
                w[0].end().bits() <= w[1].base.bits(),
                "overlapping regions {w:?}"
            );
        }
        Self {
            regions,
            pages: RwLock::new(HashMap::new()),
            mmio_reads: AtomicU64::new(0),
            mmio_writes: AtomicU64::new(0),
            write_log: WriteLog::default(),
        }
    }

    /// The region layout.
    pub fn regions(&self) -> &[MemRegion] {
        &self.regions
    }

    /// Looks up the region containing `pa`.
    pub fn region_of(&self, pa: PhysAddr) -> Option<&MemRegion> {
        self.regions.iter().find(|r| r.contains(pa))
    }

    /// Returns `true` if `pa` is backed by RAM.
    pub fn is_ram(&self, pa: PhysAddr) -> bool {
        matches!(self.region_of(pa), Some(r) if r.kind == RegionKind::Ram)
    }

    /// Returns `true` if `pa` is in a device region.
    pub fn is_mmio(&self, pa: PhysAddr) -> bool {
        matches!(self.region_of(pa), Some(r) if r.kind == RegionKind::Mmio)
    }

    /// Number of MMIO read accesses performed so far.
    pub fn mmio_reads(&self) -> u64 {
        self.mmio_reads.load(Ordering::Relaxed)
    }

    /// Number of MMIO write accesses performed so far.
    pub fn mmio_writes(&self) -> u64 {
        self.mmio_writes.load(Ordering::Relaxed)
    }

    /// The dirty-page log recording this memory's writes.
    pub fn write_log(&self) -> &WriteLog {
        &self.write_log
    }

    /// Number of RAM pages currently backed by real storage (touched pages).
    pub fn backed_pages(&self) -> usize {
        self.pages.read().len()
    }

    fn note_access(&self, pa: PhysAddr, write: bool) -> Result<(), BusError> {
        match self.region_of(pa) {
            None => Err(BusError { addr: pa }),
            Some(r) if r.kind == RegionKind::Mmio => {
                if write {
                    self.mmio_writes.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.mmio_reads.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }
            Some(_) => Ok(()),
        }
    }

    /// Reads a naturally-aligned 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] for addresses outside every region.
    ///
    /// # Panics
    ///
    /// Panics on misaligned addresses (the simulated hardware does not issue
    /// misaligned descriptor accesses).
    pub fn read_u64(&self, pa: PhysAddr) -> Result<u64, BusError> {
        assert!(pa.bits().is_multiple_of(8), "misaligned u64 read at {pa}");
        self.note_access(pa, false)?;
        let pages = self.pages.read();
        Ok(match pages.get(&pa.pfn()) {
            None => 0,
            Some(page) => {
                let off = (pa.bits() & PAGE_MASK) as usize;
                u64::from_le_bytes(page[off..off + 8].try_into().unwrap())
            }
        })
    }

    /// Writes a naturally-aligned 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] for addresses outside every region.
    ///
    /// # Panics
    ///
    /// Panics on misaligned addresses.
    pub fn write_u64(&self, pa: PhysAddr, value: u64) -> Result<(), BusError> {
        assert!(pa.bits().is_multiple_of(8), "misaligned u64 write at {pa}");
        self.note_access(pa, true)?;
        self.write_log.record(pa.pfn());
        let mut pages = self.pages.write();
        let page = pages
            .entry(pa.pfn())
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        let off = (pa.bits() & PAGE_MASK) as usize;
        page[off..off + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `pa` (may cross page boundaries).
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if any touched page is outside every region.
    pub fn read_bytes(&self, pa: PhysAddr, buf: &mut [u8]) -> Result<(), BusError> {
        let pages = self.pages.read();
        for (i, b) in buf.iter_mut().enumerate() {
            let a = pa.wrapping_add(i as u64);
            if a.page_offset() == 0 || i == 0 {
                self.note_access(a, false)?;
            }
            *b = match pages.get(&a.pfn()) {
                None => 0,
                Some(page) => page[(a.bits() & PAGE_MASK) as usize],
            };
        }
        Ok(())
    }

    /// Writes `buf` starting at `pa` (may cross page boundaries).
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if any touched page is outside every region.
    pub fn write_bytes(&self, pa: PhysAddr, buf: &[u8]) -> Result<(), BusError> {
        let mut pages = self.pages.write();
        for (i, b) in buf.iter().enumerate() {
            let a = pa.wrapping_add(i as u64);
            if a.page_offset() == 0 || i == 0 {
                self.note_access(a, true)?;
                self.write_log.record(a.pfn());
            }
            let page = pages
                .entry(a.pfn())
                .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
            page[(a.bits() & PAGE_MASK) as usize] = *b;
        }
        Ok(())
    }

    /// Zeroes the 4 KiB page containing `pa`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] for addresses outside every region.
    pub fn zero_page(&self, pa: PhysAddr) -> Result<(), BusError> {
        self.note_access(pa, true)?;
        self.write_log.record(pa.pfn());
        // Dropping the backing restores zero-fill semantics cheaply.
        self.pages.write().remove(&pa.pfn());
        Ok(())
    }

    /// Reads the `idx`th descriptor of the table whose base is `table`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] for addresses outside every region.
    pub fn read_pte(&self, table: PhysAddr, idx: usize) -> Result<Pte, BusError> {
        debug_assert!(idx < 512);
        Ok(Pte(self.read_u64(table.wrapping_add(8 * idx as u64))?))
    }

    /// Reads all 512 descriptors of the table page whose base is `table`
    /// in one access: one region check, one lock acquire, one page lookup
    /// and one 4 KiB copy instead of 512 of each. An unbacked page reads
    /// as all-zero descriptors, matching [`PhysMem::read_u64`]'s
    /// zero-fill semantics. The page-table interpreter leans on this:
    /// abstracting a table level touches every descriptor, and the
    /// per-descriptor bookkeeping dominates the walk otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] for table bases outside every region.
    ///
    /// # Panics
    ///
    /// Panics if `table` is not page aligned (table bases always are).
    pub fn read_table(&self, table: PhysAddr) -> Result<Box<[Pte; 512]>, BusError> {
        assert!(table.is_page_aligned(), "misaligned table base {table}");
        self.note_access(table, false)?;
        let mut out = Box::new([Pte(0); 512]);
        let pages = self.pages.read();
        if let Some(page) = pages.get(&table.pfn()) {
            for (i, chunk) in page.chunks_exact(8).enumerate() {
                out[i] = Pte(u64::from_le_bytes(chunk.try_into().unwrap()));
            }
        }
        Ok(out)
    }

    /// Writes the `idx`th descriptor of the table whose base is `table`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] for addresses outside every region.
    pub fn write_pte(&self, table: PhysAddr, idx: usize, pte: Pte) -> Result<(), BusError> {
        debug_assert!(idx < 512);
        self.write_u64(table.wrapping_add(8 * idx as u64), pte.bits())
    }
}

impl core::fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PhysMem")
            .field("regions", &self.regions)
            .field("backed_pages", &self.backed_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysMem {
        PhysMem::new(vec![
            MemRegion::ram(0x4000_0000, 0x100_0000),
            MemRegion::mmio(0x900_0000, 0x1_0000),
        ])
    }

    #[test]
    fn zero_fill_on_first_read() {
        let m = mem();
        assert_eq!(m.read_u64(PhysAddr::new(0x4000_0000)).unwrap(), 0);
        assert_eq!(m.backed_pages(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let m = mem();
        m.write_u64(PhysAddr::new(0x4000_0008), 0xdead_beef_cafe_f00d)
            .unwrap();
        assert_eq!(
            m.read_u64(PhysAddr::new(0x4000_0008)).unwrap(),
            0xdead_beef_cafe_f00d
        );
        assert_eq!(m.read_u64(PhysAddr::new(0x4000_0000)).unwrap(), 0);
        assert_eq!(m.backed_pages(), 1);
    }

    #[test]
    fn bus_error_outside_regions() {
        let m = mem();
        assert!(m.read_u64(PhysAddr::new(0x1000)).is_err());
        assert!(m.write_u64(PhysAddr::new(0x2_0000_0000), 1).is_err());
    }

    #[test]
    fn mmio_accesses_are_counted() {
        let m = mem();
        assert_eq!(m.mmio_writes(), 0);
        m.write_u64(PhysAddr::new(0x900_0000), 7).unwrap();
        m.read_u64(PhysAddr::new(0x900_0008)).unwrap();
        assert_eq!(m.mmio_writes(), 1);
        assert_eq!(m.mmio_reads(), 1);
    }

    #[test]
    fn zero_page_clears_contents() {
        let m = mem();
        let pa = PhysAddr::new(0x4000_2000);
        m.write_u64(pa, 42).unwrap();
        m.zero_page(pa.wrapping_add(0x10)).unwrap();
        assert_eq!(m.read_u64(pa).unwrap(), 0);
    }

    #[test]
    fn bytes_roundtrip_across_page_boundary() {
        let m = mem();
        let pa = PhysAddr::new(0x4000_0ff8);
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
        m.write_bytes(pa, &data).unwrap();
        let mut back = [0u8; 16];
        m.read_bytes(pa, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(m.backed_pages(), 2);
    }

    #[test]
    fn pte_accessors() {
        let m = mem();
        let table = PhysAddr::new(0x4001_0000);
        m.write_pte(table, 5, Pte(0x123)).unwrap();
        assert_eq!(m.read_pte(table, 5).unwrap().bits(), 0x123);
        assert_eq!(m.read_pte(table, 4).unwrap().bits(), 0);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_regions_rejected() {
        let _ = PhysMem::new(vec![
            MemRegion::ram(0x1000, 0x2000),
            MemRegion::ram(0x2000, 0x2000),
        ]);
    }

    #[test]
    fn write_log_disabled_by_default_and_answers_none() {
        let m = mem();
        m.write_u64(PhysAddr::new(0x4000_0000), 1).unwrap();
        assert!(!m.write_log().enabled());
        assert!(m.write_log().is_empty());
        assert_eq!(m.write_log().dirty_since(0), None);
    }

    #[test]
    fn write_log_records_each_written_page_once_per_generation() {
        let m = mem();
        m.write_log().set_enabled(true);
        let snap = m.write_log().snapshot_generation();
        // Two writes to the same page, one to another; reads don't count.
        m.write_u64(PhysAddr::new(0x4000_0000), 1).unwrap();
        m.write_u64(PhysAddr::new(0x4000_0008), 2).unwrap();
        m.write_u64(PhysAddr::new(0x4000_1000), 3).unwrap();
        m.read_u64(PhysAddr::new(0x4000_2000)).unwrap();
        let dirty = m.write_log().dirty_since(snap).unwrap();
        assert_eq!(
            dirty.into_iter().collect::<Vec<_>>(),
            vec![0x40000, 0x40001]
        );
        assert_eq!(m.write_log().len(), 2, "same-page writes deduplicated");
    }

    #[test]
    fn snapshot_bumps_the_generation_and_resets_dedup() {
        let m = mem();
        m.write_log().set_enabled(true);
        let g1 = m.write_log().snapshot_generation();
        m.write_u64(PhysAddr::new(0x4000_0000), 1).unwrap();
        let g2 = m.write_log().snapshot_generation();
        assert!(g2 > g1);
        // The same page dirtied again lands in the *new* generation.
        m.write_u64(PhysAddr::new(0x4000_0000), 2).unwrap();
        assert_eq!(m.write_log().dirty_since(g2).unwrap().len(), 1);
        // And the older snapshot still sees both generations' entries.
        assert_eq!(m.write_log().dirty_since(g1).unwrap().len(), 1);
    }

    #[test]
    fn write_log_covers_byte_writes_and_page_zeroing() {
        let m = mem();
        m.write_log().set_enabled(true);
        let snap = m.write_log().snapshot_generation();
        // A byte write straddling a page boundary dirties both pages.
        m.write_bytes(PhysAddr::new(0x4000_0ffc), &[0xff; 8])
            .unwrap();
        m.zero_page(PhysAddr::new(0x4000_3000)).unwrap();
        let dirty = m.write_log().dirty_since(snap).unwrap();
        assert!(dirty.contains(&0x40000));
        assert!(dirty.contains(&0x40001));
        assert!(dirty.contains(&0x40003));
    }

    #[test]
    fn disabling_clears_the_log_and_invalidates_old_snapshots() {
        let m = mem();
        m.write_log().set_enabled(true);
        let snap = m.write_log().snapshot_generation();
        m.write_u64(PhysAddr::new(0x4000_0000), 1).unwrap();
        m.write_log().set_enabled(false);
        m.write_log().set_enabled(true);
        // The old snapshot predates the gap in coverage: no answer.
        assert_eq!(m.write_log().dirty_since(snap), None);
        // A fresh snapshot works again.
        let snap2 = m.write_log().snapshot_generation();
        m.write_u64(PhysAddr::new(0x4000_1000), 1).unwrap();
        assert_eq!(m.write_log().dirty_since(snap2).unwrap().len(), 1);
    }

    #[test]
    fn overflow_trims_oldest_entries_and_reports_unanswerable() {
        let m = mem();
        m.write_log().set_enabled(true);
        let snap = m.write_log().snapshot_generation();
        // One distinct page per generation, enough to overflow the cap.
        for i in 0..(WRITE_LOG_CAP as u64 + 2) {
            m.write_log().snapshot_generation();
            m.write_u64(PhysAddr::new(0x4000_0000 + (i % 0x1000) * 0x1000), i)
                .unwrap();
        }
        assert!(m.write_log().len() <= WRITE_LOG_CAP);
        // The trimmed-away snapshot cannot be answered...
        assert_eq!(m.write_log().dirty_since(snap), None);
        // ...but a current one can.
        let snap2 = m.write_log().snapshot_generation();
        m.write_u64(PhysAddr::new(0x4000_5000), 9).unwrap();
        assert_eq!(m.write_log().dirty_since(snap2).unwrap().len(), 1);
    }
}
