//! The generic translation-table walker (`kvm_pgtable` analog).
//!
//! As the paper describes (§4.1), pKVM manipulates page tables through a
//! single generic, higher-order walker shared with KVM: the walk traverses
//! the table tree for an input-address range following the architectural
//! translation-table-walk algorithm, invoking visitor callbacks at table
//! entries and/or leaves. Concrete operations — mapping, ownership
//! annotation, state checks — are visitors; memory for new table nodes
//! comes through pluggable [`MmOps`] (hypervisor pool or vCPU memcache).
//!
//! The walker reports every table-node allocation and free through
//! [`TableEvent`]s so the caller can feed the ghost separation-footprint
//! check without the walker knowing anything about the oracle.

use pkvm_aarch64::addr::{
    ia_index, level_pages, level_size, PhysAddr, LEAF_LEVEL, PAGE_SIZE, PTES_PER_TABLE, START_LEVEL,
};
use pkvm_aarch64::attrs::{Attrs, Stage};
use pkvm_aarch64::desc::{EntryKind, Pte};
use pkvm_aarch64::memory::PhysMem;

use crate::error::{Errno, HypResult};
use crate::memcache::Memcache;
use crate::pool::HypPool;

/// Visit leaf (and invalid) entries.
pub const WALK_LEAF: u8 = 1 << 0;
/// Visit table entries before descending.
pub const WALK_TABLE_PRE: u8 = 1 << 1;
/// Visit table entries after the subtree.
pub const WALK_TABLE_POST: u8 = 1 << 2;

/// One translation table: a root plus its stage.
#[derive(Clone, Copy, Debug)]
pub struct KvmPgtable {
    /// Physical address of the root table node.
    pub root: PhysAddr,
    /// Stage 1 (pKVM's own) or stage 2 (host/guest).
    pub stage: Stage,
}

/// A table-node allocation or free performed during a walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableEvent {
    /// A page became a translation-table node.
    Alloc(PhysAddr),
    /// A translation-table node page was released.
    Free(PhysAddr),
}

/// Source of pages for new table nodes.
pub trait MmOps {
    /// Allocates one zeroed page.
    ///
    /// # Errors
    ///
    /// Returns `ENOMEM` when the source is exhausted.
    fn zalloc_page(&mut self, mem: &PhysMem) -> HypResult<PhysAddr>;

    /// Returns a page to the source.
    fn free_page(&mut self, mem: &PhysMem, page: PhysAddr);
}

/// Allocation from the hypervisor's buddy pool (host/hyp tables).
pub struct PoolOps<'a>(pub &'a mut HypPool);

impl MmOps for PoolOps<'_> {
    fn zalloc_page(&mut self, mem: &PhysMem) -> HypResult<PhysAddr> {
        let pa = self.0.alloc_page()?;
        mem.zero_page(pa).expect("pool pages are backed RAM");
        Ok(pa)
    }

    fn free_page(&mut self, _mem: &PhysMem, page: PhysAddr) {
        self.0.put_page(page);
    }
}

/// Allocation from a vCPU memcache (guest tables).
pub struct McOps<'a>(pub &'a mut Memcache);

impl MmOps for McOps<'_> {
    fn zalloc_page(&mut self, mem: &PhysMem) -> HypResult<PhysAddr> {
        let pa = self.0.pop(mem)?;
        mem.zero_page(pa).expect("memcache pages are backed RAM");
        Ok(pa)
    }

    fn free_page(&mut self, mem: &PhysMem, page: PhysAddr) {
        self.0.push(mem, page);
    }
}

/// An allocation source that always fails; for walks that must not need
/// memory (checks, unmaps of page-granular ranges).
pub struct NoAlloc;

impl MmOps for NoAlloc {
    fn zalloc_page(&mut self, _mem: &PhysMem) -> HypResult<PhysAddr> {
        Err(Errno::ENOMEM)
    }

    fn free_page(&mut self, _mem: &PhysMem, _page: PhysAddr) {
        panic!("NoAlloc cannot take pages back");
    }
}

/// Mutable walk state threaded through visitors: memory, the allocation
/// source, and the table-node event log.
pub struct WalkState<'a> {
    /// Simulated physical memory holding the tables.
    pub mem: &'a PhysMem,
    mm: &'a mut dyn MmOps,
    /// Table-node allocations/frees performed so far in this walk.
    pub events: Vec<TableEvent>,
}

impl<'a> WalkState<'a> {
    /// Creates walk state over `mem` allocating from `mm`.
    pub fn new(mem: &'a PhysMem, mm: &'a mut dyn MmOps) -> Self {
        Self {
            mem,
            mm,
            events: Vec::new(),
        }
    }

    /// Allocates a zeroed table node, logging the event.
    ///
    /// # Errors
    ///
    /// Returns `ENOMEM` when the allocation source is exhausted.
    pub fn zalloc_table(&mut self) -> HypResult<PhysAddr> {
        let pa = self
            .mm
            .zalloc_page(self.mem)
            .inspect_err(|_| crate::cov::hit("pgtable/oom"))?;
        self.events.push(TableEvent::Alloc(pa));
        Ok(pa)
    }

    /// Releases a table node, logging the event.
    pub fn free_table(&mut self, page: PhysAddr) {
        self.mm.free_page(self.mem, page);
        self.events.push(TableEvent::Free(page));
    }

    /// Reads descriptor `idx` of `table`.
    pub fn read(&self, table: PhysAddr, idx: usize) -> Pte {
        self.mem
            .read_pte(table, idx)
            .expect("table nodes are backed RAM")
    }

    /// Writes descriptor `idx` of `table`.
    pub fn write(&self, table: PhysAddr, idx: usize, pte: Pte) {
        self.mem
            .write_pte(table, idx, pte)
            .expect("table nodes are backed RAM")
    }
}

/// Why the visitor is being invoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VisitKind {
    /// A table entry, before descending into it.
    TablePre,
    /// A leaf or invalid entry.
    Leaf,
    /// A table entry, after its subtree was walked.
    TablePost,
}

/// The walker's view of one descriptor slot.
#[derive(Clone, Copy, Debug)]
pub struct WalkCtx {
    /// Start of the walked range clipped to this entry's region.
    pub ia: u64,
    /// End of the walked range clipped to this entry's region.
    pub end: u64,
    /// Level of the entry.
    pub level: u8,
    /// Table node holding the entry.
    pub table: PhysAddr,
    /// Index of the entry within the node.
    pub idx: usize,
    /// The descriptor value when the walker reached it.
    pub old: Pte,
}

impl WalkCtx {
    /// Base input address of the region this entry translates.
    pub fn entry_base(&self) -> u64 {
        self.ia & !(level_size(self.level) - 1)
    }

    /// Returns `true` if the walked range covers this entry's region
    /// entirely (a block mapping may be installed).
    pub fn covers_entry(&self) -> bool {
        self.ia == self.entry_base() && self.end == self.entry_base() + level_size(self.level)
    }
}

/// A walk visitor: the higher-order callback of the generic walker.
pub trait Visitor {
    /// Which visit kinds this visitor wants ([`WALK_LEAF`] etc.).
    fn flags(&self) -> u8;

    /// Called at each requested entry; may rewrite the descriptor through
    /// `st` (the walker re-reads it and descends into freshly-installed
    /// tables).
    ///
    /// # Errors
    ///
    /// Any error aborts the walk and is propagated to the caller.
    fn visit(&mut self, st: &mut WalkState<'_>, kind: VisitKind, ctx: &WalkCtx) -> HypResult;
}

/// Walks `pgt` over `[addr, addr + size)` invoking `visitor`.
///
/// # Errors
///
/// Returns `EINVAL` for misaligned or empty ranges, or the first error
/// returned by the visitor.
pub fn kvm_pgtable_walk(
    pgt: &KvmPgtable,
    st: &mut WalkState<'_>,
    addr: u64,
    size: u64,
    visitor: &mut dyn Visitor,
) -> HypResult {
    if size == 0 || !addr.is_multiple_of(PAGE_SIZE) || !size.is_multiple_of(PAGE_SIZE) {
        return Err(Errno::EINVAL);
    }
    let end = addr.checked_add(size).ok_or(Errno::EINVAL)?;
    if end > 1 << 48 {
        return Err(Errno::ERANGE);
    }
    walk_table(st, pgt.root, START_LEVEL, addr, end, visitor)
}

fn walk_table(
    st: &mut WalkState<'_>,
    table: PhysAddr,
    level: u8,
    start: u64,
    end: u64,
    visitor: &mut dyn Visitor,
) -> HypResult {
    let flags = visitor.flags();
    let mut cur = start;
    while cur < end {
        let entry_base = cur & !(level_size(level) - 1);
        let clip_end = end.min(entry_base + level_size(level));
        let idx = ia_index(cur, level);
        let old = st.read(table, idx);
        let ctx = WalkCtx {
            ia: cur,
            end: clip_end,
            level,
            table,
            idx,
            old,
        };
        match old.kind(level) {
            EntryKind::Table => {
                if flags & WALK_TABLE_PRE != 0 {
                    visitor.visit(st, VisitKind::TablePre, &ctx)?;
                }
                let now = st.read(table, idx);
                if now.kind(level) == EntryKind::Table {
                    walk_table(st, now.table_addr(), level + 1, cur, clip_end, visitor)?;
                }
                if flags & WALK_TABLE_POST != 0 {
                    let now = st.read(table, idx);
                    let ctx = WalkCtx { old: now, ..ctx };
                    if now.kind(level) == EntryKind::Table {
                        visitor.visit(st, VisitKind::TablePost, &ctx)?;
                    }
                }
            }
            _ => {
                if flags & WALK_LEAF != 0 {
                    visitor.visit(st, VisitKind::Leaf, &ctx)?;
                }
                // The visitor may have replaced a leaf/invalid entry with a
                // table (block split, or lazy table install): descend.
                let now = st.read(table, idx);
                if now != old && now.kind(level) == EntryKind::Table {
                    walk_table(st, now.table_addr(), level + 1, cur, clip_end, visitor)?;
                    if flags & WALK_TABLE_POST != 0 {
                        let now = st.read(table, idx);
                        let ctx = WalkCtx { old: now, ..ctx };
                        if now.kind(level) == EntryKind::Table {
                            visitor.visit(st, VisitKind::TablePost, &ctx)?;
                        }
                    }
                }
            }
        }
        cur = clip_end;
    }
    Ok(())
}

/// Finds the deepest descriptor reached for `addr` (the `kvm_pgtable_get_leaf`
/// analog). Returns the descriptor and its level; the descriptor may be
/// invalid (carrying an owner annotation).
pub fn get_leaf(mem: &PhysMem, pgt: &KvmPgtable, addr: u64) -> (Pte, u8) {
    let mut table = pgt.root;
    for level in START_LEVEL..=LEAF_LEVEL {
        let pte = mem
            .read_pte(table, ia_index(addr, level))
            .expect("tables are backed");
        if pte.kind(level) == EntryKind::Table {
            table = pte.table_addr();
        } else {
            return (pte, level);
        }
    }
    unreachable!("level 3 entries are never tables")
}

/// The mapping visitor (`stage2_map_walker` / `hyp_map_walker` analog):
/// installs `[ia_base, ..) -> phys_base + offset` with `attrs`, using block
/// mappings where alignment permits and splitting existing blocks that
/// partially overlap.
pub struct MapWalker {
    /// Stage of the target table (selects the attribute encoding).
    pub stage: Stage,
    /// Physical base the walked range maps to.
    pub phys_base: PhysAddr,
    /// Input-address base of the walked range.
    pub ia_base: u64,
    /// Attributes (including software page-state bits) for the new leaves.
    pub attrs: Attrs,
    /// Never install blocks; force page-granular mappings.
    pub force_pages: bool,
    /// Fault injection: corrupt block output addresses by one block
    /// ([`crate::faults::Fault::SynBlockAlignment`]).
    pub corrupt_block_oa: bool,
}

/// Replaces the (leaf or invalid) entry at `ctx` with a freshly-allocated
/// next-level table that preserves its meaning: block mappings are
/// replicated at the finer granule, and owner annotations are copied into
/// every child slot. The walker then descends into the new table.
fn split_entry(stage: Stage, st: &mut WalkState<'_>, ctx: &WalkCtx) -> HypResult {
    let table = st.zalloc_table()?;
    match ctx.old.kind(ctx.level) {
        EntryKind::Invalid => {
            // Preserve any owner annotation across the split.
            if ctx.old.bits() != 0 {
                for i in 0..PTES_PER_TABLE as usize {
                    st.write(table, i, ctx.old);
                }
            }
        }
        EntryKind::Block => {
            crate::cov::hit("pgtable/split_block");
            let child_level = ctx.level + 1;
            let child_size = level_size(child_level);
            let oa = ctx.old.leaf_oa(ctx.level);
            let attrs = ctx.old.leaf_attrs(stage);
            for i in 0..PTES_PER_TABLE as usize {
                let coa = oa.wrapping_add(i as u64 * child_size);
                st.write(table, i, Pte::leaf(stage, child_level, coa, attrs));
            }
        }
        k => unreachable!("split of {k:?}"),
    }
    st.write(ctx.table, ctx.idx, Pte::table(table));
    Ok(())
}

impl Visitor for MapWalker {
    fn flags(&self) -> u8 {
        WALK_LEAF
    }

    fn visit(&mut self, st: &mut WalkState<'_>, _kind: VisitKind, ctx: &WalkCtx) -> HypResult {
        let target = self.phys_base.wrapping_add(ctx.ia - self.ia_base);
        if ctx.level == LEAF_LEVEL {
            crate::cov::hit("pgtable/map_page");
            st.write(
                ctx.table,
                ctx.idx,
                Pte::leaf(self.stage, LEAF_LEVEL, target, self.attrs),
            );
            return Ok(());
        }
        let target_aligned = target.bits().is_multiple_of(level_size(ctx.level));
        if ctx.level >= 1 && !self.force_pages && ctx.covers_entry() && target_aligned {
            crate::cov::hit("pgtable/map_block");
            let oa = if self.corrupt_block_oa {
                // Buggy path: the block OA computation is off by one whole
                // block, silently mapping the wrong physical range.
                target.wrapping_add(level_size(ctx.level))
            } else {
                target
            };
            st.write(
                ctx.table,
                ctx.idx,
                Pte::leaf(self.stage, ctx.level, oa, self.attrs),
            );
            return Ok(());
        }
        // Partial coverage or misalignment: ensure a table and let the
        // walker descend into it.
        split_entry(self.stage, st, ctx)
    }
}

/// The unmap/annotate visitor (`stage2_set_owner` / `hyp_unmap` analog):
/// replaces the walked range with the invalid descriptor `annotation`
/// (zero for a plain unmap), splitting partially-covered blocks and
/// freeing table nodes that become uniformly invalid.
pub struct SetOwnerWalker {
    /// Stage of the target table (needed when splitting blocks).
    pub stage: Stage,
    /// The invalid descriptor to write over the range.
    pub annotation: Pte,
}

impl Visitor for SetOwnerWalker {
    fn flags(&self) -> u8 {
        WALK_LEAF | WALK_TABLE_POST
    }

    fn visit(&mut self, st: &mut WalkState<'_>, kind: VisitKind, ctx: &WalkCtx) -> HypResult {
        match kind {
            VisitKind::Leaf => {
                if ctx.old == self.annotation {
                    // Already carries exactly this annotation: nothing to do.
                    return Ok(());
                }
                if !ctx.covers_entry() && ctx.level < LEAF_LEVEL {
                    // Partially-covered block or coarse invalid entry:
                    // split, preserving the uncovered part (block contents
                    // or prior annotation); the walker descends and
                    // annotates only the covered children.
                    split_entry(self.stage, st, ctx)
                } else {
                    st.write(ctx.table, ctx.idx, self.annotation);
                    Ok(())
                }
            }
            VisitKind::TablePost => {
                // Free child tables that became uniformly invalid.
                let child = ctx.old.table_addr();
                let first = st.read(child, 0);
                if first.is_valid() {
                    return Ok(());
                }
                for i in 1..PTES_PER_TABLE as usize {
                    if st.read(child, i) != first {
                        return Ok(());
                    }
                }
                crate::cov::hit("pgtable/free_table");
                st.write(ctx.table, ctx.idx, first);
                st.free_table(child);
                Ok(())
            }
            VisitKind::TablePre => unreachable!("not requested"),
        }
    }
}

/// A visitor adapter running a closure at each leaf/invalid entry.
pub struct LeafVisitor<F>(pub F);

impl<F: FnMut(&mut WalkState<'_>, &WalkCtx) -> HypResult> Visitor for LeafVisitor<F> {
    fn flags(&self) -> u8 {
        WALK_LEAF
    }

    fn visit(&mut self, st: &mut WalkState<'_>, _kind: VisitKind, ctx: &WalkCtx) -> HypResult {
        (self.0)(st, ctx)
    }
}

/// Collects every *mapped* page-range in `[addr, addr+size)` of `pgt` as
/// `(ia, pa, nr_pages, attrs)` tuples.
pub fn collect_mapped(
    mem: &PhysMem,
    pgt: &KvmPgtable,
    addr: u64,
    size: u64,
) -> Vec<(u64, PhysAddr, u64, Attrs)> {
    let mut out = Vec::new();
    let stage = pgt.stage;
    let mut mm = NoAlloc;
    let mut st = WalkState::new(mem, &mut mm);
    let mut v = LeafVisitor(|_st: &mut WalkState<'_>, ctx: &WalkCtx| {
        match ctx.old.kind(ctx.level) {
            EntryKind::Block | EntryKind::Page => {
                let off = ctx.ia - ctx.entry_base();
                let pa = ctx.old.leaf_oa(ctx.level).wrapping_add(off);
                let pages = (ctx.end - ctx.ia) / PAGE_SIZE;
                out.push((ctx.ia, pa, pages, ctx.old.leaf_attrs(stage)));
            }
            _ => {}
        }
        Ok(())
    });
    kvm_pgtable_walk(pgt, &mut st, addr, size, &mut v).expect("collect walk cannot fail");
    out
}

/// Destroys the whole tree below `pgt.root`, freeing every table node into
/// `mm` (the root itself is the caller's to free). Leaf contents are left
/// in place; callers unmap/reclaim leaves first.
pub fn destroy(mem: &PhysMem, pgt: &KvmPgtable, mm: &mut dyn MmOps) -> Vec<TableEvent> {
    struct Destroyer;
    impl Visitor for Destroyer {
        fn flags(&self) -> u8 {
            WALK_TABLE_POST
        }
        fn visit(&mut self, st: &mut WalkState<'_>, _k: VisitKind, ctx: &WalkCtx) -> HypResult {
            let child = ctx.old.table_addr();
            st.write(ctx.table, ctx.idx, Pte::invalid());
            st.free_table(child);
            Ok(())
        }
    }
    let mut st = WalkState::new(mem, mm);
    kvm_pgtable_walk(pgt, &mut st, 0, 1 << 48, &mut Destroyer).expect("destroy cannot fail");
    st.events
}

/// Convenience: number of pages spanned by `size` bytes.
pub fn size_to_pages(size: u64) -> u64 {
    size / PAGE_SIZE
}

/// Convenience: `nr` pages at `level` granularity worth of bytes.
pub fn pages_to_size(nr: u64) -> u64 {
    nr * PAGE_SIZE
}

/// Returns the number of 4 KiB pages one entry at `level` maps (re-export
/// for visitors).
pub fn entry_pages(level: u8) -> u64 {
    level_pages(level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkvm_aarch64::attrs::Perms;
    use pkvm_aarch64::memory::MemRegion;
    use pkvm_aarch64::walk::{walk as hw_walk, Fault};

    struct Fixture {
        mem: PhysMem,
        pool: HypPool,
        pgt: KvmPgtable,
    }

    fn fixture() -> Fixture {
        let mem = PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x800_0000)]);
        let mut pool = HypPool::new(PhysAddr::new(0x4400_0000), 2048);
        let root = pool.alloc_page().unwrap();
        mem.zero_page(root).unwrap();
        Fixture {
            mem,
            pool,
            pgt: KvmPgtable {
                root,
                stage: Stage::Stage2,
            },
        }
    }

    fn map(
        f: &mut Fixture,
        ia: u64,
        size: u64,
        pa: u64,
        attrs: Attrs,
        force_pages: bool,
    ) -> HypResult {
        let mut mm = PoolOps(&mut f.pool);
        let mut st = WalkState::new(&f.mem, &mut mm);
        let mut w = MapWalker {
            stage: Stage::Stage2,
            phys_base: PhysAddr::new(pa),
            ia_base: ia,
            attrs,
            force_pages,
            corrupt_block_oa: false,
        };
        kvm_pgtable_walk(&f.pgt, &mut st, ia, size, &mut w)
    }

    #[test]
    fn map_single_page_and_translate() {
        let mut f = fixture();
        map(
            &mut f,
            0x4000_0000,
            0x1000,
            0x4010_0000,
            Attrs::normal(Perms::RWX),
            false,
        )
        .unwrap();
        let tr = hw_walk(&f.mem, Stage::Stage2, f.pgt.root, 0x4000_0abc).unwrap();
        assert_eq!(tr.oa, PhysAddr::new(0x4010_0abc));
        assert_eq!(tr.level, 3);
    }

    #[test]
    fn aligned_2m_range_becomes_block() {
        let mut f = fixture();
        map(
            &mut f,
            0x4020_0000,
            0x20_0000,
            0x4040_0000,
            Attrs::normal(Perms::RW),
            false,
        )
        .unwrap();
        let tr = hw_walk(&f.mem, Stage::Stage2, f.pgt.root, 0x4020_0000).unwrap();
        assert_eq!(tr.level, 2, "expected a level-2 block mapping");
        // Only 3 table nodes (levels 0,1,2... root preexists, so 2 allocs).
        let (pte, level) = get_leaf(&f.mem, &f.pgt, 0x4030_0000);
        assert_eq!(level, 2);
        assert_eq!(pte.kind(2), EntryKind::Block);
    }

    #[test]
    fn misaligned_phys_prevents_block() {
        let mut f = fixture();
        // 2 MiB of IA, but physical base only page-aligned: must use pages.
        map(
            &mut f,
            0x4020_0000,
            0x20_0000,
            0x4040_1000,
            Attrs::normal(Perms::RW),
            false,
        )
        .unwrap();
        let tr = hw_walk(&f.mem, Stage::Stage2, f.pgt.root, 0x4020_0000).unwrap();
        assert_eq!(tr.level, 3);
        assert_eq!(tr.oa, PhysAddr::new(0x4040_1000));
        let tr2 = hw_walk(&f.mem, Stage::Stage2, f.pgt.root, 0x4020_0000 + 0x1f_f000).unwrap();
        assert_eq!(tr2.oa, PhysAddr::new(0x4040_1000 + 0x1f_f000));
    }

    #[test]
    fn splitting_a_block_preserves_the_rest() {
        let mut f = fixture();
        // Identity-map a 2 MiB block, then remap one interior page elsewhere.
        map(
            &mut f,
            0x4020_0000,
            0x20_0000,
            0x4020_0000,
            Attrs::normal(Perms::RWX),
            false,
        )
        .unwrap();
        map(
            &mut f,
            0x4021_0000,
            0x1000,
            0x4060_0000,
            Attrs::normal(Perms::R),
            false,
        )
        .unwrap();
        let changed = hw_walk(&f.mem, Stage::Stage2, f.pgt.root, 0x4021_0000).unwrap();
        assert_eq!(changed.oa, PhysAddr::new(0x4060_0000));
        assert_eq!(changed.attrs.perms, Perms::R);
        // Neighbouring pages still identity-mapped with original perms.
        let kept = hw_walk(&f.mem, Stage::Stage2, f.pgt.root, 0x4021_1000).unwrap();
        assert_eq!(kept.oa, PhysAddr::new(0x4021_1000));
        assert_eq!(kept.attrs.perms, Perms::RWX);
        let kept2 = hw_walk(&f.mem, Stage::Stage2, f.pgt.root, 0x4020_0000).unwrap();
        assert_eq!(kept2.oa, PhysAddr::new(0x4020_0000));
    }

    #[test]
    fn set_owner_annotates_and_frees_tables() {
        let mut f = fixture();
        map(
            &mut f,
            0x4020_0000,
            0x4000,
            0x4020_0000,
            Attrs::normal(Perms::RWX),
            true,
        )
        .unwrap();
        let free_before = f.pool.free_pages();
        {
            let mut mm = PoolOps(&mut f.pool);
            let mut st = WalkState::new(&f.mem, &mut mm);
            let annot = Pte::invalid_with_owner(1);
            let mut v = SetOwnerWalker {
                stage: Stage::Stage2,
                annotation: annot,
            };
            kvm_pgtable_walk(&f.pgt, &mut st, 0x4020_0000, 0x4000, &mut v).unwrap();
        }
        assert_eq!(
            hw_walk(&f.mem, Stage::Stage2, f.pgt.root, 0x4020_0000),
            Err(Fault::Translation { level: 3 })
        );
        let (pte, _level) = get_leaf(&f.mem, &f.pgt, 0x4020_0000);
        assert_eq!(pte.invalid_owner(), 1);
        // The rest of the covering tables were NOT uniformly invalid (other
        // entries are zero, annotation nonzero) so nothing was freed.
        assert!(f.pool.free_pages() <= free_before + 3);
    }

    #[test]
    fn unmap_whole_region_frees_child_tables() {
        let mut f = fixture();
        map(
            &mut f,
            0x4020_0000,
            0x20_0000,
            0x4020_0000,
            Attrs::normal(Perms::RWX),
            true,
        )
        .unwrap();
        let before = f.pool.free_pages();
        let events = {
            let mut mm = PoolOps(&mut f.pool);
            let mut st = WalkState::new(&f.mem, &mut mm);
            let mut v = SetOwnerWalker {
                stage: Stage::Stage2,
                annotation: Pte::invalid(),
            };
            kvm_pgtable_walk(&f.pgt, &mut st, 0x4020_0000, 0x20_0000, &mut v).unwrap();
            st.events
        };
        // The level-3 table covering the 2 MiB became uniformly zero and
        // must have been freed.
        assert!(f.pool.free_pages() > before, "expected table free");
        assert!(events.iter().any(|e| matches!(e, TableEvent::Free(_))));
    }

    #[test]
    fn annotation_survives_partial_mapping_over_it() {
        let mut f = fixture();
        // Annotate a whole 2 MiB region as owner 2 at coarse level.
        {
            let mut mm = PoolOps(&mut f.pool);
            let mut st = WalkState::new(&f.mem, &mut mm);
            let mut v = SetOwnerWalker {
                stage: Stage::Stage2,
                annotation: Pte::invalid_with_owner(2),
            };
            kvm_pgtable_walk(&f.pgt, &mut st, 0x4020_0000, 0x20_0000, &mut v).unwrap();
        }
        // Now map one page inside it; the remaining pages must keep the
        // owner-2 annotation (split replication).
        map(
            &mut f,
            0x4021_0000,
            0x1000,
            0x4021_0000,
            Attrs::normal(Perms::RWX),
            false,
        )
        .unwrap();
        let (pte, level) = get_leaf(&f.mem, &f.pgt, 0x4022_0000);
        assert_eq!(level, 3);
        assert_eq!(pte.invalid_owner(), 2);
        let (mapped, _) = get_leaf(&f.mem, &f.pgt, 0x4021_0000);
        assert!(mapped.is_valid());
    }

    #[test]
    fn walk_rejects_bad_ranges() {
        let f = fixture();
        let mut mm = NoAlloc;
        let mut st = WalkState::new(&f.mem, &mut mm);
        let mut v = LeafVisitor(|_: &mut WalkState<'_>, _: &WalkCtx| Ok(()));
        assert_eq!(
            kvm_pgtable_walk(&f.pgt, &mut st, 0x123, 0x1000, &mut v),
            Err(Errno::EINVAL)
        );
        assert_eq!(
            kvm_pgtable_walk(&f.pgt, &mut st, 0x1000, 0, &mut v),
            Err(Errno::EINVAL)
        );
        assert_eq!(
            kvm_pgtable_walk(&f.pgt, &mut st, (1 << 48) - 0x1000, 0x2000, &mut v),
            Err(Errno::ERANGE)
        );
    }

    #[test]
    fn oom_mid_walk_propagates() {
        let mut f = fixture();
        // Exhaust the pool.
        while f.pool.alloc_page().is_ok() {}
        let err = map(
            &mut f,
            0x4020_0000,
            0x1000,
            0x4020_0000,
            Attrs::normal(Perms::RW),
            false,
        );
        assert_eq!(err, Err(Errno::ENOMEM));
    }

    #[test]
    fn collect_mapped_reports_ranges() {
        let mut f = fixture();
        map(
            &mut f,
            0x4020_0000,
            0x3000,
            0x4040_0000,
            Attrs::normal(Perms::RW),
            true,
        )
        .unwrap();
        let got = collect_mapped(&f.mem, &f.pgt, 0x4000_0000, 0x100_0000);
        let total: u64 = got.iter().map(|(_, _, n, _)| n).sum();
        assert_eq!(total, 3);
        assert_eq!(got[0].0, 0x4020_0000);
        assert_eq!(got[0].1, PhysAddr::new(0x4040_0000));
    }

    #[test]
    fn destroy_frees_all_tables() {
        let mut f = fixture();
        map(
            &mut f,
            0x4020_0000,
            0x1000,
            0x4020_0000,
            Attrs::normal(Perms::RW),
            false,
        )
        .unwrap();
        map(
            &mut f,
            0x7000_0000,
            0x1000,
            0x4021_0000,
            Attrs::normal(Perms::RW),
            false,
        )
        .unwrap();
        let free_before = f.pool.free_pages();
        let events = destroy(&f.mem, &f.pgt, &mut PoolOps(&mut f.pool));
        // Both mappings share the level-0 and level-1 entries (same 512 GiB
        // and 1 GiB regions) but have distinct level-3 tables: 1 + 1 + 2.
        let frees = events
            .iter()
            .filter(|e| matches!(e, TableEvent::Free(_)))
            .count();
        assert_eq!(frees, 4, "shared L1/L2 chain plus two L3 tables");
        assert_eq!(f.pool.free_pages(), free_before + frees as u64);
    }

    #[test]
    fn memcache_ops_source_tables_from_cache() {
        let f = fixture();
        let mut mc = Memcache::new();
        for pfn in 0..8u64 {
            mc.push(&f.mem, PhysAddr::new(0x4600_0000 + pfn * 0x1000));
        }
        let root = PhysAddr::new(0x4610_0000);
        f.mem.zero_page(root).unwrap();
        let pgt = KvmPgtable {
            root,
            stage: Stage::Stage2,
        };
        let mut mm = McOps(&mut mc);
        let mut st = WalkState::new(&f.mem, &mut mm);
        let mut w = MapWalker {
            stage: Stage::Stage2,
            phys_base: PhysAddr::new(0x4060_0000),
            ia_base: 0x1000_0000,
            attrs: Attrs::normal(Perms::RWX),
            force_pages: false,
            corrupt_block_oa: false,
        };
        kvm_pgtable_walk(&pgt, &mut st, 0x1000_0000, 0x1000, &mut w).unwrap();
        assert_eq!(mc.len(), 5, "three table levels consumed");
        let tr = hw_walk(&f.mem, Stage::Stage2, root, 0x1000_0000).unwrap();
        assert_eq!(tr.oa, PhysAddr::new(0x4060_0000));
    }
}
