//! The hypervisor page allocator (`hyp_pool`).
//!
//! pKVM carves a region of memory out for itself at initialisation and
//! manages it with a buddy allocator plus per-page refcounts (the
//! `hyp_page` vmemmap). Translation tables for the hypervisor's own
//! stage 1 and for the host's stage 2 are allocated here; guest stage 2
//! tables instead come from per-vCPU memcaches donated by the host.
//!
//! The allocator is pure metadata: it hands out physical addresses, and
//! callers zero the memory through [`pkvm_aarch64::PhysMem`].

use pkvm_aarch64::addr::PhysAddr;

use crate::error::{Errno, HypResult};

/// Maximum buddy order (matches the kernel's `MAX_ORDER` for 4 KiB pages:
/// order 10 blocks are 4 MiB).
pub const MAX_ORDER: u8 = 10;

#[derive(Clone, Copy, Debug, Default)]
struct HypPage {
    refcount: u16,
    order: u8,
    free: bool,
}

/// A buddy allocator over a contiguous carveout of physical pages.
#[derive(Debug)]
pub struct HypPool {
    base_pfn: u64,
    nr_pages: u64,
    free_lists: Vec<Vec<u64>>, // per order, page indices relative to base
    meta: Vec<HypPage>,
    free_pages: u64,
}

impl HypPool {
    /// Creates a pool over `[base, base + nr_pages * 4K)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page aligned.
    pub fn new(base: PhysAddr, nr_pages: u64) -> Self {
        assert!(base.is_page_aligned());
        let mut pool = Self {
            base_pfn: base.pfn(),
            nr_pages,
            free_lists: vec![Vec::new(); MAX_ORDER as usize + 1],
            meta: vec![HypPage::default(); nr_pages as usize],
            free_pages: 0,
        };
        // Seed the free lists with maximal aligned blocks.
        let mut idx = 0u64;
        while idx < nr_pages {
            let mut order = MAX_ORDER;
            loop {
                let size = 1u64 << order;
                // Block must be size-aligned relative to pfn 0 (hardware
                // block-mapping alignment) and fit in the carveout.
                if idx + size <= nr_pages && (pool.base_pfn + idx).is_multiple_of(size) {
                    break;
                }
                order -= 1;
            }
            pool.meta[idx as usize] = HypPage {
                refcount: 0,
                order,
                free: true,
            };
            pool.free_lists[order as usize].push(idx);
            pool.free_pages += 1 << order;
            idx += 1 << order;
        }
        pool
    }

    /// First page of the carveout.
    pub fn base(&self) -> PhysAddr {
        PhysAddr::from_pfn(self.base_pfn)
    }

    /// Total pages managed.
    pub fn nr_pages(&self) -> u64 {
        self.nr_pages
    }

    /// Pages currently free.
    pub fn free_pages(&self) -> u64 {
        self.free_pages
    }

    /// Returns `true` if `pa` lies inside the carveout.
    pub fn owns(&self, pa: PhysAddr) -> bool {
        pa.pfn() >= self.base_pfn && pa.pfn() < self.base_pfn + self.nr_pages
    }

    fn idx_of(&self, pa: PhysAddr) -> u64 {
        debug_assert!(self.owns(pa));
        pa.pfn() - self.base_pfn
    }

    /// Allocates `2^order` contiguous pages, refcount 1.
    ///
    /// # Errors
    ///
    /// Returns `ENOMEM` when no block of sufficient order is free.
    pub fn alloc_pages(&mut self, order: u8) -> HypResult<PhysAddr> {
        let mut have = order;
        while have <= MAX_ORDER && self.free_lists[have as usize].is_empty() {
            have += 1;
        }
        if have > MAX_ORDER {
            crate::cov::hit("pool/oom");
            return Err(Errno::ENOMEM);
        }
        let idx = self.free_lists[have as usize].pop().expect("nonempty list");
        // Split down to the requested order, returning the upper halves.
        while have > order {
            have -= 1;
            let buddy = idx + (1 << have);
            self.meta[buddy as usize] = HypPage {
                refcount: 0,
                order: have,
                free: true,
            };
            self.free_lists[have as usize].push(buddy);
        }
        self.meta[idx as usize] = HypPage {
            refcount: 1,
            order,
            free: false,
        };
        self.free_pages -= 1 << order;
        crate::cov::hit("pool/alloc");
        Ok(PhysAddr::from_pfn(self.base_pfn + idx))
    }

    /// Allocates a single page (`order` 0).
    ///
    /// # Errors
    ///
    /// Returns `ENOMEM` when the pool is exhausted.
    pub fn alloc_page(&mut self) -> HypResult<PhysAddr> {
        self.alloc_pages(0)
    }

    /// Drops a reference to the block at `pa`; frees and merges buddies
    /// when the refcount reaches zero.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not an allocated block head in this pool.
    pub fn put_page(&mut self, pa: PhysAddr) {
        let idx = self.idx_of(pa);
        let page = &mut self.meta[idx as usize];
        assert!(
            !page.free && page.refcount > 0,
            "put_page on free page {pa}"
        );
        page.refcount -= 1;
        if page.refcount == 0 {
            let order = page.order;
            self.free_block(idx, order);
        }
    }

    /// Takes an additional reference to the block at `pa`.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not an allocated block head.
    pub fn get_page(&mut self, pa: PhysAddr) {
        let idx = self.idx_of(pa);
        let page = &mut self.meta[idx as usize];
        assert!(
            !page.free && page.refcount > 0,
            "get_page on free page {pa}"
        );
        page.refcount += 1;
    }

    /// Current refcount of the block at `pa` (0 if free).
    pub fn refcount(&self, pa: PhysAddr) -> u16 {
        let idx = self.idx_of(pa);
        let page = self.meta[idx as usize];
        if page.free {
            0
        } else {
            page.refcount
        }
    }

    fn free_block(&mut self, mut idx: u64, mut order: u8) {
        self.free_pages += 1 << order;
        // Merge with the buddy while it is free and of the same order.
        while order < MAX_ORDER {
            let buddy = idx ^ (1 << order);
            if buddy >= self.nr_pages {
                break;
            }
            let bmeta = self.meta[buddy as usize];
            if !(bmeta.free && bmeta.order == order) {
                break;
            }
            // Detach the buddy from its free list.
            let list = &mut self.free_lists[order as usize];
            let pos = list
                .iter()
                .position(|&i| i == buddy)
                .expect("buddy on free list");
            list.swap_remove(pos);
            self.meta[buddy as usize].free = false;
            idx = idx.min(buddy);
            order += 1;
        }
        self.meta[idx as usize] = HypPage {
            refcount: 0,
            order,
            free: true,
        };
        self.free_lists[order as usize].push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> HypPool {
        HypPool::new(PhysAddr::new(0x4400_0000), 1024)
    }

    #[test]
    fn fresh_pool_is_all_free() {
        let p = pool();
        assert_eq!(p.free_pages(), 1024);
        assert_eq!(p.nr_pages(), 1024);
    }

    #[test]
    fn alloc_free_roundtrip_restores_capacity() {
        let mut p = pool();
        let a = p.alloc_page().unwrap();
        let b = p.alloc_page().unwrap();
        assert_ne!(a, b);
        assert_eq!(p.free_pages(), 1022);
        p.put_page(a);
        p.put_page(b);
        assert_eq!(p.free_pages(), 1024);
    }

    #[test]
    fn buddies_merge_back_to_max_order() {
        let mut p = pool();
        let mut pages = Vec::new();
        for _ in 0..1024 {
            pages.push(p.alloc_page().unwrap());
        }
        assert_eq!(p.free_pages(), 0);
        assert!(p.alloc_page().is_err());
        for pa in pages {
            p.put_page(pa);
        }
        assert_eq!(p.free_pages(), 1024);
        // After full free+merge, a max-order allocation must succeed again.
        assert!(p.alloc_pages(MAX_ORDER).is_ok());
    }

    #[test]
    fn higher_order_allocations_are_aligned() {
        let mut p = pool();
        let a = p.alloc_pages(4).unwrap();
        assert_eq!(a.pfn() % 16, 0);
        assert_eq!(p.free_pages(), 1024 - 16);
        p.put_page(a);
    }

    #[test]
    fn refcounting_defers_free() {
        let mut p = pool();
        let a = p.alloc_page().unwrap();
        p.get_page(a);
        assert_eq!(p.refcount(a), 2);
        p.put_page(a);
        assert_eq!(p.refcount(a), 1);
        assert_eq!(p.free_pages(), 1023);
        p.put_page(a);
        assert_eq!(p.refcount(a), 0);
        assert_eq!(p.free_pages(), 1024);
    }

    #[test]
    fn exhaustion_returns_enomem() {
        let mut p = HypPool::new(PhysAddr::new(0x4400_0000), 2);
        assert!(p.alloc_pages(MAX_ORDER).is_err());
        p.alloc_page().unwrap();
        p.alloc_page().unwrap();
        assert_eq!(p.alloc_page(), Err(Errno::ENOMEM));
    }

    #[test]
    #[should_panic(expected = "put_page on free page")]
    fn double_free_panics() {
        let mut p = pool();
        let a = p.alloc_page().unwrap();
        p.put_page(a);
        p.put_page(a);
    }

    #[test]
    fn unaligned_carveout_still_covers_all_pages() {
        // A carveout whose base is not max-order aligned.
        let p = HypPool::new(PhysAddr::new(0x4400_3000), 100);
        assert_eq!(p.free_pages(), 100);
    }
}
