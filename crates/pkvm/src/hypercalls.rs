//! The hypercall ABI.
//!
//! Host hypercalls follow the SMCCC convention the paper shows in its
//! Fig. 5 diff: the function identifier travels in `x0` (base
//! `0xc600_0000`), arguments in `x1..`, and on return the handler writes
//! `0` to `x0` and the result (0 or a negated errno) to `x1`, scrubbing
//! the argument registers.

/// Base of the host hypercall function-id space.
pub const HVC_BASE: u64 = 0xc600_0000;

/// `__pkvm_host_share_hyp(pfn)`.
pub const HVC_HOST_SHARE_HYP: u64 = HVC_BASE + 1;
/// `__pkvm_host_unshare_hyp(pfn)`.
pub const HVC_HOST_UNSHARE_HYP: u64 = HVC_BASE + 2;
/// `__pkvm_host_reclaim_page(pfn)`.
pub const HVC_HOST_RECLAIM_PAGE: u64 = HVC_BASE + 3;
/// `__pkvm_init_vm(params_pfn, donate_pfn, donate_nr)` -> handle.
pub const HVC_INIT_VM: u64 = HVC_BASE + 4;
/// `__pkvm_init_vcpu(handle, vcpu_idx, donate_pfn)`.
pub const HVC_INIT_VCPU: u64 = HVC_BASE + 5;
/// `__pkvm_teardown_vm(handle)`.
pub const HVC_TEARDOWN_VM: u64 = HVC_BASE + 6;
/// `__pkvm_vcpu_load(handle, vcpu_idx)`.
pub const HVC_VCPU_LOAD: u64 = HVC_BASE + 7;
/// `__pkvm_vcpu_put()`.
pub const HVC_VCPU_PUT: u64 = HVC_BASE + 8;
/// `__kvm_vcpu_run()` -> exit code.
pub const HVC_VCPU_RUN: u64 = HVC_BASE + 9;
/// `__pkvm_topup_vcpu_memcache(addr, nr)` (donates into the loaded vCPU).
pub const HVC_TOPUP_MEMCACHE: u64 = HVC_BASE + 10;
/// `__pkvm_host_map_guest(pfn, gfn)` (maps into the loaded vCPU's VM).
pub const HVC_HOST_MAP_GUEST: u64 = HVC_BASE + 11;
/// `__pkvm_vcpu_get_reg(n)` -> value in `x2` (reads the loaded vCPU's
/// saved register, e.g. for MMIO emulation by the host).
pub const HVC_VCPU_GET_REG: u64 = HVC_BASE + 12;
/// `__pkvm_vcpu_set_reg(n, value)` (writes the loaded vCPU's saved
/// register, e.g. to complete an emulated MMIO read).
pub const HVC_VCPU_SET_REG: u64 = HVC_BASE + 13;
/// `__pkvm_vm_load_firmware(handle, pfn, gfn, nr)`: donate a pvmfw-style
/// firmware region into a protected VM before any vCPU runs. The fourth
/// argument travels in `x4` (the SMCCC epilogue only scrubs `x0..=x3`).
pub const HVC_VM_LOAD_FIRMWARE: u64 = HVC_BASE + 14;

/// Exit codes returned by `HVC_VCPU_RUN` in `x1`.
pub mod exit {
    /// The guest performed a step and can be run again.
    pub const CONTINUE: u64 = 0;
    /// The guest executed WFI (or has nothing left to do).
    pub const WFI: u64 = 1;
    /// The guest took a stage 2 abort; the faulting IPA is in `x2` and the
    /// write flag in `x3`.
    pub const MEM_ABORT: u64 = 2;
    /// The guest made a hypercall that was handled at EL2; its result is
    /// in the guest's `x0`.
    pub const GUEST_HVC: u64 = 3;
}

/// Guest-to-hypervisor hypercall function ids (issued via `GuestOp`).
pub mod guest {
    /// `mem_share(ipa)`: share a guest page with the host.
    pub const MEM_SHARE: u64 = super::HVC_BASE + 0x101;
    /// `mem_unshare(ipa)`: revoke a share.
    pub const MEM_UNSHARE: u64 = super::HVC_BASE + 0x102;
}

/// Human-readable name of a host hypercall id (diagnostics, coverage).
pub fn name(func: u64) -> &'static str {
    match func {
        HVC_HOST_SHARE_HYP => "host_share_hyp",
        HVC_HOST_UNSHARE_HYP => "host_unshare_hyp",
        HVC_HOST_RECLAIM_PAGE => "host_reclaim_page",
        HVC_INIT_VM => "init_vm",
        HVC_INIT_VCPU => "init_vcpu",
        HVC_TEARDOWN_VM => "teardown_vm",
        HVC_VCPU_LOAD => "vcpu_load",
        HVC_VCPU_PUT => "vcpu_put",
        HVC_VCPU_RUN => "vcpu_run",
        HVC_TOPUP_MEMCACHE => "topup_memcache",
        HVC_HOST_MAP_GUEST => "host_map_guest",
        HVC_VCPU_GET_REG => "vcpu_get_reg",
        HVC_VCPU_SET_REG => "vcpu_set_reg",
        HVC_VM_LOAD_FIRMWARE => "vm_load_firmware",
        _ => "unknown",
    }
}

/// Every host hypercall id, for the random tester and coverage sweeps.
pub const ALL_HOST_CALLS: &[u64] = &[
    HVC_HOST_SHARE_HYP,
    HVC_HOST_UNSHARE_HYP,
    HVC_HOST_RECLAIM_PAGE,
    HVC_INIT_VM,
    HVC_INIT_VCPU,
    HVC_TEARDOWN_VM,
    HVC_VCPU_LOAD,
    HVC_VCPU_PUT,
    HVC_VCPU_RUN,
    HVC_TOPUP_MEMCACHE,
    HVC_HOST_MAP_GUEST,
    HVC_VCPU_GET_REG,
    HVC_VCPU_SET_REG,
    HVC_VM_LOAD_FIRMWARE,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for &id in ALL_HOST_CALLS {
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn names_resolve() {
        for &id in ALL_HOST_CALLS {
            assert_ne!(name(id), "unknown");
        }
        assert_eq!(name(0xdead), "unknown");
    }
}
