//! Host hypercall handlers: the dispatch half of `handle_trap`.
//!
//! Each handler reads its arguments from the saved host context, performs
//! the operation against the shared state (taking only the locks it
//! needs), and writes the SMCCC-style result back: `x0 = 0`, `x1 = ret`,
//! argument registers scrubbed — the register changes visible in the
//! paper's Fig. 5 diff.

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::sync::MutexGuard;
use pkvm_aarch64::walk::{translate, Access};

use crate::cov;
use crate::error::{ret_of_result, Errno, HypResult};
use crate::faults::Fault;
use crate::hooks::Component;
use crate::hypercalls::{self as hc, exit};
use crate::machine::{CpuState, Machine};
use crate::mem_protect;
use crate::pgtable::{destroy, PoolOps};
use crate::state::{loaded_vcpu_view, HypCtx};
use crate::vm::{GuestOp, Handle, Vcpu, VcpuSlot};

/// Pages the host must donate for `init_vm` (the VM metadata page and the
/// stage 2 root).
pub const VM_DONATION_PAGES: u64 = 2;
/// Pages the host must donate per `init_vcpu`.
pub const VCPU_DONATION_PAGES: u64 = 1;
/// Maximum vCPUs per VM.
pub const MAX_VCPUS: u64 = 8;
/// Maximum pages in one `vm_load_firmware` donation (pvmfw is small).
pub const MAX_FIRMWARE_PAGES: u64 = 32;

impl Machine {
    pub(crate) fn handle_host_hcall(&self, ctx: &HypCtx<'_>, guard: &mut MutexGuard<'_, CpuState>) {
        let func = guard.regs.get(0);
        let a1 = guard.regs.get(1);
        let a2 = guard.regs.get(2);
        let a3 = guard.regs.get(3);
        // Exit details (faulting IPA, write flag) that vcpu_run reports to
        // the host in x2/x3, surviving the argument scrub below.
        let mut exit_info: Option<(u64, u64)> = None;
        let ret = match func {
            hc::HVC_HOST_SHARE_HYP => {
                ret_of_result(mem_protect::host_share_hyp(ctx, &self.state, a1).map(|()| 0))
            }
            hc::HVC_HOST_UNSHARE_HYP => {
                ret_of_result(mem_protect::host_unshare_hyp(ctx, &self.state, a1).map(|()| 0))
            }
            hc::HVC_HOST_RECLAIM_PAGE => {
                ret_of_result(mem_protect::host_reclaim_page(ctx, &self.state, a1).map(|()| 0))
            }
            hc::HVC_INIT_VM => ret_of_result(self.do_init_vm(ctx, a1, a2, a3)),
            hc::HVC_INIT_VCPU => ret_of_result(
                self.do_init_vcpu(ctx, a1 as Handle, a2 as usize, a3)
                    .map(|()| 0),
            ),
            hc::HVC_TEARDOWN_VM => {
                ret_of_result(self.do_teardown_vm(ctx, a1 as Handle).map(|()| 0))
            }
            hc::HVC_VCPU_LOAD => ret_of_result(
                self.do_vcpu_load(ctx, guard, a1 as Handle, a2 as usize)
                    .map(|()| 0),
            ),
            hc::HVC_VCPU_PUT => ret_of_result(self.do_vcpu_put(ctx, guard).map(|()| 0)),
            hc::HVC_VCPU_RUN => {
                let r = self.do_vcpu_run(ctx, guard, &mut exit_info);
                ret_of_result(r)
            }
            hc::HVC_TOPUP_MEMCACHE => {
                ret_of_result(self.do_topup_memcache(ctx, guard, a1, a2).map(|()| 0))
            }
            hc::HVC_HOST_MAP_GUEST => {
                ret_of_result(self.do_host_map_guest(ctx, guard, a1, a2).map(|()| 0))
            }
            hc::HVC_VCPU_GET_REG => {
                let r = self.do_vcpu_get_reg(guard, a1);
                if let Ok(v) = r {
                    exit_info = Some((v, 0));
                }
                ret_of_result(r.map(|_| 0))
            }
            hc::HVC_VCPU_SET_REG => ret_of_result(self.do_vcpu_set_reg(guard, a1, a2).map(|()| 0)),
            hc::HVC_VM_LOAD_FIRMWARE => {
                let a4 = guard.regs.get(4);
                ret_of_result(
                    self.do_vm_load_firmware(ctx, a1 as Handle, a2, a3, a4)
                        .map(|()| 0),
                )
            }
            _ => {
                cov::hit("handle_trap/unknown_hvc");
                Errno::EOPNOTSUPP.to_ret()
            }
        };
        // SMCCC epilogue: success marker, result, scrubbed arguments
        // (or vcpu_run's exit details).
        let (x2, x3) = exit_info.unwrap_or((0, 0));
        guard.regs.set(0, 0);
        guard.regs.set(1, ret);
        guard.regs.set(2, x2);
        guard.regs.set(3, x3);
    }

    /// `init_vm(params_pfn, donate_pfn, donate_nr) -> handle`.
    ///
    /// The parameter page stays host-owned; reading it is the canonical
    /// `READ_ONCE` nondeterminism of §4.3, so both reads are reported to
    /// the oracle as call data.
    fn do_init_vm(
        &self,
        ctx: &HypCtx<'_>,
        params_pfn: u64,
        donate_pfn: u64,
        donate_nr: u64,
    ) -> HypResult<u64> {
        let params = PhysAddr::from_pfn(params_pfn);
        if !ctx.mem.is_ram(params) {
            cov::hit("init_vm/bad_params");
            return Err(Errno::EINVAL);
        }
        let nr_vcpus = ctx.mem.read_u64(params).expect("checked RAM");
        ctx.hooks
            .read_once(&ctx.hook_ctx(), "init_vm/nr_vcpus", nr_vcpus);
        let protected = ctx
            .mem
            .read_u64(params.wrapping_add(8))
            .expect("checked RAM");
        ctx.hooks
            .read_once(&ctx.hook_ctx(), "init_vm/protected", protected);
        if nr_vcpus == 0 || nr_vcpus > MAX_VCPUS || donate_nr != VM_DONATION_PAGES {
            cov::hit("init_vm/bad_params");
            return Err(Errno::EINVAL);
        }

        // Phase 1: take ownership of the donated pages.
        mem_protect::host_donate_hyp(ctx, &self.state, donate_pfn, donate_nr).inspect_err(
            |_| {
                cov::hit("init_vm/donate_failed");
            },
        )?;
        let meta_page = PhysAddr::from_pfn(donate_pfn);
        let s2_root = PhysAddr::from_pfn(donate_pfn + 1);
        ctx.mem.zero_page(meta_page).expect("donated RAM");
        ctx.mem.zero_page(s2_root).expect("donated RAM");

        // Phase 2: allocate the handle in the VM table.
        let mut table = self.state.vm_table_lock(ctx);
        let result = table.insert(
            protected != 0,
            nr_vcpus as usize,
            s2_root,
            vec![meta_page, s2_root],
        );
        let handle = result.as_ref().map(|vm| vm.handle as u64).map_err(|e| *e);
        self.state.vm_table_unlock(ctx, table);
        match &handle {
            Ok(_) => cov::hit("init_vm/ok"),
            Err(_) => {
                cov::hit("init_vm/table_full");
                // Roll the donation back so the host does not leak pages.
                let _ = mem_protect::hyp_donate_host(ctx, &self.state, donate_pfn, donate_nr);
            }
        }
        handle
    }

    /// `init_vcpu(handle, vcpu_idx, donate_pfn)`.
    fn do_init_vcpu(
        &self,
        ctx: &HypCtx<'_>,
        handle: Handle,
        idx: usize,
        donate_pfn: u64,
    ) -> HypResult {
        let result = (|| {
            let table = self.state.vm_table_lock(ctx);
            let vm = table.get(handle);
            self.state.vm_table_unlock(ctx, table);
            let vm = vm?;
            if idx >= vm.nr_vcpus {
                return Err(Errno::EINVAL);
            }
            mem_protect::host_donate_hyp(ctx, &self.state, donate_pfn, VCPU_DONATION_PAGES)?;
            let vcpu_page = PhysAddr::from_pfn(donate_pfn);
            ctx.mem.zero_page(vcpu_page).expect("donated RAM");
            let mut inner = self.state.vm_lock(ctx, &vm);
            let r = match inner.vcpus[idx] {
                VcpuSlot::Uninit => {
                    inner.vcpus[idx] = VcpuSlot::Present(Box::new(Vcpu::initialised()));
                    inner.donated.push(vcpu_page);
                    Ok(())
                }
                _ => Err(Errno::EEXIST),
            };
            self.state.vm_unlock(ctx, &vm, inner);
            if r.is_err() {
                let _ =
                    mem_protect::hyp_donate_host(ctx, &self.state, donate_pfn, VCPU_DONATION_PAGES);
            }
            r
        })();
        match &result {
            Ok(()) => cov::hit("init_vcpu/ok"),
            Err(_) => cov::hit("init_vcpu/err"),
        }
        result
    }

    /// `vm_load_firmware(handle, pfn, gfn, nr)`: donate a pvmfw-style
    /// firmware region into a protected VM, mapped into the guest before
    /// any vCPU exists. The host permanently loses access to the range.
    fn do_vm_load_firmware(
        &self,
        ctx: &HypCtx<'_>,
        handle: Handle,
        pfn: u64,
        gfn: u64,
        nr: u64,
    ) -> HypResult {
        let result = (|| {
            if nr == 0 || nr > MAX_FIRMWARE_PAGES || gfn >= 1 << 36 {
                return Err(Errno::EINVAL);
            }
            let table = self.state.vm_table_lock(ctx);
            let vm = table.get(handle);
            self.state.vm_table_unlock(ctx, table);
            let vm = vm?;
            // Firmware donation is a protected-boot concept: unprotected
            // VMs share memory with the host instead.
            if !vm.protected {
                return Err(Errno::EPERM);
            }
            let mut inner = self.state.vm_lock(ctx, &vm);
            // "Before any vCPU runs": refuse once a vCPU is initialised.
            let booted = inner.vcpus.iter().any(|s| !matches!(s, VcpuSlot::Uninit));
            let r = if booted {
                Err(Errno::EBUSY)
            } else {
                let pgt = inner.pgt;
                mem_protect::vm_load_firmware(ctx, &self.state, &vm, &pgt, pfn, gfn, nr)
            };
            if r.is_ok() {
                for i in 0..nr {
                    inner.firmware.push(PhysAddr::from_pfn(pfn + i));
                }
            }
            self.state.vm_unlock(ctx, &vm, inner);
            r
        })();
        match &result {
            Ok(()) => cov::hit("vm_load_firmware/hcall_ok"),
            Err(_) => cov::hit("vm_load_firmware/hcall_err"),
        }
        result
    }

    /// `teardown_vm(handle)`: unmap the guest, queue its pages for
    /// reclaim, and return metadata/table pages to the host.
    fn do_teardown_vm(&self, ctx: &HypCtx<'_>, handle: Handle) -> HypResult {
        let result = (|| {
            let mut table = self.state.vm_table_lock(ctx);
            let vm = match table.get(handle) {
                Ok(vm) => vm,
                Err(e) => {
                    self.state.vm_table_unlock(ctx, table);
                    return Err(e);
                }
            };
            // Refuse while any vCPU is loaded.
            {
                let inner = self.state.vm_lock(ctx, &vm);
                let busy = inner
                    .vcpus
                    .iter()
                    .any(|s| matches!(s, VcpuSlot::LoadedOn(_)));
                self.state.vm_unlock(ctx, &vm, inner);
                if busy {
                    cov::hit("teardown_vm/busy");
                    self.state.vm_table_unlock(ctx, table);
                    return Err(Errno::EBUSY);
                }
            }
            table.remove(handle).expect("present above");
            self.state.vm_table_unlock(ctx, table);
            // The guest's VMID is being retired, so the VMID-wide scope is
            // the precise one here (`tlbi vmalls12e1is`, not over-broad):
            // every cached translation under it is about to dangle. The
            // downgrade hook uses the VMID-wide encoding (ia 0, all pages);
            // the invalidation and its tlbi/dsb hooks are skipped together
            // under the missing-TLBI injection.
            ctx.hooks
                .pte_downgrade(&ctx.hook_ctx(), vm.vmid(), 0, u64::MAX);
            if ctx.faults.is(Fault::SynMissingTlbi) {
                cov::hit("tlbi/suppressed");
            } else {
                cov::hit("tlbi/vmid");
                ctx.tlb.invalidate_vmid(ctx.cpu, vm.vmid(), true);
                ctx.hooks
                    .tlbi(&ctx.hook_ctx(), vm.vmid(), 0, u64::MAX, true);
                ctx.hooks.dsb(&ctx.hook_ctx());
            }

            let mut inner = self.state.vm_lock(ctx, &vm);
            // Queue every guest-mapped page for host reclaim. With the
            // synthetic teardown bug, the pages are instead handed straight
            // back to the host — unwiped, skipping the reclaim protocol.
            let mapped = crate::pgtable::collect_mapped(ctx.mem, &inner.pgt, 0, 1 << 40);
            if ctx.faults.is(Fault::SynTeardownSkipsUnmap) {
                let host = self.state.host_lock(ctx);
                for (_, pa, nr, _) in &mapped {
                    let mut pool = self.state.pool.lock();
                    let mut mm = PoolOps(&mut pool);
                    let mut ws = crate::pgtable::WalkState::new(ctx.mem, &mut mm);
                    let mut v = crate::pgtable::SetOwnerWalker {
                        stage: pkvm_aarch64::attrs::Stage::Stage2,
                        annotation: pkvm_aarch64::desc::Pte::invalid(),
                    };
                    let _ = crate::pgtable::kvm_pgtable_walk(
                        &host,
                        &mut ws,
                        pa.bits(),
                        nr * PAGE_SIZE,
                        &mut v,
                    );
                }
                self.state.host_unlock(ctx, host);
            } else {
                // Firmware pages never become reclaimable — the host must
                // not regain access, ever. The synthetic fault queues them
                // like ordinary guest pages, so a later host_reclaim_page
                // hands the host a firmware page back.
                let reclaim_firmware = ctx.faults.is(Fault::SynFirmwareReclaim);
                let mut reclaim = self.state.reclaim.lock();
                for (_, pa, nr, _) in &mapped {
                    for i in 0..*nr {
                        let pfn = pa.pfn() + i;
                        if !reclaim_firmware && inner.firmware.contains(&PhysAddr::from_pfn(pfn)) {
                            continue;
                        }
                        reclaim.insert(pfn, vm.owner_id());
                    }
                }
            }
            // Tear down the stage 2 tree; its nodes came from vCPU
            // memcaches (host pages donated to hyp), so hand them back.
            let mut freed_tables: Vec<PhysAddr> = Vec::new();
            {
                struct Collector<'v>(&'v mut Vec<PhysAddr>);
                impl crate::pgtable::MmOps for Collector<'_> {
                    fn zalloc_page(
                        &mut self,
                        _mem: &pkvm_aarch64::memory::PhysMem,
                    ) -> HypResult<PhysAddr> {
                        Err(Errno::ENOMEM)
                    }
                    fn free_page(&mut self, _mem: &pkvm_aarch64::memory::PhysMem, page: PhysAddr) {
                        self.0.push(page);
                    }
                }
                destroy(ctx.mem, &inner.pgt, &mut Collector(&mut freed_tables));
                // Clear the root so returned pages hold no stale descriptors.
                ctx.mem
                    .zero_page(inner.pgt.root)
                    .expect("root is donated RAM");
                // The tree's pages stop being this guest's translation
                // tables here; without the free events the checker's
                // footprints would keep them owned by the dead VM and flag
                // their next use (pool-backed firmware tables are recycled
                // into host/hyp table walks almost immediately).
                for pa in &freed_tables {
                    ctx.hooks
                        .table_page_free(&ctx.hook_ctx(), Component::Vm(handle), *pa);
                }
            }
            // Collect remaining memcache pages and metadata pages.
            let mut returned: Vec<PhysAddr> = freed_tables;
            for slot in &mut inner.vcpus {
                if let VcpuSlot::Present(v) = slot {
                    returned.extend(v.memcache.drain(ctx.mem));
                }
            }
            returned.extend(inner.donated.iter().copied());
            let firmware = std::mem::take(&mut inner.firmware);
            self.state.vm_unlock(ctx, &vm, inner);
            // Return everything in one critical section: teardown must be
            // a single atomic transition of the host/hyp components.
            // Guest table pages come in two provenances now: memcache
            // pages (host-donated, returned to the host) and pool pages
            // (firmware mappings are built pool-backed, pre-vCPU; those
            // were never the host's and go back to the pool).
            let host = self.state.host_lock(ctx);
            let hyp = self.state.hyp_lock(ctx);
            for pa in returned {
                // Wipe before returning: table pages held descriptors.
                ctx.mem.zero_page(pa).expect("donated RAM");
                let from_pool = self.state.pool.lock().owns(pa);
                if from_pool {
                    self.state.pool.lock().put_page(pa);
                } else {
                    let _ = mem_protect::do_hyp_donate_host_locked(
                        ctx,
                        &self.state,
                        &host,
                        &hyp,
                        pa,
                        1,
                    );
                }
            }
            // Firmware pages are never the host's again: wipe and retire
            // them to the hypervisor. Under the synthetic fault they were
            // queued for reclaim above instead and stay guest-annotated
            // until the host "reclaims" them — the protocol breach the
            // firmware-protection check must catch.
            if !ctx.faults.is(Fault::SynFirmwareReclaim) {
                for pa in &firmware {
                    ctx.mem.zero_page(*pa).expect("firmware is donated RAM");
                    let _ = mem_protect::retire_firmware_locked(ctx, &self.state, &host, *pa);
                }
            }
            self.state.hyp_unlock(ctx, hyp);
            self.state.host_unlock(ctx, host);
            Ok(())
        })();
        match &result {
            Ok(()) => cov::hit("teardown_vm/ok"),
            Err(Errno::EBUSY) => {}
            Err(_) => cov::hit("teardown_vm/err"),
        }
        result
    }

    /// `vcpu_load(handle, idx)`: transfer the vCPU from the VM lock to
    /// this hardware thread.
    fn do_vcpu_load(
        &self,
        ctx: &HypCtx<'_>,
        guard: &mut MutexGuard<'_, CpuState>,
        handle: Handle,
        idx: usize,
    ) -> HypResult {
        let result = (|| {
            if guard.loaded_vcpu.is_some() {
                return Err(Errno::EBUSY);
            }
            let table = self.state.vm_table_lock(ctx);
            let vm = table.get(handle);
            self.state.vm_table_unlock(ctx, table);
            let vm = vm?;
            if idx >= vm.nr_vcpus {
                return Err(Errno::EINVAL);
            }
            let mut inner = self.state.vm_lock(ctx, &vm);
            let taken = match std::mem::replace(&mut inner.vcpus[idx], VcpuSlot::LoadedOn(ctx.cpu))
            {
                VcpuSlot::Present(v) => Ok(v),
                VcpuSlot::Uninit if ctx.faults.is(Fault::Bug3VcpuLoadRace) => {
                    // Bug 3: the initialisation check is missing, so the
                    // load observes "uninitialised hypervisor memory".
                    Ok(Box::new(Vcpu::uninitialised_garbage()))
                }
                old => {
                    let e = if matches!(old, VcpuSlot::LoadedOn(_)) {
                        Errno::EBUSY
                    } else {
                        Errno::ENOENT
                    };
                    inner.vcpus[idx] = old;
                    Err(e)
                }
            };
            match taken {
                Ok(vcpu) => {
                    ctx.hooks.vcpu_loaded(
                        &ctx.hook_ctx(),
                        handle,
                        idx,
                        &loaded_vcpu_view(ctx.mem, &vcpu, ctx.cpu),
                    );
                    // Context switch: install the guest's stage 2 root and
                    // VMID in VTTBR_EL2.
                    guard.sysregs.vttbr_el2 =
                        pkvm_aarch64::sysreg::Vttbr::new(vm.vmid(), inner.pgt.root);
                    self.state.vm_unlock(ctx, &vm, inner);
                    guard.loaded_vcpu = Some((handle, idx, vcpu));
                    Ok(())
                }
                Err(e) => {
                    self.state.vm_unlock(ctx, &vm, inner);
                    Err(e)
                }
            }
        })();
        match &result {
            Ok(()) => cov::hit("vcpu_load/ok"),
            Err(_) => cov::hit("vcpu_load/err"),
        }
        result
    }

    /// `vcpu_put()`: return the loaded vCPU to its VM.
    fn do_vcpu_put(&self, ctx: &HypCtx<'_>, guard: &mut MutexGuard<'_, CpuState>) -> HypResult {
        let Some((handle, idx, vcpu)) = guard.loaded_vcpu.take() else {
            cov::hit("vcpu_put/none");
            return Err(Errno::ENOENT);
        };
        ctx.hooks.vcpu_put(
            &ctx.hook_ctx(),
            handle,
            idx,
            &loaded_vcpu_view(ctx.mem, &vcpu, ctx.cpu),
        );
        // Context switch back to the host's stage 2.
        guard.sysregs.vttbr_el2 = pkvm_aarch64::sysreg::Vttbr::new(
            pkvm_aarch64::tlb::VMID_HOST,
            self.state.host_pgt.lock().root,
        );
        let table = self.state.vm_table_lock(ctx);
        let vm = table.get(handle);
        self.state.vm_table_unlock(ctx, table);
        let Ok(vm) = vm else {
            // The VM disappeared while the vCPU was loaded; drop the state.
            cov::hit("vcpu_put/ok");
            return Ok(());
        };
        let mut inner = self.state.vm_lock(ctx, &vm);
        if ctx.faults.is(Fault::SynVcpuPutLeak) {
            // Bug: the slot keeps saying "loaded"; the state is lost.
        } else {
            inner.vcpus[idx] = VcpuSlot::Present(vcpu);
        }
        self.state.vm_unlock(ctx, &vm, inner);
        cov::hit("vcpu_put/ok");
        Ok(())
    }

    /// `vcpu_run()`: execute one scripted guest step and return the exit
    /// code (§2: guests interact with the world through exactly these
    /// exits).
    fn do_vcpu_run(
        &self,
        ctx: &HypCtx<'_>,
        guard: &mut MutexGuard<'_, CpuState>,
        exit_info: &mut Option<(u64, u64)>,
    ) -> HypResult<u64> {
        if guard.loaded_vcpu.is_none() {
            cov::hit("vcpu_run/no_vcpu");
            return Err(Errno::ENOENT);
        }
        let (handle, _idx, op) = {
            let (h, i, vcpu) = guard.loaded_vcpu.as_mut().expect("checked");
            (*h, *i, vcpu.pending.pop_front())
        };
        cov::hit("vcpu_run/exit");
        // The guest's behaviour is nondeterministic input to the spec
        // (§4.3): report which step it took, and its address if any.
        let (op_code, op_ipa) = match op {
            None | Some(GuestOp::Wfi) => (0, 0),
            Some(GuestOp::Read(gipa)) => (1, gipa),
            Some(GuestOp::Write(gipa, _)) => (2, gipa),
            Some(GuestOp::HvcShareHost(gipa)) => (3, gipa),
            Some(GuestOp::HvcUnshareHost(gipa)) => (4, gipa),
        };
        ctx.hooks.read_once(&ctx.hook_ctx(), "vcpu_run/op", op_code);
        ctx.hooks.read_once(&ctx.hook_ctx(), "vcpu_run/ipa", op_ipa);
        let Some(op) = op else {
            return Ok(exit::WFI);
        };
        match op {
            GuestOp::Wfi => Ok(exit::WFI),
            GuestOp::Read(gipa) | GuestOp::Write(gipa, _) => {
                let access = if matches!(op, GuestOp::Write(..)) {
                    Access::Write
                } else {
                    Access::Read
                };
                let table = self.state.vm_table_lock(ctx);
                let vm = table.get(handle);
                self.state.vm_table_unlock(ctx, table);
                let vm = vm?;
                // Guest "hardware" consults this CPU's TLB under the guest
                // VMID; the permission filter lives inside `lookup` so a
                // rejected entry counts as the miss it behaves as.
                let cached = self.tlb.lookup(ctx.cpu, vm.vmid(), gipa, access);
                let tr = match cached {
                    Some(hit) => Ok(pkvm_aarch64::walk::Translation {
                        oa: hit.oa.wrapping_add(gipa & (PAGE_SIZE - 1)),
                        ..hit
                    }),
                    None => {
                        let inner = self.state.vm_lock(ctx, &vm);
                        let tr = translate(ctx.mem, inner.pgt.stage, inner.pgt.root, gipa, access);
                        self.state.vm_unlock(ctx, &vm, inner);
                        if let Ok(t) = &tr {
                            self.tlb.fill(ctx.cpu, vm.vmid(), gipa, *t);
                        }
                        tr
                    }
                };
                match tr {
                    Ok(tr) => {
                        // Perform the access as guest "hardware" would.
                        let word = PhysAddr::new(tr.oa.bits() & !7);
                        if let GuestOp::Write(_, v) = op {
                            ctx.mem.write_u64(word, v).expect("mapped RAM");
                        } else {
                            let v = ctx.mem.read_u64(word).expect("mapped RAM");
                            // The value is a read of guest-visible memory:
                            // nondeterministic input for the spec.
                            ctx.hooks
                                .read_once(&ctx.hook_ctx(), "vcpu_run/read_value", v);
                            let (_, _, vcpu) = guard.loaded_vcpu.as_mut().expect("checked");
                            vcpu.regs.set(0, v);
                        }
                        Ok(exit::CONTINUE)
                    }
                    Err(_) => {
                        cov::hit("vcpu_run/guest_abort");
                        // Stage 2 abort: exit to the host with the details.
                        *exit_info = Some((gipa, matches!(access, Access::Write) as u64));
                        Ok(exit::MEM_ABORT)
                    }
                }
            }
            GuestOp::HvcShareHost(gipa) | GuestOp::HvcUnshareHost(gipa) => {
                let share = matches!(op, GuestOp::HvcShareHost(_));
                if share {
                    cov::hit("vcpu_run/guest_hvc_share");
                } else {
                    cov::hit("vcpu_run/guest_hvc_unshare");
                }
                let table = self.state.vm_table_lock(ctx);
                let vm = table.get(handle);
                self.state.vm_table_unlock(ctx, table);
                let vm = vm?;
                let inner = self.state.vm_lock(ctx, &vm);
                let pgt = inner.pgt;
                let firmware = inner.firmware.clone();
                let (_, _, vcpu) = guard.loaded_vcpu.as_mut().expect("checked");
                let r = if share {
                    mem_protect::guest_share_host(
                        ctx,
                        &self.state,
                        &vm,
                        &pgt,
                        &firmware,
                        &mut vcpu.memcache,
                        gipa,
                    )
                } else {
                    mem_protect::guest_unshare_host(
                        ctx,
                        &self.state,
                        &vm,
                        &pgt,
                        &mut vcpu.memcache,
                        gipa,
                    )
                };
                self.state.vm_unlock(ctx, &vm, inner);
                let (_, _, vcpu) = guard.loaded_vcpu.as_mut().expect("checked");
                vcpu.regs.set(0, ret_of_result(r.map(|()| 0)));
                Ok(exit::GUEST_HVC)
            }
        }
    }

    /// `vcpu_get_reg(n)`: read a saved register of the loaded vCPU (the
    /// host needs guest registers to emulate MMIO).
    fn do_vcpu_get_reg(&self, guard: &mut MutexGuard<'_, CpuState>, n: u64) -> HypResult<u64> {
        let Some((_, _, vcpu)) = guard.loaded_vcpu.as_ref() else {
            return Err(Errno::ENOENT);
        };
        if n >= 31 {
            return Err(Errno::EINVAL);
        }
        cov::hit("vcpu_reg/get");
        Ok(vcpu.regs.get(n as usize))
    }

    /// `vcpu_set_reg(n, value)`: write a saved register of the loaded
    /// vCPU (completing an emulated MMIO read).
    fn do_vcpu_set_reg(
        &self,
        guard: &mut MutexGuard<'_, CpuState>,
        n: u64,
        value: u64,
    ) -> HypResult {
        let Some((_, _, vcpu)) = guard.loaded_vcpu.as_mut() else {
            return Err(Errno::ENOENT);
        };
        if n >= 31 {
            return Err(Errno::EINVAL);
        }
        cov::hit("vcpu_reg/set");
        vcpu.regs.set(n as usize, value);
        Ok(())
    }

    /// `topup_memcache(addr, nr)`: donate host pages into the loaded
    /// vCPU's memcache (bugs 1 and 2 live down this path).
    fn do_topup_memcache(
        &self,
        ctx: &HypCtx<'_>,
        guard: &mut MutexGuard<'_, CpuState>,
        addr: u64,
        nr: u64,
    ) -> HypResult {
        let Some((_, _, vcpu)) = guard.loaded_vcpu.as_mut() else {
            return Err(Errno::ENOENT);
        };
        mem_protect::topup_memcache(ctx, &self.state, &mut vcpu.memcache, addr, nr)
    }

    /// `host_map_guest(pfn, gfn)`: give the faulted guest page to the
    /// loaded vCPU's VM — shared for unprotected VMs, donated for
    /// protected ones.
    fn do_host_map_guest(
        &self,
        ctx: &HypCtx<'_>,
        guard: &mut MutexGuard<'_, CpuState>,
        pfn: u64,
        gfn: u64,
    ) -> HypResult {
        let result = (|| {
            let Some((handle, _, _)) = guard.loaded_vcpu.as_ref() else {
                cov::hit("host_map_guest/no_vcpu");
                return Err(Errno::ENOENT);
            };
            // Reject gfns beyond the modelled 48-bit IPA space before they
            // alias table indices.
            if gfn >= 1 << 36 {
                return Err(Errno::EINVAL);
            }
            let handle = *handle;
            let table = self.state.vm_table_lock(ctx);
            let vm = table.get(handle);
            self.state.vm_table_unlock(ctx, table);
            let vm = vm?;
            let inner = self.state.vm_lock(ctx, &vm);
            let pgt = inner.pgt;
            let (_, _, vcpu) = guard.loaded_vcpu.as_mut().expect("checked");
            let r = if vm.protected {
                mem_protect::host_donate_guest(
                    ctx,
                    &self.state,
                    &vm,
                    &pgt,
                    &mut vcpu.memcache,
                    pfn,
                    gfn,
                )
            } else {
                mem_protect::host_share_guest(
                    ctx,
                    &self.state,
                    &vm,
                    &pgt,
                    &mut vcpu.memcache,
                    pfn,
                    gfn,
                )
            };
            self.state.vm_unlock(ctx, &vm, inner);
            r
        })();
        match &result {
            Ok(()) => cov::hit("host_map_guest/ok"),
            Err(_) => cov::hit("host_map_guest/err"),
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercalls::*;
    use crate::machine::MachineConfig;
    use crate::owner::PageState;
    use pkvm_aarch64::attrs::Stage;
    use pkvm_aarch64::walk::walk as hw_walk;
    use std::sync::Arc;

    fn boot() -> Arc<Machine> {
        Machine::boot_default()
    }

    /// Writes VM params (nr_vcpus, protected) into a host page.
    fn write_params(m: &Machine, pfn: u64, nr_vcpus: u64, protected: u64) {
        let pa = PhysAddr::from_pfn(pfn);
        m.mem.write_u64(pa, nr_vcpus).unwrap();
        m.mem.write_u64(pa.wrapping_add(8), protected).unwrap();
    }

    const PARAMS_PFN: u64 = 0x40200;
    const DONATE_PFN: u64 = 0x40300;
    const VCPU_PFN: u64 = 0x40310;
    const GUEST_PFN: u64 = 0x40400;
    const MC_PFN: u64 = 0x40500;

    fn make_vm(m: &Machine, protected: u64) -> Handle {
        write_params(m, PARAMS_PFN, 1, protected);
        let handle = m.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, DONATE_PFN, 2]);
        assert!(
            Errno::from_ret(handle).is_none(),
            "init_vm failed: {handle:#x}"
        );
        let r = m.hvc(0, HVC_INIT_VCPU, &[handle, 0, VCPU_PFN]);
        assert_eq!(r, 0, "init_vcpu failed");
        handle as Handle
    }

    #[test]
    fn vm_lifecycle_happy_path() {
        let m = boot();
        let handle = make_vm(&m, 1);
        assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[handle as u64, 0]), 0);
        // Top up the memcache and map a guest page.
        assert_eq!(
            m.hvc(
                0,
                HVC_TOPUP_MEMCACHE,
                &[PhysAddr::from_pfn(MC_PFN).bits(), 8]
            ),
            0
        );
        assert_eq!(m.hvc(0, HVC_HOST_MAP_GUEST, &[GUEST_PFN, 0x10]), 0);
        // Guest reads the page successfully.
        m.push_guest_op(handle, 0, GuestOp::Read(0x10 * PAGE_SIZE))
            .unwrap();
        assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::CONTINUE);
        assert_eq!(m.hvc(0, HVC_VCPU_PUT, &[]), 0);
        assert_eq!(m.hvc(0, HVC_TEARDOWN_VM, &[handle as u64]), 0);
        // The guest page is now reclaimable.
        assert_eq!(m.hvc(0, HVC_HOST_RECLAIM_PAGE, &[GUEST_PFN]), 0);
        assert!(m.panicked().is_none());
    }

    #[test]
    fn guest_fault_exit_then_map_then_retry() {
        let m = boot();
        let handle = make_vm(&m, 1);
        assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[handle as u64, 0]), 0);
        assert_eq!(
            m.hvc(
                0,
                HVC_TOPUP_MEMCACHE,
                &[PhysAddr::from_pfn(MC_PFN).bits(), 8]
            ),
            0
        );
        m.push_guest_op(handle, 0, GuestOp::Write(0x20 * PAGE_SIZE, 0x77))
            .unwrap();
        // First run: stage 2 abort exit with the faulting IPA in x2.
        assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::MEM_ABORT);
        let gipa = m.cpus[0].lock().regs.get(2);
        assert_eq!(gipa, 0x20 * PAGE_SIZE);
        // Host resolves the fault and re-runs the guest.
        assert_eq!(m.hvc(0, HVC_HOST_MAP_GUEST, &[GUEST_PFN, 0x20]), 0);
        m.push_guest_op(handle, 0, GuestOp::Write(0x20 * PAGE_SIZE, 0x77))
            .unwrap();
        assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::CONTINUE);
        assert_eq!(m.mem.read_u64(PhysAddr::from_pfn(GUEST_PFN)).unwrap(), 0x77);
    }

    #[test]
    fn protected_vm_donation_hides_page_from_host() {
        let m = boot();
        let handle = make_vm(&m, 1);
        assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[handle as u64, 0]), 0);
        assert_eq!(
            m.hvc(
                0,
                HVC_TOPUP_MEMCACHE,
                &[PhysAddr::from_pfn(MC_PFN).bits(), 8]
            ),
            0
        );
        assert_eq!(m.hvc(0, HVC_HOST_MAP_GUEST, &[GUEST_PFN, 0x10]), 0);
        // The host may no longer touch the donated page.
        assert!(m
            .host_access(1, PhysAddr::from_pfn(GUEST_PFN).bits(), Access::Read)
            .is_err());
    }

    #[test]
    fn unprotected_vm_share_keeps_host_access() {
        let m = boot();
        let handle = make_vm(&m, 0);
        assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[handle as u64, 0]), 0);
        assert_eq!(
            m.hvc(
                0,
                HVC_TOPUP_MEMCACHE,
                &[PhysAddr::from_pfn(MC_PFN).bits(), 8]
            ),
            0
        );
        assert_eq!(m.hvc(0, HVC_HOST_MAP_GUEST, &[GUEST_PFN, 0x10]), 0);
        // Shared, not donated: the host can still read it.
        assert!(m
            .host_access(1, PhysAddr::from_pfn(GUEST_PFN).bits(), Access::Read)
            .is_ok());
    }

    #[test]
    fn guest_share_back_and_unshare() {
        let m = boot();
        let handle = make_vm(&m, 1);
        assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[handle as u64, 0]), 0);
        assert_eq!(
            m.hvc(
                0,
                HVC_TOPUP_MEMCACHE,
                &[PhysAddr::from_pfn(MC_PFN).bits(), 8]
            ),
            0
        );
        assert_eq!(m.hvc(0, HVC_HOST_MAP_GUEST, &[GUEST_PFN, 0x10]), 0);
        // Guest shares the page back with the host (virtio-style).
        m.push_guest_op(handle, 0, GuestOp::HvcShareHost(0x10 * PAGE_SIZE))
            .unwrap();
        assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::GUEST_HVC);
        assert!(m
            .host_access(1, PhysAddr::from_pfn(GUEST_PFN).bits(), Access::Read)
            .is_ok());
        let host_root = m.state.host_pgt.lock().root;
        let tr = hw_walk(
            &m.mem,
            Stage::Stage2,
            host_root,
            PhysAddr::from_pfn(GUEST_PFN).bits(),
        )
        .unwrap();
        assert_eq!(tr.attrs.sw, PageState::SharedBorrowed.to_sw());
        // And revokes it.
        m.push_guest_op(handle, 0, GuestOp::HvcUnshareHost(0x10 * PAGE_SIZE))
            .unwrap();
        assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::GUEST_HVC);
        assert!(m
            .host_access(1, PhysAddr::from_pfn(GUEST_PFN).bits(), Access::Read)
            .is_err());
    }

    #[test]
    fn vcpu_load_context_switches_vttbr() {
        let m = boot();
        let handle = make_vm(&m, 1);
        let host_root = m.state.host_pgt.lock().root;
        assert_eq!(m.cpus[0].lock().sysregs.vttbr_el2.vmid(), 0);
        assert_eq!(m.cpus[0].lock().sysregs.vttbr_el2.baddr(), host_root);
        assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[handle as u64, 0]), 0);
        {
            let g = m.cpus[0].lock();
            assert_eq!(g.sysregs.vttbr_el2.vmid(), 1, "guest VMID installed");
            assert_ne!(
                g.sysregs.vttbr_el2.baddr(),
                host_root,
                "guest stage 2 root installed"
            );
        }
        assert_eq!(m.hvc(0, HVC_VCPU_PUT, &[]), 0);
        let g = m.cpus[0].lock();
        assert_eq!(g.sysregs.vttbr_el2.vmid(), 0, "host VMID restored");
        assert_eq!(g.sysregs.vttbr_el2.baddr(), host_root);
    }

    #[test]
    fn vcpu_reg_access_roundtrip() {
        let m = boot();
        let handle = make_vm(&m, 1);
        assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[handle as u64, 0]), 0);
        assert_eq!(m.hvc(0, HVC_VCPU_SET_REG, &[7, 0xdead]), 0);
        assert_eq!(m.hvc(0, HVC_VCPU_GET_REG, &[7]), 0);
        assert_eq!(m.cpus[0].lock().regs.get(2), 0xdead, "value returned in x2");
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_VCPU_GET_REG, &[31])),
            Some(Errno::EINVAL)
        );
        assert_eq!(m.hvc(0, HVC_VCPU_PUT, &[]), 0);
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_VCPU_GET_REG, &[0])),
            Some(Errno::ENOENT)
        );
    }

    #[test]
    fn vcpu_load_errors() {
        let m = boot();
        let handle = make_vm(&m, 1);
        // Unknown handle / bad index / double load / load of uninit slot.
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_VCPU_LOAD, &[0x9999, 0])),
            Some(Errno::ENOENT)
        );
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_VCPU_LOAD, &[handle as u64, 5])),
            Some(Errno::EINVAL)
        );
        assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[handle as u64, 0]), 0);
        assert_eq!(
            Errno::from_ret(m.hvc(1, HVC_VCPU_LOAD, &[handle as u64, 0])),
            Some(Errno::EBUSY)
        );
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_VCPU_LOAD, &[handle as u64, 0])),
            Some(Errno::EBUSY)
        );
    }

    #[test]
    fn teardown_with_loaded_vcpu_is_busy() {
        let m = boot();
        let handle = make_vm(&m, 1);
        assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[handle as u64, 0]), 0);
        assert_eq!(
            Errno::from_ret(m.hvc(1, HVC_TEARDOWN_VM, &[handle as u64])),
            Some(Errno::EBUSY)
        );
        assert_eq!(m.hvc(0, HVC_VCPU_PUT, &[]), 0);
        assert_eq!(m.hvc(0, HVC_TEARDOWN_VM, &[handle as u64]), 0);
    }

    #[test]
    fn init_vm_rejects_bad_params() {
        let m = boot();
        write_params(&m, PARAMS_PFN, 0, 0);
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, DONATE_PFN, 2])),
            Some(Errno::EINVAL)
        );
        write_params(&m, PARAMS_PFN, 1, 0);
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, DONATE_PFN, 3])),
            Some(Errno::EINVAL)
        );
        // Donating pages the host no longer owns fails.
        write_params(&m, PARAMS_PFN, 1, 0);
        let h = m.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, DONATE_PFN, 2]);
        assert!(Errno::from_ret(h).is_none());
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, DONATE_PFN, 2])),
            Some(Errno::EPERM)
        );
    }

    const FW_PFN: u64 = 0x40600;

    #[test]
    fn firmware_boot_lifecycle() {
        let m = boot();
        write_params(&m, PARAMS_PFN, 1, 1);
        let handle = m.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, DONATE_PFN, 2]);
        assert!(Errno::from_ret(handle).is_none());
        // Donate a 2-page firmware region before any vCPU exists.
        assert_eq!(
            m.hvc(0, HVC_VM_LOAD_FIRMWARE, &[handle, FW_PFN, 0x80, 2]),
            0
        );
        // The host may no longer touch the firmware pages.
        assert!(m
            .host_access(1, PhysAddr::from_pfn(FW_PFN).bits(), Access::Read)
            .is_err());
        // Once a vCPU is initialised, further loads are refused.
        assert_eq!(m.hvc(0, HVC_INIT_VCPU, &[handle, 0, VCPU_PFN]), 0);
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_VM_LOAD_FIRMWARE, &[handle, FW_PFN + 8, 0xa0, 1])),
            Some(Errno::EBUSY)
        );
        // The guest boots from its firmware.
        assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[handle, 0]), 0);
        m.push_guest_op(handle as Handle, 0, GuestOp::Read(0x80 * PAGE_SIZE))
            .unwrap();
        assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::CONTINUE);
        assert_eq!(m.hvc(0, HVC_VCPU_PUT, &[]), 0);
        // Teardown retires the region: never reclaimable, never host's.
        assert_eq!(m.hvc(0, HVC_TEARDOWN_VM, &[handle]), 0);
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_HOST_RECLAIM_PAGE, &[FW_PFN])),
            Some(Errno::EPERM)
        );
        assert!(m
            .host_access(1, PhysAddr::from_pfn(FW_PFN).bits(), Access::Read)
            .is_err());
        assert!(m.panicked().is_none());
    }

    #[test]
    fn firmware_load_rejects_bad_targets() {
        let m = boot();
        // Unknown handle.
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_VM_LOAD_FIRMWARE, &[0x9999, FW_PFN, 0x80, 1])),
            Some(Errno::ENOENT)
        );
        // Unprotected VM.
        let unprot = make_vm(&m, 0);
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_VM_LOAD_FIRMWARE, &[unprot as u64, FW_PFN, 0x80, 1])),
            Some(Errno::EPERM)
        );
        // Zero or oversized page counts.
        write_params(&m, PARAMS_PFN, 1, 1);
        let h = m.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, 0x40320, 2]);
        assert!(Errno::from_ret(h).is_none());
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_VM_LOAD_FIRMWARE, &[h, FW_PFN, 0x80, 0])),
            Some(Errno::EINVAL)
        );
        assert_eq!(
            Errno::from_ret(m.hvc(
                0,
                HVC_VM_LOAD_FIRMWARE,
                &[h, FW_PFN, 0x80, MAX_FIRMWARE_PAGES + 1]
            )),
            Some(Errno::EINVAL)
        );
    }

    #[test]
    fn syn_firmware_reclaim_hands_firmware_back() {
        let m = boot();
        m.faults.inject(Fault::SynFirmwareReclaim);
        write_params(&m, PARAMS_PFN, 1, 1);
        let handle = m.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, DONATE_PFN, 2]);
        assert!(Errno::from_ret(handle).is_none());
        assert_eq!(
            m.hvc(0, HVC_VM_LOAD_FIRMWARE, &[handle, FW_PFN, 0x80, 1]),
            0
        );
        assert_eq!(m.hvc(0, HVC_TEARDOWN_VM, &[handle]), 0);
        // The bug queued the firmware page for reclaim; the host gets it.
        assert_eq!(m.hvc(0, HVC_HOST_RECLAIM_PAGE, &[FW_PFN]), 0);
        assert!(m
            .host_access(1, PhysAddr::from_pfn(FW_PFN).bits(), Access::Read)
            .is_ok());
    }

    #[test]
    fn bug3_load_of_uninit_vcpu_returns_garbage() {
        let m = boot();
        write_params(&m, PARAMS_PFN, 2, 1);
        let handle = m.hvc(0, HVC_INIT_VM, &[PARAMS_PFN, DONATE_PFN, 2]);
        m.hvc(0, HVC_INIT_VCPU, &[handle, 0, VCPU_PFN]);
        // Slot 1 is never initialised. A clean load fails...
        assert_eq!(
            Errno::from_ret(m.hvc(0, HVC_VCPU_LOAD, &[handle, 1])),
            Some(Errno::ENOENT)
        );
        // ...but with bug 3 injected it "succeeds" with garbage state.
        m.faults.inject(Fault::Bug3VcpuLoadRace);
        assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[handle, 1]), 0);
        let g = m.cpus[0].lock();
        let (_, _, vcpu) = g.loaded_vcpu.as_ref().unwrap();
        assert_eq!(vcpu.regs.get(0), crate::vm::UNINIT_PATTERN);
    }

    #[test]
    fn bug4_racing_host_s1_panics_when_injected() {
        let m = boot();
        // Host builds a stage 1 table in its own memory: va 0 -> some RAM.
        let s1_root = PhysAddr::new(0x4060_0000);
        // Build the table by direct writes (host memory is host's to edit).
        let l1 = PhysAddr::new(0x4060_1000);
        let l2 = PhysAddr::new(0x4060_2000);
        let l3 = PhysAddr::new(0x4060_3000);
        use pkvm_aarch64::desc::Pte;
        m.mem.write_pte(s1_root, 0, Pte::table(l1)).unwrap();
        m.mem.write_pte(l1, 0, Pte::table(l2)).unwrap();
        m.mem.write_pte(l2, 0, Pte::table(l3)).unwrap();
        m.mem
            .write_pte(
                l3,
                0,
                Pte::leaf(
                    Stage::Stage1,
                    3,
                    PhysAddr::new(0x4070_0000),
                    pkvm_aarch64::attrs::Attrs::normal(pkvm_aarch64::attrs::Perms::RWX),
                ),
            )
            .unwrap();
        m.register_host_s1(s1_root);
        // Clean hypervisor: the racing host merely gets a fault injected.
        let r = m.host_access_via_s1(0, 0, Access::Read, || {
            m.mem.write_pte(l3, 0, Pte::invalid()).unwrap();
        });
        assert!(r.is_err());
        assert!(m.panicked().is_none(), "clean pKVM must tolerate the race");
        // Restore the entry; with bug 4 injected the same race panics EL2.
        m.mem
            .write_pte(
                l3,
                0,
                Pte::leaf(
                    Stage::Stage1,
                    3,
                    PhysAddr::new(0x4070_0000),
                    pkvm_aarch64::attrs::Attrs::normal(pkvm_aarch64::attrs::Perms::RWX),
                ),
            )
            .unwrap();
        m.faults.inject(Fault::Bug4HostFaultRace);
        let _ = m.host_access_via_s1(0, 0, Access::Read, || {
            m.mem.write_pte(l3, 0, Pte::invalid()).unwrap();
        });
        assert!(m.panicked().is_some(), "bug 4 must panic the hypervisor");
    }

    #[test]
    fn bug5_huge_dram_aliases_uart_into_linear_map() {
        let faults = Arc::new(crate::faults::FaultSet::none());
        faults.inject(Fault::Bug5LinearMapOverlap);
        let m = Machine::boot(
            MachineConfig::huge_dram(),
            Arc::new(crate::hooks::NoHooks),
            faults,
        );
        // The UART VA now lies inside the linear span; the UART mapping
        // (installed last) clobbered a linear-map entry, so a hypervisor
        // access to that "RAM" VA reaches the device.
        let hyp_root = m.state.hyp_pgt.lock().root;
        let uart_va = m.state.layout.uart_va;
        assert!(m.state.layout.in_linear_map(uart_va));
        let tr = hw_walk(&m.mem, Stage::Stage1, hyp_root, uart_va.bits()).unwrap();
        assert!(
            m.mem.is_mmio(tr.oa),
            "linear-map VA reaches the device: unchecked IO access"
        );
        // The clean layout keeps them disjoint even with huge DRAM.
        let clean = Machine::boot(
            MachineConfig::huge_dram(),
            Arc::new(crate::hooks::NoHooks),
            Arc::new(crate::faults::FaultSet::none()),
        );
        assert!(!clean.state.layout.in_linear_map(clean.state.layout.uart_va));
    }
}
