//! Per-vCPU memory caches (`kvm_hyp_memcache`).
//!
//! Guest stage 2 tables cannot come from the hypervisor pool (the host
//! must pay for its guests' memory), so the host donates pages into a
//! per-vCPU *memcache* before running operations that may need them.
//! As in pKVM, the cache is an intrusive stack threaded through the pages
//! themselves: the first 8 bytes of each free page hold the physical
//! address of the next.
//!
//! This module is the site of two of the real pKVM bugs reproduced here
//! (§6 bugs 1 and 2): the top-up path must check that donated addresses
//! are page-aligned and that the requested count is sane; see
//! [`crate::mem_protect`] for the checks at the donation boundary.

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::memory::PhysMem;

use crate::error::{Errno, HypResult};

/// The maximum top-up size accepted in one hypercall; requests beyond this
/// indicate a host error (or an attack) and are rejected with `E2BIG`.
pub const MEMCACHE_MAX_TOPUP: u64 = 64;

/// An intrusive stack of donated pages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Memcache {
    head: Option<PhysAddr>,
    nr_pages: u64,
}

impl Memcache {
    /// An empty cache.
    pub const fn new() -> Self {
        Self {
            head: None,
            nr_pages: 0,
        }
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> u64 {
        self.nr_pages
    }

    /// Returns `true` if the cache holds no pages.
    pub fn is_empty(&self) -> bool {
        self.nr_pages == 0
    }

    /// Pushes `page` onto the cache, threading the link through memory.
    ///
    /// The page must already be owned by the hypervisor; the caller (the
    /// donation path) establishes that.
    pub fn push(&mut self, mem: &PhysMem, page: PhysAddr) {
        let next = self.head.map_or(0, PhysAddr::bits);
        mem.write_u64(page, next)
            .expect("memcache page must be backed");
        self.head = Some(page);
        self.nr_pages += 1;
    }

    /// Pops a page, zeroing the link word.
    ///
    /// # Errors
    ///
    /// Returns `ENOMEM` when the cache is empty (the caller surfaces this
    /// to the host, which responds by topping up and retrying).
    pub fn pop(&mut self, mem: &PhysMem) -> HypResult<PhysAddr> {
        let Some(head) = self.head else {
            crate::cov::hit("memcache/empty");
            return Err(Errno::ENOMEM);
        };
        let next = mem.read_u64(head).unwrap_or(0);
        let _ = mem.write_u64(head, 0);
        self.head = sanitize_link(next);
        self.nr_pages -= 1;
        crate::cov::hit("memcache/pop");
        Ok(head)
    }

    /// Drains the cache, returning all pages (teardown path).
    pub fn drain(&mut self, mem: &PhysMem) -> Vec<PhysAddr> {
        let mut pages = Vec::with_capacity(self.nr_pages as usize);
        while let Ok(p) = self.pop(mem) {
            pages.push(p);
        }
        pages
    }

    /// The pages currently cached, without removing them (for abstraction
    /// recording).
    pub fn peek_pages(&self, mem: &PhysMem) -> Vec<PhysAddr> {
        let mut pages = Vec::new();
        let mut cur = self.head;
        // The links live in memory the host once controlled; a corrupted
        // link must truncate the walk, never panic or cycle, so the walk
        // is bounded by the page counter.
        while let Some(p) = cur {
            if pages.len() as u64 >= self.nr_pages {
                break;
            }
            pages.push(p);
            cur = sanitize_link(mem.read_u64(p).unwrap_or(0));
        }
        pages
    }
}

/// Interprets one intrusive link word defensively: zero ends the list,
/// and a value that is not a page-aligned address the machine backs with
/// RAM is treated the same way. The link words live in donated pages —
/// memory the host controlled until a moment ago — so garbage here is an
/// attack surface, not an internal invariant.
fn sanitize_link(next: u64) -> Option<PhysAddr> {
    if next == 0 || !next.is_multiple_of(PAGE_SIZE) {
        return None;
    }
    Some(PhysAddr::new(next))
}

/// Zeroes one donated page.
///
/// With pKVM bug 1 injected, the caller passes an *unaligned* address here
/// and this dutifully zeroes `PAGE_SIZE` bytes from it — spilling into the
/// following page, which the host may not own. The clean top-up path
/// rejects unaligned donations before reaching this.
pub fn wipe_donated(mem: &PhysMem, addr: PhysAddr) {
    let zeros = [0u8; PAGE_SIZE as usize];
    // Deliberately *not* page-truncated: this mirrors the memset in the
    // buggy top-up path, whose extent depended on the unvalidated address.
    let _ = mem.write_bytes(addr, &zeros);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkvm_aarch64::memory::MemRegion;

    fn mem() -> PhysMem {
        PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x40_0000)])
    }

    #[test]
    fn lifo_order() {
        let m = mem();
        let mut mc = Memcache::new();
        let a = PhysAddr::new(0x4000_1000);
        let b = PhysAddr::new(0x4000_2000);
        mc.push(&m, a);
        mc.push(&m, b);
        assert_eq!(mc.len(), 2);
        assert_eq!(mc.pop(&m).unwrap(), b);
        assert_eq!(mc.pop(&m).unwrap(), a);
        assert_eq!(mc.pop(&m), Err(Errno::ENOMEM));
    }

    #[test]
    fn links_live_in_the_pages_themselves() {
        let m = mem();
        let mut mc = Memcache::new();
        let a = PhysAddr::new(0x4000_1000);
        let b = PhysAddr::new(0x4000_2000);
        mc.push(&m, a);
        mc.push(&m, b);
        // b's first word must point at a.
        assert_eq!(m.read_u64(b).unwrap(), a.bits());
        assert_eq!(m.read_u64(a).unwrap(), 0);
    }

    #[test]
    fn pop_clears_link_word() {
        let m = mem();
        let mut mc = Memcache::new();
        let a = PhysAddr::new(0x4000_1000);
        mc.push(&m, a);
        mc.pop(&m).unwrap();
        assert_eq!(m.read_u64(a).unwrap(), 0);
    }

    #[test]
    fn peek_does_not_consume() {
        let m = mem();
        let mut mc = Memcache::new();
        for pfn in 1..=3u64 {
            mc.push(&m, PhysAddr::new(0x4000_0000 + pfn * 0x1000));
        }
        let pages = mc.peek_pages(&m);
        assert_eq!(pages.len(), 3);
        assert_eq!(mc.len(), 3);
    }

    #[test]
    fn drain_empties() {
        let m = mem();
        let mut mc = Memcache::new();
        mc.push(&m, PhysAddr::new(0x4000_1000));
        mc.push(&m, PhysAddr::new(0x4000_2000));
        assert_eq!(mc.drain(&m).len(), 2);
        assert!(mc.is_empty());
    }

    #[test]
    fn wipe_donated_spills_when_unaligned() {
        // The essence of real bug 1: zeroing from an unaligned "page"
        // crosses into the next physical page.
        let m = mem();
        let victim = PhysAddr::new(0x4000_2000);
        m.write_u64(victim, 0xdead_beef).unwrap();
        wipe_donated(&m, PhysAddr::new(0x4000_1800));
        assert_eq!(
            m.read_u64(victim).unwrap(),
            0,
            "spilled zeroing reached the next page"
        );
    }
}
