//! Custom coverage infrastructure.
//!
//! The paper could not use the kernel's GCOV at EL2 and built bespoke
//! coverage plumbing (§5 "Coverage"). We reproduce the *capability* with a
//! process-global registry of named coverage points: the implementation and
//! the specification both declare their interesting branch points
//! statically and record hits through [`hit`]; the harness computes
//! hit/total percentages per crate, like the paper's line/branch/function
//! coverage reports.
//!
//! A point name is `"area/site"`, e.g. `"host_share_hyp/check_failed"`.

use std::collections::HashMap;

use pkvm_aarch64::sync::Mutex;

static HITS: Mutex<Option<HashMap<&'static str, u64>>> = Mutex::new(None);

/// Records one hit of the named coverage point.
#[inline]
pub fn hit(point: &'static str) {
    let mut g = HITS.lock();
    *g.get_or_insert_with(HashMap::new).entry(point).or_insert(0) += 1;
}

/// Returns the hit count of `point`.
pub fn hits(point: &str) -> u64 {
    HITS.lock()
        .as_ref()
        .and_then(|m| m.get(point).copied())
        .unwrap_or(0)
}

/// Resets all counters (between test campaigns).
///
/// The registry is process-global, so a reset issued while other threads
/// (parallel campaign or fuzz workers) are mid-run destroys *their*
/// counters too. Code that needs a per-run delta should take a
/// [`snapshot`] before the run and subtract it afterwards with
/// [`Report::diff`] instead.
pub fn reset() {
    *HITS.lock() = None;
}

/// A point-in-time copy of every counter, for race-free deltas.
///
/// Taking a snapshot never disturbs the registry: concurrent workers keep
/// accumulating, and each worker's `snapshot → run → diff` window contains
/// at least its own hits (plus any that raced in — an over-approximation,
/// never a loss).
#[derive(Clone, Debug, Default)]
pub struct Snapshot(HashMap<&'static str, u64>);

/// Captures the current counters without modifying them.
pub fn snapshot() -> Snapshot {
    Snapshot(HITS.lock().clone().unwrap_or_default())
}

impl Snapshot {
    /// The recorded hit count of `point` at snapshot time.
    pub fn hits(&self, point: &str) -> u64 {
        self.0.get(point).copied().unwrap_or(0)
    }
}

/// A coverage report over a static list of declared points.
#[derive(Clone, Debug)]
pub struct Report {
    /// Points with their hit counts (0 for unhit).
    pub points: Vec<(&'static str, u64)>,
}

impl Report {
    /// Builds a report for the declared `points`.
    pub fn over(points: &[&'static str]) -> Report {
        let g = HITS.lock();
        let map = g.as_ref();
        Report {
            points: points
                .iter()
                .map(|&p| (p, map.and_then(|m| m.get(p).copied()).unwrap_or(0)))
                .collect(),
        }
    }

    /// Number of points hit at least once.
    pub fn hit_count(&self) -> usize {
        self.points.iter().filter(|(_, n)| *n > 0).count()
    }

    /// Total number of declared points.
    pub fn total(&self) -> usize {
        self.points.len()
    }

    /// Coverage percentage.
    pub fn percent(&self) -> f64 {
        if self.points.is_empty() {
            100.0
        } else {
            100.0 * self.hit_count() as f64 / self.total() as f64
        }
    }

    /// The declared points never hit.
    pub fn missed(&self) -> Vec<&'static str> {
        self.points
            .iter()
            .filter(|(_, n)| *n == 0)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Builds a report of hits accumulated *since* `before` (counts are
    /// per-point saturating differences against the snapshot). This is
    /// the per-run delta primitive: unlike a global [`reset`], it cannot
    /// destroy counters a concurrently running worker is accumulating.
    pub fn diff(&self, before: &Snapshot) -> Report {
        Report {
            points: self
                .points
                .iter()
                .map(|&(p, n)| (p, n.saturating_sub(before.hits(p))))
                .collect(),
        }
    }
}

/// All coverage points declared by the hypervisor implementation.
///
/// Kept adjacent to the code that hits them; the `coverage_points_exist`
/// integration test exercises the whole API and checks this list stays in
/// sync.
pub const HYP_COV_POINTS: &[&str] = &[
    "handle_trap/hvc",
    "handle_trap/host_dabt",
    "handle_trap/unknown_hvc",
    "handle_trap/smc",
    "host_share_hyp/ok",
    "host_share_hyp/check_failed",
    "host_unshare_hyp/ok",
    "host_unshare_hyp/check_failed",
    "host_reclaim_page/ok",
    "host_reclaim_page/not_guest_page",
    "host_map_guest/ok",
    "host_map_guest/err",
    "host_map_guest/no_vcpu",
    "init_vm/ok",
    "init_vm/bad_params",
    "init_vm/donate_failed",
    "init_vm/table_full",
    "init_vcpu/ok",
    "init_vcpu/err",
    "teardown_vm/ok",
    "teardown_vm/err",
    "teardown_vm/busy",
    "vcpu_load/ok",
    "vcpu_load/err",
    "vcpu_put/ok",
    "vcpu_put/none",
    "vcpu_run/exit",
    "vcpu_run/no_vcpu",
    "vcpu_run/guest_hvc_share",
    "vcpu_run/guest_hvc_unshare",
    "vcpu_run/guest_abort",
    "topup_memcache/ok",
    "topup_memcache/unaligned",
    "topup_memcache/too_big",
    "topup_memcache/err",
    "host_abort/mapped_on_demand",
    "host_abort/denied",
    "host_abort/mmio",
    "host_abort/s1_walk_raced",
    "do_share/ok",
    "do_share/check_failed",
    "do_unshare/ok",
    "do_unshare/check_failed",
    "do_donate/ok",
    "do_donate/check_failed",
    "pgtable/map_block",
    "pgtable/map_page",
    "pgtable/split_block",
    "pgtable/free_table",
    "pgtable/oom",
    "pool/alloc",
    "pool/oom",
    "memcache/pop",
    "memcache/empty",
    "vcpu_reg/get",
    "vcpu_reg/set",
    "tlbi/range",
    "tlbi/vmid",
    "tlbi/suppressed",
];

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; serialise the tests that reset it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn hits_accumulate_and_reset() {
        let _g = TEST_LOCK.lock();
        reset();
        hit("host_share_hyp/ok");
        hit("host_share_hyp/ok");
        hit("do_share/ok");
        assert_eq!(hits("host_share_hyp/ok"), 2);
        assert_eq!(hits("do_share/ok"), 1);
        assert_eq!(hits("never"), 0);
        reset();
        assert_eq!(hits("host_share_hyp/ok"), 0);
    }

    #[test]
    fn report_percentages() {
        let _g = TEST_LOCK.lock();
        reset();
        hit("a");
        let r = Report::over(&["a", "b", "c", "d"]);
        assert_eq!(r.hit_count(), 1);
        assert_eq!(r.total(), 4);
        assert!((r.percent() - 25.0).abs() < 1e-9);
        assert_eq!(r.missed(), vec!["b", "c", "d"]);
        reset();
    }

    #[test]
    fn snapshot_diff_is_a_race_free_delta() {
        let _g = TEST_LOCK.lock();
        reset();
        hit("a");
        hit("a");
        hit("b");
        let before = snapshot();
        assert_eq!(before.hits("a"), 2);
        hit("a");
        hit("c");
        let delta = Report::over(&["a", "b", "c", "d"]).diff(&before);
        assert_eq!(delta.points, vec![("a", 1), ("b", 0), ("c", 1), ("d", 0)]);
        assert_eq!(delta.hit_count(), 2);
        assert_eq!(delta.missed(), vec!["b", "d"]);
        // The snapshot took nothing away from the live registry.
        assert_eq!(hits("a"), 3);
        reset();
    }

    #[test]
    fn declared_points_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in HYP_COV_POINTS {
            assert!(seen.insert(p), "duplicate coverage point {p}");
        }
    }
}
