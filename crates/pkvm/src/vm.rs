//! Guest virtual machines and vCPUs.
//!
//! pKVM keeps per-VM metadata (configuration, the guest's stage 2 table,
//! saved vCPU state) in hypervisor memory *donated by the host* at
//! `init_vm`/`init_vcpu` time. A single lock protects the table of VMs;
//! each VM has its own lock for its stage 2 and vCPU metadata; and a vCPU,
//! once *loaded* onto a physical CPU, is owned by that hardware thread
//! rather than the VM lock (§3.1). We model that last transfer literally:
//! loading moves the [`Vcpu`] value out of the VM into per-CPU state.

use std::collections::VecDeque;
use std::sync::Arc;

use pkvm_aarch64::addr::PhysAddr;
use pkvm_aarch64::attrs::Stage;
use pkvm_aarch64::sync::Mutex;
use pkvm_aarch64::sysreg::GprFile;

use crate::error::{Errno, HypResult};
use crate::memcache::Memcache;
use crate::owner::OwnerId;
use crate::pgtable::KvmPgtable;

/// A VM handle as returned to the host by `init_vm`.
pub type Handle = u32;

/// Handles start here so they are visibly not indices.
pub const HANDLE_OFFSET: Handle = 0x1000;

/// Maximum concurrently-live VMs.
pub const MAX_VMS: usize = 16;

/// The handle of the VM in table slot `slot`.
pub const fn handle_of_slot(slot: usize) -> Handle {
    HANDLE_OFFSET + slot as Handle
}

/// The table slot of `handle`, if plausible.
pub fn slot_of_handle(handle: Handle) -> Option<usize> {
    let slot = handle.checked_sub(HANDLE_OFFSET)? as usize;
    (slot < MAX_VMS).then_some(slot)
}

/// One scripted guest action, consumed by `vcpu_run`.
///
/// The simulation does not execute guest instructions; tests and the
/// random tester enqueue the memory accesses and hypercalls a guest would
/// perform, and `vcpu_run` produces exactly the exception flows (stage 2
/// aborts, guest HVCs) the real hypervisor would see.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuestOp {
    /// Guest reads its IPA `addr`.
    Read(u64),
    /// Guest writes `value` to its IPA `addr`.
    Write(u64, u64),
    /// Guest hypercall: share the page at IPA `addr` back with the host.
    HvcShareHost(u64),
    /// Guest hypercall: unshare the page at IPA `addr` from the host.
    HvcUnshareHost(u64),
    /// Guest executes WFI (yields to the host).
    Wfi,
}

/// Saved state of one virtual CPU.
#[derive(Clone, Debug, Default)]
pub struct Vcpu {
    /// The guest's saved general-purpose registers.
    pub regs: GprFile,
    /// Pages donated by the host for this vCPU's stage 2 tables.
    pub memcache: Memcache,
    /// Scripted guest behaviour, consumed one op per `vcpu_run`.
    pub pending: VecDeque<GuestOp>,
}

/// The pattern our simulated "uninitialised hypervisor memory" holds; a
/// vCPU fabricated by the bug-3 path has registers full of this.
pub const UNINIT_PATTERN: u64 = 0xaaaa_aaaa_aaaa_aaaa;

impl Vcpu {
    /// A vCPU as `init_vcpu` creates it: zeroed registers.
    pub fn initialised() -> Self {
        Self::default()
    }

    /// A vCPU as the bug-3 race observes it: garbage register contents.
    pub fn uninitialised_garbage() -> Self {
        Self {
            regs: GprFile {
                x: [UNINIT_PATTERN; 31],
            },
            ..Self::default()
        }
    }
}

/// The state of one vCPU slot in a VM.
#[derive(Debug)]
pub enum VcpuSlot {
    /// `init_vcpu` has not run for this index.
    Uninit,
    /// Initialised and resident under the VM lock.
    Present(Box<Vcpu>),
    /// Loaded onto (owned by) a physical CPU.
    LoadedOn(usize),
}

impl VcpuSlot {
    /// Returns `true` for `Present`.
    pub fn is_present(&self) -> bool {
        matches!(self, VcpuSlot::Present(_))
    }
}

/// VM state protected by the per-VM lock.
#[derive(Debug)]
pub struct VmInner {
    /// The guest's stage 2 table.
    pub pgt: KvmPgtable,
    /// Per-index vCPU slots (length `nr_vcpus`).
    pub vcpus: Vec<VcpuSlot>,
    /// Host pages donated for VM metadata (returned at teardown).
    pub donated: Vec<PhysAddr>,
    /// Host pages donated as the pvmfw-style firmware region
    /// (`vm_load_firmware`). Never returned to the host: at teardown they
    /// are wiped and retired to the hypervisor.
    pub firmware: Vec<PhysAddr>,
}

/// One guest VM.
#[derive(Debug)]
pub struct Vm {
    /// The handle the host uses to name this VM.
    pub handle: Handle,
    /// Table slot (determines the guest [`OwnerId`] and VMID).
    pub slot: usize,
    /// Boot-monotonic incarnation id. Handles are slot-derived and reused
    /// after teardown, so two VMs can carry the same handle over a run's
    /// lifetime; the incarnation id is never reused and lets observers
    /// (the ghost oracle) tell a reused handle from the same VM.
    pub uniq: u64,
    /// Protected VMs receive *donated* memory; unprotected ones share.
    pub protected: bool,
    /// Number of vCPU slots.
    pub nr_vcpus: usize,
    /// Lock-protected stage 2 and vCPU state.
    pub inner: Mutex<VmInner>,
}

impl Vm {
    /// The guest's owner id in host-table annotations.
    pub fn owner_id(&self) -> OwnerId {
        OwnerId::guest(self.slot)
    }

    /// The guest's VMID (slot + 1; VMID 0 is the host).
    pub fn vmid(&self) -> u16 {
        self.slot as u16 + 1
    }
}

/// The table of live VMs, protected by its own lock.
#[derive(Debug, Default)]
pub struct VmTable {
    slots: Vec<Option<Arc<Vm>>>,
    /// Source of [`Vm::uniq`] incarnation ids (starts at 1; 0 never names
    /// a VM).
    next_uniq: u64,
}

impl VmTable {
    /// An empty table with `MAX_VMS` slots.
    pub fn new() -> Self {
        Self {
            slots: (0..MAX_VMS).map(|_| None).collect(),
            next_uniq: 0,
        }
    }

    /// Inserts a new VM, returning it.
    ///
    /// # Errors
    ///
    /// Returns `ENOMEM` when every slot is taken (mirroring pKVM's handle
    /// allocation failure).
    pub fn insert(
        &mut self,
        protected: bool,
        nr_vcpus: usize,
        s2_root: PhysAddr,
        donated: Vec<PhysAddr>,
    ) -> HypResult<Arc<Vm>> {
        let slot = self
            .slots
            .iter()
            .position(Option::is_none)
            .ok_or(Errno::ENOMEM)?;
        self.next_uniq += 1;
        let vm = Arc::new(Vm {
            handle: handle_of_slot(slot),
            slot,
            uniq: self.next_uniq,
            protected,
            nr_vcpus,
            inner: Mutex::new(VmInner {
                pgt: KvmPgtable {
                    root: s2_root,
                    stage: Stage::Stage2,
                },
                vcpus: (0..nr_vcpus).map(|_| VcpuSlot::Uninit).collect(),
                donated,
                firmware: Vec::new(),
            }),
        });
        self.slots[slot] = Some(Arc::clone(&vm));
        Ok(vm)
    }

    /// Looks up a VM by handle.
    ///
    /// # Errors
    ///
    /// Returns `ENOENT` for unknown or stale handles.
    pub fn get(&self, handle: Handle) -> HypResult<Arc<Vm>> {
        slot_of_handle(handle)
            .and_then(|s| self.slots[s].clone())
            .ok_or(Errno::ENOENT)
    }

    /// Removes a VM by handle (teardown).
    ///
    /// # Errors
    ///
    /// Returns `ENOENT` for unknown handles.
    pub fn remove(&mut self, handle: Handle) -> HypResult<Arc<Vm>> {
        let slot = slot_of_handle(handle).ok_or(Errno::ENOENT)?;
        self.slots[slot].take().ok_or(Errno::ENOENT)
    }

    /// Handles and slots of all live VMs (for abstraction recording).
    pub fn live(&self) -> Vec<(Handle, usize)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|vm| (vm.handle, i)))
            .collect()
    }

    /// Handles and incarnation ids of all live VMs (for the oracle's
    /// handle-reuse disambiguation).
    pub fn live_uniqs(&self) -> Vec<(Handle, u64)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|vm| (vm.handle, vm.uniq)))
            .collect()
    }

    /// Number of live VMs.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Returns `true` if no VMs exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> PhysAddr {
        PhysAddr::new(0x4500_0000)
    }

    #[test]
    fn handles_are_offset_slots() {
        assert_eq!(handle_of_slot(0), 0x1000);
        assert_eq!(slot_of_handle(0x1003), Some(3));
        assert_eq!(slot_of_handle(0x999), None);
        assert_eq!(slot_of_handle(0x1000 + MAX_VMS as u32), None);
    }

    #[test]
    fn insert_get_remove() {
        let mut t = VmTable::new();
        let vm = t.insert(true, 2, root(), vec![]).unwrap();
        assert_eq!(vm.handle, 0x1000);
        assert_eq!(vm.vmid(), 1);
        assert_eq!(vm.owner_id(), OwnerId::guest(0));
        assert_eq!(t.get(vm.handle).unwrap().handle, vm.handle);
        assert_eq!(t.len(), 1);
        t.remove(vm.handle).unwrap();
        assert!(t.is_empty());
        assert!(matches!(t.get(vm.handle), Err(Errno::ENOENT)));
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut t = VmTable::new();
        let a = t.insert(true, 1, root(), vec![]).unwrap();
        let b = t.insert(true, 1, root(), vec![]).unwrap();
        assert_ne!(a.handle, b.handle);
        t.remove(a.handle).unwrap();
        let c = t.insert(false, 1, root(), vec![]).unwrap();
        assert_eq!(c.handle, a.handle, "first free slot is reused");
    }

    #[test]
    fn incarnation_ids_survive_handle_reuse() {
        let mut t = VmTable::new();
        let a = t.insert(true, 1, root(), vec![]).unwrap();
        let a_uniq = a.uniq;
        t.remove(a.handle).unwrap();
        let b = t.insert(true, 1, root(), vec![]).unwrap();
        assert_eq!(b.handle, a.handle, "handle is reused");
        assert_ne!(b.uniq, a_uniq, "incarnation id is not");
        assert_eq!(t.live_uniqs(), vec![(b.handle, b.uniq)]);
    }

    #[test]
    fn table_fills_up() {
        let mut t = VmTable::new();
        for _ in 0..MAX_VMS {
            t.insert(true, 1, root(), vec![]).unwrap();
        }
        assert_eq!(t.insert(true, 1, root(), vec![]).err(), Some(Errno::ENOMEM));
    }

    #[test]
    fn vcpu_slots_start_uninit() {
        let mut t = VmTable::new();
        let vm = t.insert(true, 3, root(), vec![]).unwrap();
        let inner = vm.inner.lock();
        assert_eq!(inner.vcpus.len(), 3);
        assert!(inner.vcpus.iter().all(|s| matches!(s, VcpuSlot::Uninit)));
    }

    #[test]
    fn garbage_vcpu_has_the_uninit_pattern() {
        let v = Vcpu::uninitialised_garbage();
        assert_eq!(v.regs.get(0), UNINIT_PATTERN);
        assert_eq!(v.regs.get(30), UNINIT_PATTERN);
        let w = Vcpu::initialised();
        assert_eq!(w.regs.get(0), 0);
    }
}
