//! The hypervisor's shared state and its locking discipline.
//!
//! Mirroring pKVM (§3.1): rather than one big lock, each page table is
//! protected by its own lock — one for the hypervisor's stage 1, one for
//! the host's stage 2, one per guest — plus one for the VM table, and
//! separate internal locks for the allocator. Handlers take only the locks
//! their operation needs, in a fixed order (host → hyp → vm_table → vm),
//! and the ghost instrumentation records component abstractions exactly at
//! acquisition and release through the lock helpers here.

use std::collections::HashMap;
use std::sync::Arc;

use pkvm_aarch64::memory::PhysMem;
use pkvm_aarch64::sync::{Mutex, MutexGuard};
use pkvm_aarch64::tlb::TlbSet;

use crate::faults::FaultSet;
use crate::hooks::{Component, ComponentView, GhostHooks, HookCtx, VcpuView, VmView};
use crate::mm::HypVaLayout;
use crate::owner::OwnerId;
use crate::pgtable::KvmPgtable;
use crate::pool::HypPool;
use crate::vm::{VcpuSlot, Vm, VmInner, VmTable};

/// Execution context threaded through every handler: the memory, the
/// executing hardware thread, the installed ghost hooks, and the fault
/// injection switches.
pub struct HypCtx<'a> {
    /// Simulated physical memory.
    pub mem: &'a PhysMem,
    /// The simulated per-CPU TLBs the hypervisor must keep coherent.
    pub tlb: &'a TlbSet,
    /// Hardware thread index.
    pub cpu: usize,
    /// Ghost instrumentation (no-op when no oracle is installed).
    pub hooks: &'a dyn GhostHooks,
    /// Injected faults.
    pub faults: &'a FaultSet,
}

impl HypCtx<'_> {
    /// The context handed to hook invocations.
    pub fn hook_ctx(&self) -> HookCtx<'_> {
        HookCtx {
            mem: self.mem,
            cpu: self.cpu,
        }
    }
}

/// The lock-structured shared state of the hypervisor.
pub struct HypState {
    /// The hypervisor page allocator (its own lock, as in the paper).
    pub pool: Mutex<HypPool>,
    /// pKVM's stage 1 table, under the hyp component lock.
    pub hyp_pgt: Mutex<KvmPgtable>,
    /// The host's stage 2 table, under the host component lock.
    pub host_pgt: Mutex<KvmPgtable>,
    /// The table of guest VMs.
    pub vm_table: Mutex<VmTable>,
    /// Pages awaiting `host_reclaim_page` after a VM teardown, with the
    /// owner id they were annotated with.
    pub reclaim: Mutex<HashMap<u64, OwnerId>>,
    /// The EL2 virtual-address layout fixed at initialisation.
    pub layout: HypVaLayout,
    /// The hypervisor carveout: (base pfn, page count).
    pub hyp_range: (u64, u64),
}

impl HypState {
    /// Returns `true` if `pfn` lies inside the hypervisor carveout
    /// (pool pages live here; they are never the host's to receive).
    pub fn in_hyp_range(&self, pfn: u64) -> bool {
        pfn >= self.hyp_range.0 && pfn < self.hyp_range.0 + self.hyp_range.1
    }

    /// Acquires the host stage 2 lock, recording the pre abstraction
    /// (the `host_lock_component` of §3.2).
    pub fn host_lock<'a>(&'a self, ctx: &HypCtx<'_>) -> MutexGuard<'a, KvmPgtable> {
        let g = self.host_pgt.lock();
        ctx.hooks.lock_acquired(
            &ctx.hook_ctx(),
            Component::Host,
            &ComponentView::Host { root: g.root },
        );
        g
    }

    /// Records the post abstraction and releases the host lock.
    pub fn host_unlock(&self, ctx: &HypCtx<'_>, g: MutexGuard<'_, KvmPgtable>) {
        ctx.hooks.lock_releasing(
            &ctx.hook_ctx(),
            Component::Host,
            &ComponentView::Host { root: g.root },
        );
        drop(g);
    }

    /// Acquires the hypervisor stage 1 lock, recording the pre abstraction.
    pub fn hyp_lock<'a>(&'a self, ctx: &HypCtx<'_>) -> MutexGuard<'a, KvmPgtable> {
        let g = self.hyp_pgt.lock();
        ctx.hooks.lock_acquired(
            &ctx.hook_ctx(),
            Component::Hyp,
            &ComponentView::Hyp { root: g.root },
        );
        g
    }

    /// Records the post abstraction and releases the hyp lock.
    pub fn hyp_unlock(&self, ctx: &HypCtx<'_>, g: MutexGuard<'_, KvmPgtable>) {
        ctx.hooks.lock_releasing(
            &ctx.hook_ctx(),
            Component::Hyp,
            &ComponentView::Hyp { root: g.root },
        );
        drop(g);
    }

    /// Acquires the VM-table lock, recording the pre abstraction.
    pub fn vm_table_lock<'a>(&'a self, ctx: &HypCtx<'_>) -> MutexGuard<'a, VmTable> {
        let g = self.vm_table.lock();
        ctx.hooks.lock_acquired(
            &ctx.hook_ctx(),
            Component::VmTable,
            &ComponentView::VmTable {
                vms: g.live(),
                uniqs: g.live_uniqs(),
            },
        );
        g
    }

    /// Records the post abstraction and releases the VM-table lock.
    pub fn vm_table_unlock(&self, ctx: &HypCtx<'_>, g: MutexGuard<'_, VmTable>) {
        ctx.hooks.lock_releasing(
            &ctx.hook_ctx(),
            Component::VmTable,
            &ComponentView::VmTable {
                vms: g.live(),
                uniqs: g.live_uniqs(),
            },
        );
        drop(g);
    }

    /// Acquires one VM's lock, recording the pre abstraction of its
    /// stage 2 and vCPU metadata.
    pub fn vm_lock<'a>(&self, ctx: &HypCtx<'_>, vm: &'a Arc<Vm>) -> MutexGuard<'a, VmInner> {
        let g = vm.inner.lock();
        ctx.hooks.lock_acquired(
            &ctx.hook_ctx(),
            Component::Vm(vm.handle),
            &vm_view(ctx.mem, vm, &g),
        );
        g
    }

    /// Records the post abstraction and releases the VM lock.
    pub fn vm_unlock(&self, ctx: &HypCtx<'_>, vm: &Arc<Vm>, g: MutexGuard<'_, VmInner>) {
        ctx.hooks.lock_releasing(
            &ctx.hook_ctx(),
            Component::Vm(vm.handle),
            &vm_view(ctx.mem, vm, &g),
        );
        drop(g);
    }
}

/// Builds the abstraction-recording view of a locked VM.
pub fn vm_view(mem: &PhysMem, vm: &Vm, inner: &VmInner) -> ComponentView {
    ComponentView::Vm(VmView {
        handle: vm.handle,
        uniq: vm.uniq,
        slot: vm.slot,
        s2_root: inner.pgt.root,
        protected: vm.protected,
        donated: inner.donated.clone(),
        firmware: inner.firmware.clone(),
        vcpus: inner.vcpus.iter().map(|s| vcpu_view(mem, s)).collect(),
    })
}

/// Builds the abstraction-recording view of one vCPU slot.
pub fn vcpu_view(mem: &PhysMem, slot: &VcpuSlot) -> VcpuView {
    match slot {
        VcpuSlot::Uninit => VcpuView {
            initialized: false,
            loaded_on: None,
            regs: Default::default(),
            memcache_pages: Vec::new(),
        },
        VcpuSlot::Present(v) => VcpuView {
            initialized: true,
            loaded_on: None,
            regs: v.regs,
            memcache_pages: v.memcache.peek_pages(mem),
        },
        VcpuSlot::LoadedOn(cpu) => VcpuView {
            initialized: true,
            loaded_on: Some(*cpu),
            regs: Default::default(),
            memcache_pages: Vec::new(),
        },
    }
}

/// A view of a loaded vCPU for the load/put ownership-transfer hooks.
pub fn loaded_vcpu_view(mem: &PhysMem, vcpu: &crate::vm::Vcpu, cpu: usize) -> VcpuView {
    VcpuView {
        initialized: true,
        loaded_on: Some(cpu),
        regs: vcpu.regs,
        memcache_pages: vcpu.memcache.peek_pages(mem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;
    use pkvm_aarch64::addr::PhysAddr;
    use pkvm_aarch64::attrs::Stage;
    use pkvm_aarch64::memory::MemRegion;

    fn state(mem: &PhysMem) -> HypState {
        let _ = mem;
        HypState {
            pool: Mutex::new(HypPool::new(PhysAddr::new(0x4400_0000), 64)),
            hyp_pgt: Mutex::new(KvmPgtable {
                root: PhysAddr::new(0x4400_0000),
                stage: Stage::Stage1,
            }),
            host_pgt: Mutex::new(KvmPgtable {
                root: PhysAddr::new(0x4400_1000),
                stage: Stage::Stage2,
            }),
            vm_table: Mutex::new(VmTable::new()),
            reclaim: Mutex::new(HashMap::new()),
            layout: crate::mm::compute_layout(PhysAddr::new(0x8000_0000), false).unwrap(),
            hyp_range: (0x44000, 64),
        }
    }

    #[test]
    fn lock_helpers_roundtrip_with_no_hooks() {
        let mem = PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x800_0000)]);
        let st = state(&mem);
        let faults = FaultSet::none();
        let tlb = TlbSet::new(1);
        let ctx = HypCtx {
            mem: &mem,
            tlb: &tlb,
            cpu: 0,
            hooks: &NoHooks,
            faults: &faults,
        };
        let g = st.host_lock(&ctx);
        assert_eq!(g.root, PhysAddr::new(0x4400_1000));
        st.host_unlock(&ctx, g);
        let g = st.hyp_lock(&ctx);
        st.hyp_unlock(&ctx, g);
        let g = st.vm_table_lock(&ctx);
        assert!(g.is_empty());
        st.vm_table_unlock(&ctx, g);
    }

    #[test]
    fn vcpu_views_reflect_slot_state() {
        let mem = PhysMem::new(vec![MemRegion::ram(0x4000_0000, 0x800_0000)]);
        let uninit = vcpu_view(&mem, &VcpuSlot::Uninit);
        assert!(!uninit.initialized);
        let present = vcpu_view(
            &mem,
            &VcpuSlot::Present(Box::new(crate::vm::Vcpu::initialised())),
        );
        assert!(present.initialized);
        assert_eq!(present.loaded_on, None);
        let loaded = vcpu_view(&mem, &VcpuSlot::LoadedOn(2));
        assert_eq!(loaded.loaded_on, Some(2));
    }
}
