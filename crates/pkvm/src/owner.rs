//! Logical page ownership and sharing state.
//!
//! pKVM tracks, for every physical page, a *logical owner* (the host, pKVM
//! itself, or a guest VM) and a sharing state. Both are encoded in
//! otherwise-unused page-table-entry bits:
//!
//! - the sharing state of a *mapped* page lives in the descriptor software
//!   bits \[56:55\] ([`PageState`]);
//! - the owner of an *unmapped* page (one the host no longer owns) is
//!   recorded as an annotation in the invalid descriptor of the host's
//!   stage 2 table ([`OwnerId`]).
//!
//! The ghost specification's central invariant — a partition of physical
//! memory into single-owner regions, some shared — is an abstraction of
//! exactly these bits.

use pkvm_aarch64::desc::Pte;

/// The sharing state of a mapped page, stored in PTE software bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PageState {
    /// Exclusively owned by the entity whose table maps it.
    Owned = 0,
    /// Owned by this entity but currently shared with another.
    SharedOwned = 1,
    /// Mapped here but owned by (borrowed from) another entity.
    SharedBorrowed = 2,
}

impl PageState {
    /// Decodes the software bits of a mapped descriptor.
    ///
    /// The value 3 is unused by pKVM; we decode it as `None` so malformed
    /// states are distinguishable (and flaggable by the oracle).
    pub const fn from_sw(sw: u8) -> Option<PageState> {
        match sw & 0b11 {
            0 => Some(PageState::Owned),
            1 => Some(PageState::SharedOwned),
            2 => Some(PageState::SharedBorrowed),
            _ => None,
        }
    }

    /// Encodes into descriptor software bits.
    pub const fn to_sw(self) -> u8 {
        self as u8
    }
}

/// A logical owner identifier, as stored in invalid-descriptor annotations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OwnerId(pub u8);

impl OwnerId {
    /// The host Android kernel.
    pub const HOST: OwnerId = OwnerId(0);
    /// The pKVM hypervisor.
    pub const HYP: OwnerId = OwnerId(1);

    /// The owner id of the guest in VM-table slot `slot`.
    pub const fn guest(slot: usize) -> OwnerId {
        OwnerId(2 + slot as u8)
    }

    /// If this id denotes a guest, its VM-table slot.
    pub const fn guest_slot(self) -> Option<usize> {
        if self.0 >= 2 {
            Some((self.0 - 2) as usize)
        } else {
            None
        }
    }
}

impl core::fmt::Display for OwnerId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            OwnerId::HOST => write!(f, "host"),
            OwnerId::HYP => write!(f, "hyp"),
            g => write!(f, "guest{}", g.0 - 2),
        }
    }
}

/// Reads the page state of a *valid* leaf descriptor.
pub fn pte_page_state(pte: Pte) -> Option<PageState> {
    PageState::from_sw(pte.sw())
}

/// Builds the invalid descriptor annotating `owner` as the owner of an
/// unmapped range (identity annotation for the host is just a zero PTE).
pub fn annotation_pte(owner: OwnerId) -> Pte {
    if owner == OwnerId::HOST {
        Pte::invalid()
    } else {
        Pte::invalid_with_owner(owner.0)
    }
}

/// Reads the owner annotation of an invalid descriptor in the host table.
pub fn annotation_owner(pte: Pte) -> OwnerId {
    debug_assert!(!pte.is_valid());
    OwnerId(pte.invalid_owner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_state_roundtrip() {
        for s in [
            PageState::Owned,
            PageState::SharedOwned,
            PageState::SharedBorrowed,
        ] {
            assert_eq!(PageState::from_sw(s.to_sw()), Some(s));
        }
        assert_eq!(PageState::from_sw(3), None);
    }

    #[test]
    fn owner_ids() {
        assert_eq!(OwnerId::guest(0), OwnerId(2));
        assert_eq!(OwnerId::guest(5).guest_slot(), Some(5));
        assert_eq!(OwnerId::HOST.guest_slot(), None);
        assert_eq!(OwnerId::HYP.guest_slot(), None);
        assert_eq!(OwnerId::guest(1).to_string(), "guest1");
        assert_eq!(OwnerId::HYP.to_string(), "hyp");
    }

    #[test]
    fn annotation_roundtrip() {
        for owner in [OwnerId::HOST, OwnerId::HYP, OwnerId::guest(3)] {
            let pte = annotation_pte(owner);
            assert!(!pte.is_valid());
            assert_eq!(annotation_owner(pte), owner);
        }
    }
}
