//! Fault injection: re-introducible bugs.
//!
//! The paper validates the discriminating power of the oracle in two ways:
//! it found five real bugs in pKVM, and it detects deliberately-introduced
//! synthetic bugs (§5). This module makes both reproducible: each switch
//! re-introduces one bug into the hypervisor. Real bugs (`BUG1_..` through
//! `BUG5_..`) mirror the five found in §6; the `SYN_..` switches are the
//! synthetic-bug catalog.
//!
//! All switches default to off; the clean hypervisor must pass the oracle
//! with zero violations.

use std::sync::atomic::{AtomicU32, Ordering};

macro_rules! faults {
    ($($(#[$doc:meta])* $name:ident = $bit:expr;)*) => {
        /// A single injectable fault.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(u32)]
        pub enum Fault {
            $($(#[$doc])* $name = 1 << $bit,)*
        }

        impl Fault {
            /// Every injectable fault, for catalog sweeps.
            pub const ALL: &'static [Fault] = &[$(Fault::$name,)*];

            /// Short stable name for reports.
            pub const fn name(self) -> &'static str {
                match self {
                    $(Fault::$name => stringify!($name),)*
                }
            }
        }
    };
}

faults! {
    /// Real bug 1: skip the page-alignment check on memcache top-up
    /// donations, letting a malicious host cause pKVM to zero memory
    /// spanning a page it does not own.
    Bug1MemcacheAlignment = 0;
    /// Real bug 2: skip the size check on memcache top-up, hitting a
    /// (simulated signed) counter overflow for huge requests.
    Bug2MemcacheSize = 1;
    /// Real bug 3: drop the synchronisation between vCPU init and vCPU
    /// load, so a racing load can observe partially-initialised state.
    Bug3VcpuLoadRace = 2;
    /// Real bug 4: on a host page fault whose faulting IPA must be
    /// recovered by walking host-controlled memory, panic instead of
    /// returning to the host when the concurrent host has changed it.
    Bug4HostFaultRace = 3;
    /// Real bug 5: skip the overlap check between the hypervisor linear
    /// map and the private IO range during initialisation, so very large
    /// DRAM makes the linear map cover device memory.
    Bug5LinearMapOverlap = 4;
    /// Synthetic: host_share_hyp marks the host side Owned instead of
    /// SharedOwned.
    SynShareWrongState = 8;
    /// Synthetic: host_share_hyp maps the page executable in pKVM's
    /// stage 1 (the real mapping must be RW, non-executable).
    SynShareHypExec = 9;
    /// Synthetic: host_unshare_hyp forgets to remove the pKVM stage 1
    /// mapping (use-after-unshare window).
    SynUnshareKeepsHypMapping = 10;
    /// Synthetic: host_share_hyp skips the exclusive-ownership check,
    /// allowing double-shares.
    SynShareSkipsCheck = 11;
    /// Synthetic: host_reclaim_page returns the page without wiping it,
    /// leaking guest data to the host.
    SynReclaimSkipsWipe = 12;
    /// Synthetic: the host stage 2 fault handler maps one page too many
    /// (an off-by-one in the range computation).
    SynHostMapOffByOne = 13;
    /// Synthetic: guest donation annotates the wrong owner id in the host
    /// table.
    SynDonateWrongOwner = 14;
    /// Synthetic: vcpu_put leaves the vCPU marked as loaded.
    SynVcpuPutLeak = 15;
    /// Synthetic: teardown_vm skips unmapping the guest stage 2 before
    /// returning pages to the host.
    SynTeardownSkipsUnmap = 16;
    /// Synthetic: the stage 2 map walker computes block output addresses
    /// off by one block, silently mapping the wrong physical range.
    SynBlockAlignment = 17;
    /// Synthetic: skip every TLB invalidation after unmaps and permission
    /// downgrades, leaving stale translations live (the bug class of the
    /// paper's companion work on TLB synchronisation; outside the ghost
    /// oracle's scope and caught behaviourally by the harness).
    SynMissingTlbi = 18;
    /// Synthetic: teardown_vm treats donated firmware pages like ordinary
    /// guest pages and queues them for host reclaim, so a later
    /// host_reclaim_page hands the host back a page it must never touch
    /// again (violates the firmware-protection lifetime invariant).
    SynFirmwareReclaim = 19;
}

/// A set of injected faults, shared across all CPUs of a machine.
#[derive(Debug, Default)]
pub struct FaultSet {
    bits: AtomicU32,
}

impl FaultSet {
    /// An empty (clean hypervisor) fault set.
    pub const fn none() -> Self {
        Self {
            bits: AtomicU32::new(0),
        }
    }

    /// Enables `fault`.
    pub fn inject(&self, fault: Fault) {
        self.bits.fetch_or(fault as u32, Ordering::SeqCst);
    }

    /// Disables `fault`.
    pub fn clear(&self, fault: Fault) {
        self.bits.fetch_and(!(fault as u32), Ordering::SeqCst);
    }

    /// Returns `true` if `fault` is currently injected.
    #[inline]
    pub fn is(&self, fault: Fault) -> bool {
        self.bits.load(Ordering::Relaxed) & fault as u32 != 0
    }

    /// Returns `true` if no faults are injected.
    pub fn is_clean(&self) -> bool {
        self.bits.load(Ordering::Relaxed) == 0
    }

    /// Snapshot of the raw switch bits (for recording a campaign trace).
    pub fn bits(&self) -> u32 {
        self.bits.load(Ordering::SeqCst)
    }

    /// Rebuilds a set from recorded bits (for deterministic replay).
    pub fn from_bits(bits: u32) -> Self {
        Self {
            bits: AtomicU32::new(bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_and_clear() {
        let f = FaultSet::none();
        assert!(f.is_clean());
        f.inject(Fault::Bug1MemcacheAlignment);
        f.inject(Fault::SynShareWrongState);
        assert!(f.is(Fault::Bug1MemcacheAlignment));
        assert!(f.is(Fault::SynShareWrongState));
        assert!(!f.is(Fault::Bug2MemcacheSize));
        f.clear(Fault::Bug1MemcacheAlignment);
        assert!(!f.is(Fault::Bug1MemcacheAlignment));
        assert!(f.is(Fault::SynShareWrongState));
    }

    #[test]
    fn bits_roundtrip_through_a_snapshot() {
        let f = FaultSet::none();
        f.inject(Fault::Bug3VcpuLoadRace);
        f.inject(Fault::SynReclaimSkipsWipe);
        let g = FaultSet::from_bits(f.bits());
        assert!(g.is(Fault::Bug3VcpuLoadRace));
        assert!(g.is(Fault::SynReclaimSkipsWipe));
        assert!(!g.is(Fault::Bug1MemcacheAlignment));
    }

    #[test]
    fn catalog_has_distinct_bits() {
        let mut seen = std::collections::HashSet::new();
        for &f in Fault::ALL {
            assert!(seen.insert(f as u32), "duplicate bit for {}", f.name());
        }
        assert!(Fault::ALL.len() >= 15);
    }
}
