//! Memory protection: the ownership state machine.
//!
//! This is the analog of pKVM's `mem_protect.c`: the share/unshare/donate
//! transitions between the host, the hypervisor and guests, the lazy
//! mapping-on-demand of host memory, and page reclaim after VM teardown.
//! Every transition follows the same two-phase shape as the C code
//! (§4.1): *check* the page states of all parties under the relevant
//! component locks, then *update* the page tables of each party.

use pkvm_aarch64::addr::{is_page_aligned, level_size, page_align_down, PhysAddr, PAGE_SIZE};
use pkvm_aarch64::attrs::{Attrs, Perms};
use pkvm_aarch64::desc::{EntryKind, Pte};
use pkvm_aarch64::memory::{PhysMem, RegionKind};
use pkvm_aarch64::tlb::{VMID_HOST, VMID_HYP};

use crate::cov;
use crate::error::{Errno, HypResult};
use crate::faults::Fault;
use crate::hooks::{Component, TransferEdge};
use crate::memcache::{wipe_donated, Memcache, MEMCACHE_MAX_TOPUP};
use crate::owner::{annotation_owner, annotation_pte, OwnerId, PageState};
use crate::pgtable::{
    get_leaf, kvm_pgtable_walk, KvmPgtable, MapWalker, McOps, PoolOps, SetOwnerWalker, TableEvent,
    WalkState,
};
use crate::state::{HypCtx, HypState};
use crate::vm::Vm;

/// Attributes of a host stage 2 mapping: full access, with the page state
/// in the software bits; device memory is never executable.
pub fn host_attrs(is_memory: bool, state: PageState) -> Attrs {
    if is_memory {
        Attrs::normal(Perms::RWX).with_sw(state.to_sw())
    } else {
        Attrs::device(Perms::RW).with_sw(state.to_sw())
    }
}

/// Attributes of a pKVM stage 1 mapping: read-write, never executable
/// (pKVM's data mappings; see the Fig. 5 diff: `SB RW- M`).
pub fn hyp_attrs(is_memory: bool, state: PageState) -> Attrs {
    if is_memory {
        Attrs::normal(Perms::RW).with_sw(state.to_sw())
    } else {
        Attrs::device(Perms::RW).with_sw(state.to_sw())
    }
}

/// Attributes of a guest stage 2 mapping.
pub fn guest_attrs(state: PageState) -> Attrs {
    Attrs::normal(Perms::RWX).with_sw(state.to_sw())
}

/// The concrete protection state of one page as seen by a stage 2 table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConcreteState {
    /// Invalid descriptor with no annotation: default-owned (for the host
    /// table this means "host-owned, not yet mapped on demand").
    UnmappedDefault,
    /// Invalid descriptor annotating another owner.
    UnmappedOwner(OwnerId),
    /// Valid mapping with a legal page state.
    Mapped(PageState, Attrs),
    /// Valid mapping whose software bits decode to no legal state.
    MappedBad,
}

/// Reads the concrete state of the page at input address `ia` in `pgt`.
pub fn page_state_of(mem: &PhysMem, pgt: &KvmPgtable, ia: u64) -> ConcreteState {
    let (pte, level) = get_leaf(mem, pgt, ia);
    match pte.kind(level) {
        EntryKind::Invalid => {
            let owner = annotation_owner(pte);
            if owner == OwnerId::HOST {
                ConcreteState::UnmappedDefault
            } else {
                ConcreteState::UnmappedOwner(owner)
            }
        }
        EntryKind::Block | EntryKind::Page => {
            let attrs = pte.leaf_attrs(pgt.stage);
            match PageState::from_sw(attrs.sw) {
                Some(s) => ConcreteState::Mapped(s, attrs),
                None => ConcreteState::MappedBad,
            }
        }
        _ => ConcreteState::MappedBad,
    }
}

/// Returns `true` if, in the host table, the page at `ipa` is exclusively
/// owned by the host (the `__check_page_state_visitor` condition for
/// initiating a share or donation).
pub fn host_owns_exclusively(mem: &PhysMem, host: &KvmPgtable, ipa: u64) -> bool {
    matches!(
        page_state_of(mem, host, ipa),
        ConcreteState::UnmappedDefault | ConcreteState::Mapped(PageState::Owned, _)
    )
}

/// The break half of break-before-make: a live mapping was just removed
/// or tightened, so the matching broadcast TLB invalidation (plus DSB)
/// must follow. The table write itself always happened, so the downgrade
/// hook always fires; the invalidation and its tlbi/dsb hooks are
/// suppressed together under the missing-TLBI bug — which the oracle's
/// break-before-make check then catches as a dangling downgrade, and the
/// harness catches behaviourally through the stale entries left live.
pub(crate) fn tlbi_range(ctx: &HypCtx<'_>, vmid: u16, ia: u64, nr: u64) {
    ctx.hooks.pte_downgrade(&ctx.hook_ctx(), vmid, ia, nr);
    if ctx.faults.is(Fault::SynMissingTlbi) {
        cov::hit("tlbi/suppressed");
    } else {
        cov::hit("tlbi/range");
        ctx.tlb.invalidate_range(ctx.cpu, vmid, ia, nr, true);
        ctx.hooks.tlbi(&ctx.hook_ctx(), vmid, ia, nr, true);
        ctx.hooks.dsb(&ctx.hook_ctx());
    }
}

fn fire_table_events(ctx: &HypCtx<'_>, comp: Component, events: &[TableEvent]) {
    for e in events {
        match *e {
            TableEvent::Alloc(p) => ctx.hooks.table_page_alloc(&ctx.hook_ctx(), comp, p),
            TableEvent::Free(p) => ctx.hooks.table_page_free(&ctx.hook_ctx(), comp, p),
        }
    }
}

/// Maps `nr` pages at `ia -> pa` in a stage 2/1 table with pool-backed
/// table allocation, reporting table events against `comp`.
// The parameter list mirrors the C `kvm_pgtable_stage2_map` call shape.
#[expect(clippy::too_many_arguments)]
fn map_pages_pool(
    ctx: &HypCtx<'_>,
    st: &HypState,
    comp: Component,
    pgt: &KvmPgtable,
    ia: u64,
    pa: PhysAddr,
    nr: u64,
    attrs: Attrs,
    force_pages: bool,
) -> HypResult {
    let mut pool = st.pool.lock();
    let mut mm = PoolOps(&mut pool);
    let mut ws = WalkState::new(ctx.mem, &mut mm);
    let mut w = MapWalker {
        stage: pgt.stage,
        phys_base: pa,
        ia_base: ia,
        attrs,
        force_pages,
        corrupt_block_oa: ctx.faults.is(Fault::SynBlockAlignment),
    };
    let r = kvm_pgtable_walk(pgt, &mut ws, ia, nr * PAGE_SIZE, &mut w);
    fire_table_events(ctx, comp, &ws.events);
    r
}

/// Writes the invalid annotation `annotation` over `nr` pages at `ia`.
fn set_owner_pool(
    ctx: &HypCtx<'_>,
    st: &HypState,
    comp: Component,
    pgt: &KvmPgtable,
    ia: u64,
    nr: u64,
    annotation: Pte,
) -> HypResult {
    let mut pool = st.pool.lock();
    let mut mm = PoolOps(&mut pool);
    let mut ws = WalkState::new(ctx.mem, &mut mm);
    let mut w = SetOwnerWalker {
        stage: pgt.stage,
        annotation,
    };
    let r = kvm_pgtable_walk(pgt, &mut ws, ia, nr * PAGE_SIZE, &mut w);
    fire_table_events(ctx, comp, &ws.events);
    r
}

/// `__pkvm_host_share_hyp`: make the host page at `pfn` accessible to the
/// hypervisor, marking it shared on both sides (§4.1-4.2).
///
/// # Errors
///
/// `EPERM` if the page is not memory or not exclusively host-owned;
/// `ENOMEM` if table allocation fails.
pub fn host_share_hyp(ctx: &HypCtx<'_>, st: &HypState, pfn: u64) -> HypResult {
    let phys = PhysAddr::from_pfn(pfn);
    let hyp_va = st.layout.hyp_va(phys);

    let host = st.host_lock(ctx);
    let hyp = st.hyp_lock(ctx);

    let result = (|| {
        // check_share: the page must be RAM and exclusively host-owned.
        if !ctx.faults.is(Fault::SynShareSkipsCheck)
            && (!ctx.mem.is_ram(phys) || !host_owns_exclusively(ctx.mem, &host, phys.bits()))
        {
            cov::hit("do_share/check_failed");
            return Err(Errno::EPERM);
        }
        cov::hit("do_share/ok");
        // host_initiate_share: mark the host side shared-owned.
        let host_state = if ctx.faults.is(Fault::SynShareWrongState) {
            PageState::Owned
        } else {
            PageState::SharedOwned
        };
        let is_mem = ctx.mem.is_ram(phys);
        map_pages_pool(
            ctx,
            st,
            Component::Host,
            &host,
            phys.bits(),
            phys,
            1,
            host_attrs(is_mem, host_state),
            true,
        )?;
        // Break-before-make: the replaced host entry may be cached.
        tlbi_range(ctx, VMID_HOST, phys.bits(), 1);
        // hyp_complete_share: map borrowed into pKVM's stage 1.
        let hyp_perm_attrs = if ctx.faults.is(Fault::SynShareHypExec) {
            Attrs::normal(Perms::RWX).with_sw(PageState::SharedBorrowed.to_sw())
        } else {
            hyp_attrs(is_mem, PageState::SharedBorrowed)
        };
        map_pages_pool(
            ctx,
            st,
            Component::Hyp,
            &hyp,
            hyp_va.bits(),
            phys,
            1,
            hyp_perm_attrs,
            true,
        )?;
        ctx.hooks
            .transfer(&ctx.hook_ctx(), TransferEdge::ShareHyp, pfn, 1, false);
        Ok(())
    })();

    st.hyp_unlock(ctx, hyp);
    st.host_unlock(ctx, host);
    match &result {
        Ok(()) => cov::hit("host_share_hyp/ok"),
        Err(_) => cov::hit("host_share_hyp/check_failed"),
    }
    result
}

/// `__pkvm_host_unshare_hyp`: revoke a previous share.
///
/// # Errors
///
/// `EPERM` if the page is not currently shared-owned by the host and
/// borrowed by the hypervisor.
pub fn host_unshare_hyp(ctx: &HypCtx<'_>, st: &HypState, pfn: u64) -> HypResult {
    let phys = PhysAddr::from_pfn(pfn);
    let hyp_va = st.layout.hyp_va(phys);

    let host = st.host_lock(ctx);
    let hyp = st.hyp_lock(ctx);

    let result = (|| {
        let host_ok = matches!(
            page_state_of(ctx.mem, &host, phys.bits()),
            ConcreteState::Mapped(PageState::SharedOwned, _)
        );
        let hyp_ok = matches!(
            page_state_of(ctx.mem, &hyp, hyp_va.bits()),
            ConcreteState::Mapped(PageState::SharedBorrowed, _)
        );
        if !host_ok || !hyp_ok {
            cov::hit("do_unshare/check_failed");
            return Err(Errno::EPERM);
        }
        cov::hit("do_unshare/ok");
        let is_mem = ctx.mem.is_ram(phys);
        map_pages_pool(
            ctx,
            st,
            Component::Host,
            &host,
            phys.bits(),
            phys,
            1,
            host_attrs(is_mem, PageState::Owned),
            true,
        )?;
        tlbi_range(ctx, VMID_HOST, phys.bits(), 1);
        if !ctx.faults.is(Fault::SynUnshareKeepsHypMapping) {
            set_owner_pool(
                ctx,
                st,
                Component::Hyp,
                &hyp,
                hyp_va.bits(),
                1,
                Pte::invalid(),
            )?;
            tlbi_range(ctx, VMID_HYP, hyp_va.bits(), 1);
        }
        ctx.hooks
            .transfer(&ctx.hook_ctx(), TransferEdge::UnshareHyp, pfn, 1, false);
        Ok(())
    })();

    st.hyp_unlock(ctx, hyp);
    st.host_unlock(ctx, host);
    match &result {
        Ok(()) => cov::hit("host_unshare_hyp/ok"),
        Err(_) => cov::hit("host_unshare_hyp/check_failed"),
    }
    result
}

/// `__pkvm_host_donate_hyp` (internal): transfer `nr` host pages at `pfn`
/// to the hypervisor. Caller must hold no component locks.
///
/// # Errors
///
/// `EPERM` if any page is not exclusively host-owned RAM.
pub fn host_donate_hyp(ctx: &HypCtx<'_>, st: &HypState, pfn: u64, nr: u64) -> HypResult {
    let phys = PhysAddr::from_pfn(pfn);
    let host = st.host_lock(ctx);
    let hyp = st.hyp_lock(ctx);
    let result = do_host_donate_hyp_locked(ctx, st, &host, &hyp, phys, nr);
    st.hyp_unlock(ctx, hyp);
    st.host_unlock(ctx, host);
    result
}

/// The locked body of [`host_donate_hyp`], for callers composing larger
/// critical sections (memcache top-up, `init_vm`).
pub fn do_host_donate_hyp_locked(
    ctx: &HypCtx<'_>,
    st: &HypState,
    host: &KvmPgtable,
    hyp: &KvmPgtable,
    phys: PhysAddr,
    nr: u64,
) -> HypResult {
    for i in 0..nr {
        let pa = phys.wrapping_add(i * PAGE_SIZE);
        if !ctx.mem.is_ram(pa) || !host_owns_exclusively(ctx.mem, host, pa.bits()) {
            cov::hit("do_donate/check_failed");
            return Err(Errno::EPERM);
        }
    }
    cov::hit("do_donate/ok");
    set_owner_pool(
        ctx,
        st,
        Component::Host,
        host,
        phys.bits(),
        nr,
        annotation_pte(OwnerId::HYP),
    )?;
    tlbi_range(ctx, VMID_HOST, phys.bits(), nr);
    map_pages_pool(
        ctx,
        st,
        Component::Hyp,
        hyp,
        st.layout.hyp_va(phys).bits(),
        phys,
        nr,
        hyp_attrs(true, PageState::Owned),
        true,
    )?;
    ctx.hooks.transfer(
        &ctx.hook_ctx(),
        TransferEdge::DonateHyp,
        phys.pfn(),
        nr,
        false,
    );
    Ok(())
}

/// `__pkvm_hyp_donate_host` (internal): return hypervisor pages to the host.
///
/// # Errors
///
/// `EPERM` if any page is not currently hyp-owned.
pub fn hyp_donate_host(ctx: &HypCtx<'_>, st: &HypState, pfn: u64, nr: u64) -> HypResult {
    let host = st.host_lock(ctx);
    let hyp = st.hyp_lock(ctx);
    let result = do_hyp_donate_host_locked(ctx, st, &host, &hyp, PhysAddr::from_pfn(pfn), nr);
    st.hyp_unlock(ctx, hyp);
    st.host_unlock(ctx, host);
    result
}

/// The locked body of [`hyp_donate_host`], for callers returning many
/// pages inside a *single* critical section (teardown must look like one
/// atomic transition to the oracle, not per-page lock cycles).
pub fn do_hyp_donate_host_locked(
    ctx: &HypCtx<'_>,
    st: &HypState,
    host: &KvmPgtable,
    hyp: &KvmPgtable,
    phys: PhysAddr,
    nr: u64,
) -> HypResult {
    for i in 0..nr {
        let pa = phys.wrapping_add(i * PAGE_SIZE);
        let host_ok = matches!(
            page_state_of(ctx.mem, host, pa.bits()),
            ConcreteState::UnmappedOwner(OwnerId::HYP)
        );
        let hyp_ok = matches!(
            page_state_of(ctx.mem, hyp, st.layout.hyp_va(pa).bits()),
            ConcreteState::Mapped(PageState::Owned, _)
        );
        if !host_ok || !hyp_ok {
            cov::hit("do_donate/check_failed");
            return Err(Errno::EPERM);
        }
    }
    cov::hit("do_donate/ok");
    set_owner_pool(
        ctx,
        st,
        Component::Hyp,
        hyp,
        st.layout.hyp_va(phys).bits(),
        nr,
        Pte::invalid(),
    )?;
    tlbi_range(ctx, VMID_HYP, st.layout.hyp_va(phys).bits(), nr);
    set_owner_pool(
        ctx,
        st,
        Component::Host,
        host,
        phys.bits(),
        nr,
        Pte::invalid(),
    )?;
    ctx.hooks.transfer(
        &ctx.hook_ctx(),
        TransferEdge::DonateHost,
        phys.pfn(),
        nr,
        false,
    );
    ctx.hooks.host_regain(&ctx.hook_ctx(), phys.pfn(), nr);
    Ok(())
}

/// `__pkvm_host_map_guest` for unprotected VMs: share the host page `pfn`
/// into the (locked) guest at `gfn`.
///
/// # Errors
///
/// `EPERM` on state-check failure, `ENOMEM` when the vCPU memcache cannot
/// supply guest table pages.
pub fn host_share_guest(
    ctx: &HypCtx<'_>,
    st: &HypState,
    vm: &Vm,
    guest_pgt: &KvmPgtable,
    mc: &mut Memcache,
    pfn: u64,
    gfn: u64,
) -> HypResult {
    let phys = PhysAddr::from_pfn(pfn);
    let gipa = gfn * PAGE_SIZE;
    let host = st.host_lock(ctx);
    let result = (|| {
        if !ctx.mem.is_ram(phys) || !host_owns_exclusively(ctx.mem, &host, phys.bits()) {
            cov::hit("do_share/check_failed");
            return Err(Errno::EPERM);
        }
        if page_state_of(ctx.mem, guest_pgt, gipa) != ConcreteState::UnmappedDefault {
            cov::hit("do_share/check_failed");
            return Err(Errno::EPERM);
        }
        cov::hit("do_share/ok");
        map_pages_pool(
            ctx,
            st,
            Component::Host,
            &host,
            phys.bits(),
            phys,
            1,
            host_attrs(true, PageState::SharedOwned),
            true,
        )?;
        tlbi_range(ctx, VMID_HOST, phys.bits(), 1);
        map_guest_page(
            ctx,
            vm,
            guest_pgt,
            mc,
            gipa,
            phys,
            guest_attrs(PageState::SharedBorrowed),
        )?;
        ctx.hooks
            .transfer(&ctx.hook_ctx(), TransferEdge::MapGuestShared, pfn, 1, false);
        Ok(())
    })();
    st.host_unlock(ctx, host);
    result
}

/// `__pkvm_host_map_guest` for protected VMs: donate the host page `pfn`
/// to the (locked) guest at `gfn`.
///
/// # Errors
///
/// As for [`host_share_guest`].
pub fn host_donate_guest(
    ctx: &HypCtx<'_>,
    st: &HypState,
    vm: &Vm,
    guest_pgt: &KvmPgtable,
    mc: &mut Memcache,
    pfn: u64,
    gfn: u64,
) -> HypResult {
    let phys = PhysAddr::from_pfn(pfn);
    let gipa = gfn * PAGE_SIZE;
    let host = st.host_lock(ctx);
    let result = (|| {
        if !ctx.mem.is_ram(phys) || !host_owns_exclusively(ctx.mem, &host, phys.bits()) {
            cov::hit("do_donate/check_failed");
            return Err(Errno::EPERM);
        }
        if page_state_of(ctx.mem, guest_pgt, gipa) != ConcreteState::UnmappedDefault {
            cov::hit("do_donate/check_failed");
            return Err(Errno::EPERM);
        }
        cov::hit("do_donate/ok");
        let owner = if ctx.faults.is(Fault::SynDonateWrongOwner) {
            OwnerId::HYP
        } else {
            vm.owner_id()
        };
        set_owner_pool(
            ctx,
            st,
            Component::Host,
            &host,
            phys.bits(),
            1,
            annotation_pte(owner),
        )?;
        tlbi_range(ctx, VMID_HOST, phys.bits(), 1);
        map_guest_page(
            ctx,
            vm,
            guest_pgt,
            mc,
            gipa,
            phys,
            guest_attrs(PageState::Owned),
        )?;
        ctx.hooks
            .transfer(&ctx.hook_ctx(), TransferEdge::MapGuestOwned, pfn, 1, false);
        Ok(())
    })();
    st.host_unlock(ctx, host);
    result
}

fn map_guest_page(
    ctx: &HypCtx<'_>,
    vm: &Vm,
    guest_pgt: &KvmPgtable,
    mc: &mut Memcache,
    gipa: u64,
    phys: PhysAddr,
    attrs: Attrs,
) -> HypResult {
    let mut mm = McOps(mc);
    let mut ws = WalkState::new(ctx.mem, &mut mm);
    let mut w = MapWalker {
        stage: guest_pgt.stage,
        phys_base: phys,
        ia_base: gipa,
        attrs,
        force_pages: true,
        corrupt_block_oa: false,
    };
    let r = kvm_pgtable_walk(guest_pgt, &mut ws, gipa, PAGE_SIZE, &mut w);
    fire_table_events(ctx, Component::Vm(vm.handle), &ws.events);
    r
}

/// Guest hypercall: share the guest's own page at `gipa` back with the
/// host (virtio buffers). Caller holds the VM lock and supplies the VM's
/// donated firmware pages, which must never become host-accessible.
///
/// # Errors
///
/// `EPERM` if the page is not exclusively guest-owned, is part of the
/// firmware region, or the host-side state is inconsistent.
pub fn guest_share_host(
    ctx: &HypCtx<'_>,
    st: &HypState,
    vm: &Vm,
    guest_pgt: &KvmPgtable,
    firmware: &[PhysAddr],
    mc: &mut Memcache,
    gipa: u64,
) -> HypResult {
    if gipa >= 1 << 48 {
        return Err(Errno::EPERM);
    }
    let host = st.host_lock(ctx);
    let result = (|| {
        let ConcreteState::Mapped(PageState::Owned, gattrs) =
            page_state_of(ctx.mem, guest_pgt, gipa)
        else {
            cov::hit("do_share/check_failed");
            return Err(Errno::EPERM);
        };
        // Find the physical page behind the guest mapping.
        let (pte, level) = get_leaf(ctx.mem, guest_pgt, gipa);
        let phys = pte
            .leaf_oa(level)
            .wrapping_add(gipa & (level_size(level) - 1));
        // Firmware is donated for the VM's lifetime: the guest cannot
        // hand the host a window back into it.
        if firmware.contains(&phys.page_base()) {
            cov::hit("do_share/firmware_denied");
            return Err(Errno::EPERM);
        }
        let host_ok = matches!(
            page_state_of(ctx.mem, &host, phys.bits()),
            ConcreteState::UnmappedOwner(o) if o == vm.owner_id()
        );
        if !host_ok {
            cov::hit("do_share/check_failed");
            return Err(Errno::EPERM);
        }
        cov::hit("do_share/ok");
        // Guest side: Owned -> SharedOwned (remap in place).
        let mut new_attrs = gattrs;
        new_attrs.sw = PageState::SharedOwned.to_sw();
        map_guest_page(
            ctx,
            vm,
            guest_pgt,
            mc,
            page_align_down(gipa),
            phys.page_base(),
            new_attrs,
        )?;
        tlbi_range(ctx, vm.vmid(), page_align_down(gipa), 1);
        // Host side: annotation -> borrowed mapping.
        map_pages_pool(
            ctx,
            st,
            Component::Host,
            &host,
            phys.page_base().bits(),
            phys.page_base(),
            1,
            host_attrs(true, PageState::SharedBorrowed),
            true,
        )?;
        ctx.hooks.transfer(
            &ctx.hook_ctx(),
            TransferEdge::GuestShareHost,
            phys.page_base().pfn(),
            1,
            false,
        );
        ctx.hooks
            .host_regain(&ctx.hook_ctx(), phys.page_base().pfn(), 1);
        Ok(())
    })();
    st.host_unlock(ctx, host);
    result
}

/// Guest hypercall: revoke a [`guest_share_host`]. Caller holds the VM lock.
///
/// # Errors
///
/// `EPERM` if the share does not exist.
pub fn guest_unshare_host(
    ctx: &HypCtx<'_>,
    st: &HypState,
    vm: &Vm,
    guest_pgt: &KvmPgtable,
    mc: &mut Memcache,
    gipa: u64,
) -> HypResult {
    if gipa >= 1 << 48 {
        return Err(Errno::EPERM);
    }
    let host = st.host_lock(ctx);
    let result = (|| {
        let ConcreteState::Mapped(PageState::SharedOwned, gattrs) =
            page_state_of(ctx.mem, guest_pgt, gipa)
        else {
            cov::hit("do_unshare/check_failed");
            return Err(Errno::EPERM);
        };
        let (pte, level) = get_leaf(ctx.mem, guest_pgt, gipa);
        let phys = pte
            .leaf_oa(level)
            .wrapping_add(gipa & (level_size(level) - 1));
        let host_ok = matches!(
            page_state_of(ctx.mem, &host, phys.bits()),
            ConcreteState::Mapped(PageState::SharedBorrowed, _)
        );
        if !host_ok {
            cov::hit("do_unshare/check_failed");
            return Err(Errno::EPERM);
        }
        cov::hit("do_unshare/ok");
        let mut new_attrs = gattrs;
        new_attrs.sw = PageState::Owned.to_sw();
        map_guest_page(
            ctx,
            vm,
            guest_pgt,
            mc,
            page_align_down(gipa),
            phys.page_base(),
            new_attrs,
        )?;
        tlbi_range(ctx, vm.vmid(), page_align_down(gipa), 1);
        tlbi_range(ctx, VMID_HOST, phys.page_base().bits(), 1);
        set_owner_pool(
            ctx,
            st,
            Component::Host,
            &host,
            phys.page_base().bits(),
            1,
            annotation_pte(vm.owner_id()),
        )?;
        ctx.hooks.transfer(
            &ctx.hook_ctx(),
            TransferEdge::GuestUnshareHost,
            phys.page_base().pfn(),
            1,
            false,
        );
        Ok(())
    })();
    st.host_unlock(ctx, host);
    result
}

/// `__pkvm_host_reclaim_page`: after a VM teardown, return one formerly
/// guest-owned page to the host, wiping its contents.
///
/// # Errors
///
/// `EPERM` if the page is not pending reclaim.
pub fn host_reclaim_page(ctx: &HypCtx<'_>, st: &HypState, pfn: u64) -> HypResult {
    let phys = PhysAddr::from_pfn(pfn);
    let host = st.host_lock(ctx);
    let result = (|| {
        let Some(former) = st.reclaim.lock().remove(&pfn) else {
            cov::hit("host_reclaim_page/not_guest_page");
            return Err(Errno::EPERM);
        };
        let _ = former;
        if !ctx.faults.is(Fault::SynReclaimSkipsWipe) {
            ctx.mem.zero_page(phys).expect("reclaimable pages are RAM");
        }
        // The wipe check's input: whatever content the host will actually
        // see. Scanned here, under the host lock, so the reported flag is
        // identical in both check modes.
        let dirty = page_is_dirty(ctx.mem, phys);
        cov::hit("host_reclaim_page/ok");
        tlbi_range(ctx, VMID_HOST, phys.bits(), 1);
        set_owner_pool(
            ctx,
            st,
            Component::Host,
            &host,
            phys.bits(),
            1,
            Pte::invalid(),
        )?;
        ctx.hooks
            .transfer(&ctx.hook_ctx(), TransferEdge::Reclaim, pfn, 1, dirty);
        ctx.hooks.host_regain(&ctx.hook_ctx(), pfn, 1);
        Ok(())
    })();
    st.host_unlock(ctx, host);
    result
}

/// Teardown retirement of one firmware page: re-annotate the (locked)
/// host entry from the dead guest's owner id to the hypervisor, so the
/// page stays inaccessible to the host across handle reuse — forever.
pub fn retire_firmware_locked(
    ctx: &HypCtx<'_>,
    st: &HypState,
    host: &KvmPgtable,
    pa: PhysAddr,
) -> HypResult {
    cov::hit("teardown_vm/firmware_retired");
    set_owner_pool(
        ctx,
        st,
        Component::Host,
        host,
        pa.bits(),
        1,
        annotation_pte(OwnerId::HYP),
    )
}

/// Returns `true` if the page at `pa` holds any non-zero word.
fn page_is_dirty(mem: &PhysMem, pa: PhysAddr) -> bool {
    (0..PAGE_SIZE / 8).any(|i| mem.read_u64(pa.wrapping_add(i * 8)).is_ok_and(|v| v != 0))
}

/// `__pkvm_vm_load_firmware`: donate `nr` host pages at `pfn` to the
/// (locked) protected VM as its pvmfw-style firmware region, mapped at
/// `gfn` before any vCPU exists. Guest table pages come from the
/// hypervisor pool — there is no vCPU memcache yet at firmware-load time.
///
/// The host must never regain access to these pages for the VM's
/// lifetime; at teardown they are wiped and retired to the hypervisor
/// rather than returned.
///
/// # Errors
///
/// `EPERM` if any page is not exclusively host-owned RAM or the guest
/// range is already mapped; `ENOMEM` if the pool cannot supply table
/// pages.
pub fn vm_load_firmware(
    ctx: &HypCtx<'_>,
    st: &HypState,
    vm: &Vm,
    guest_pgt: &KvmPgtable,
    pfn: u64,
    gfn: u64,
    nr: u64,
) -> HypResult {
    let phys = PhysAddr::from_pfn(pfn);
    let host = st.host_lock(ctx);
    let result = (|| {
        // Check phase: the whole range must be transferable before any
        // state changes (the transition must look atomic to the oracle).
        for i in 0..nr {
            let pa = phys.wrapping_add(i * PAGE_SIZE);
            if !ctx.mem.is_ram(pa) || !host_owns_exclusively(ctx.mem, &host, pa.bits()) {
                cov::hit("vm_load_firmware/check_failed");
                return Err(Errno::EPERM);
            }
            if page_state_of(ctx.mem, guest_pgt, (gfn + i) * PAGE_SIZE)
                != ConcreteState::UnmappedDefault
            {
                cov::hit("vm_load_firmware/check_failed");
                return Err(Errno::EPERM);
            }
        }
        cov::hit("vm_load_firmware/ok");
        set_owner_pool(
            ctx,
            st,
            Component::Host,
            &host,
            phys.bits(),
            nr,
            annotation_pte(vm.owner_id()),
        )?;
        tlbi_range(ctx, VMID_HOST, phys.bits(), nr);
        map_pages_pool(
            ctx,
            st,
            Component::Vm(vm.handle),
            guest_pgt,
            gfn * PAGE_SIZE,
            phys,
            nr,
            guest_attrs(PageState::Owned),
            true,
        )?;
        ctx.hooks
            .transfer(&ctx.hook_ctx(), TransferEdge::Firmware, pfn, nr, false);
        ctx.hooks
            .firmware_donated(&ctx.hook_ctx(), vm.handle, vm.uniq, pfn, nr);
        Ok(())
    })();
    st.host_unlock(ctx, host);
    result
}

/// Top-up of a vCPU memcache with `nr` pages donated by the host starting
/// at raw physical address `addr`. This is the path of real bugs 1 and 2.
///
/// # Errors
///
/// `EINVAL` for unaligned addresses (check missing under bug 1), `E2BIG`
/// for oversized requests (check broken under bug 2), `EPERM` if the host
/// does not own the donated range.
pub fn topup_memcache(
    ctx: &HypCtx<'_>,
    st: &HypState,
    mc: &mut Memcache,
    addr: u64,
    nr: u64,
) -> HypResult {
    // Bug 1: the alignment check on the donated address is missing.
    if !ctx.faults.is(Fault::Bug1MemcacheAlignment) && !is_page_aligned(addr) {
        cov::hit("topup_memcache/unaligned");
        return Err(Errno::EINVAL);
    }
    // Bug 2: the size check truncates through a narrow signed type, so a
    // huge count silently becomes a small (or zero) one.
    let nr = if ctx.faults.is(Fault::Bug2MemcacheSize) {
        (nr as i16).max(0) as u64
    } else if nr > MEMCACHE_MAX_TOPUP {
        cov::hit("topup_memcache/too_big");
        return Err(Errno::E2BIG);
    } else {
        nr
    };

    let host = st.host_lock(ctx);
    let hyp = st.hyp_lock(ctx);
    let result = (|| {
        // Check phase: every donated page must be the host's to give,
        // *before* any state changes (the transition must look atomic).
        for i in 0..nr {
            let page = page_align_down(addr) + i * PAGE_SIZE;
            if !ctx.mem.is_ram(PhysAddr::new(page)) || !host_owns_exclusively(ctx.mem, &host, page)
            {
                return Err(Errno::EPERM);
            }
        }
        for i in 0..nr {
            let page = page_align_down(addr) + i * PAGE_SIZE;
            do_host_donate_hyp_locked(ctx, st, &host, &hyp, PhysAddr::new(page), 1)?;
            // Zero the donated page. With bug 1 injected the *unaligned*
            // address is used, spilling zeroes into the following page.
            let wipe_at = if ctx.faults.is(Fault::Bug1MemcacheAlignment) {
                addr + i * PAGE_SIZE
            } else {
                page
            };
            wipe_donated(ctx.mem, PhysAddr::new(wipe_at));
            mc.push(ctx.mem, PhysAddr::new(page));
        }
        Ok(())
    })();
    st.hyp_unlock(ctx, hyp);
    st.host_unlock(ctx, host);
    match &result {
        Ok(()) => cov::hit("topup_memcache/ok"),
        Err(_) => cov::hit("topup_memcache/err"),
    }
    result
}

/// Outcome of a host stage 2 abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostAbortOutcome {
    /// The handler installed mappings; the host should retry the access.
    MappedOnDemand {
        /// First IPA mapped.
        ipa: u64,
        /// Number of pages mapped.
        nr_pages: u64,
    },
    /// Another CPU resolved the fault first; retry.
    Spurious,
    /// The access is not the host's to make: a fault is injected back
    /// into EL1.
    InjectToHost,
}

/// Handles a host stage 2 abort at `ipa`: pKVM's lazy mapping-on-demand
/// (§2). Host memory is identity-mapped at the largest granule the
/// containing invalid entry and memory-region bounds allow, which is why
/// the specification of this handler is deliberately loose (§3.1).
pub fn handle_host_mem_abort(ctx: &HypCtx<'_>, st: &HypState, ipa: u64) -> HostAbortOutcome {
    if ipa >= 1 << 48 {
        return HostAbortOutcome::InjectToHost;
    }
    let host = st.host_lock(ctx);
    let outcome = (|| {
        let (pte, level) = get_leaf(ctx.mem, &host, ipa);
        match pte.kind(level) {
            EntryKind::Block | EntryKind::Page => return HostAbortOutcome::Spurious,
            EntryKind::Invalid => {
                let owner = annotation_owner(pte);
                if owner != OwnerId::HOST {
                    cov::hit("host_abort/denied");
                    return HostAbortOutcome::InjectToHost;
                }
            }
            _ => return HostAbortOutcome::InjectToHost,
        }
        let pa = PhysAddr::new(ipa);
        let Some(region) = ctx.mem.region_of(pa) else {
            cov::hit("host_abort/denied");
            return HostAbortOutcome::InjectToHost;
        };
        if region.kind == RegionKind::Mmio {
            // Device memory: map the single faulting page.
            cov::hit("host_abort/mmio");
            let page = page_align_down(ipa);
            let r = map_pages_pool(
                ctx,
                st,
                Component::Host,
                &host,
                page,
                PhysAddr::new(page),
                1,
                host_attrs(false, PageState::Owned),
                true,
            );
            return match r {
                Ok(()) => HostAbortOutcome::MappedOnDemand {
                    ipa: page,
                    nr_pages: 1,
                },
                Err(_) => HostAbortOutcome::InjectToHost,
            };
        }
        // host_stage2_adjust_range: the whole invalid entry's region,
        // clipped to the containing RAM region.
        let entry_size = level_size(level);
        let entry_base = ipa & !(entry_size - 1);
        let start = entry_base.max(region.base.bits());
        let mut end = (entry_base + entry_size).min(region.end().bits());
        if ctx.faults.is(Fault::SynHostMapOffByOne) {
            end += PAGE_SIZE;
        }
        let nr = (end - start) / PAGE_SIZE;
        let r = map_pages_pool(
            ctx,
            st,
            Component::Host,
            &host,
            start,
            PhysAddr::new(start),
            nr,
            host_attrs(true, PageState::Owned),
            false,
        );
        match r {
            Ok(()) => {
                cov::hit("host_abort/mapped_on_demand");
                HostAbortOutcome::MappedOnDemand {
                    ipa: start,
                    nr_pages: nr,
                }
            }
            Err(_) => HostAbortOutcome::InjectToHost,
        }
    })();
    st.host_unlock(ctx, host);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSet;
    use crate::hooks::NoHooks;
    use crate::mm::compute_layout;
    use crate::pool::HypPool;
    use crate::vm::VmTable;
    use pkvm_aarch64::attrs::MemType;
    use pkvm_aarch64::attrs::Stage;
    use pkvm_aarch64::memory::MemRegion;
    use pkvm_aarch64::sync::Mutex;
    use pkvm_aarch64::walk::{walk as hw_walk, Access};
    use std::collections::HashMap;

    pub(crate) struct Fx {
        pub mem: PhysMem,
        pub st: HypState,
        pub faults: FaultSet,
        pub tlb: pkvm_aarch64::tlb::TlbSet,
    }

    impl Fx {
        pub fn new() -> Fx {
            let mem = PhysMem::new(vec![
                MemRegion::ram(0x4000_0000, 0x800_0000),
                MemRegion::mmio(0x900_0000, 0x10_0000),
            ]);
            let mut pool = HypPool::new(PhysAddr::new(0x4400_0000), 4096);
            let host_root = pool.alloc_page().unwrap();
            let hyp_root = pool.alloc_page().unwrap();
            mem.zero_page(host_root).unwrap();
            mem.zero_page(hyp_root).unwrap();
            let st = HypState {
                pool: Mutex::new(pool),
                hyp_pgt: Mutex::new(KvmPgtable {
                    root: hyp_root,
                    stage: Stage::Stage1,
                }),
                host_pgt: Mutex::new(KvmPgtable {
                    root: host_root,
                    stage: Stage::Stage2,
                }),
                vm_table: Mutex::new(VmTable::new()),
                reclaim: Mutex::new(HashMap::new()),
                layout: compute_layout(PhysAddr::new(0x4800_0000), false).unwrap(),
                hyp_range: (0x44000, 4096),
            };
            Fx {
                mem,
                st,
                faults: FaultSet::none(),
                tlb: pkvm_aarch64::tlb::TlbSet::new(1),
            }
        }

        pub fn ctx(&self) -> HypCtx<'_> {
            HypCtx {
                mem: &self.mem,
                tlb: &self.tlb,
                cpu: 0,
                hooks: &NoHooks,
                faults: &self.faults,
            }
        }
    }

    const PFN: u64 = 0x40100; // phys 0x4010_0000

    #[test]
    fn share_hyp_maps_both_sides() {
        let f = Fx::new();
        host_share_hyp(&f.ctx(), &f.st, PFN).unwrap();
        let host_root = f.st.host_pgt.lock().root;
        let hyp_root = f.st.hyp_pgt.lock().root;
        let phys = PhysAddr::from_pfn(PFN);
        let h = hw_walk(&f.mem, Stage::Stage2, host_root, phys.bits()).unwrap();
        assert_eq!(h.oa, phys);
        assert_eq!(h.attrs.sw, PageState::SharedOwned.to_sw());
        assert_eq!(h.attrs.perms, Perms::RWX);
        let hv = f.st.layout.hyp_va(phys);
        let y = hw_walk(&f.mem, Stage::Stage1, hyp_root, hv.bits()).unwrap();
        assert_eq!(y.oa, phys);
        assert_eq!(y.attrs.sw, PageState::SharedBorrowed.to_sw());
        assert_eq!(y.attrs.perms, Perms::RW);
    }

    #[test]
    fn double_share_is_eperm() {
        let f = Fx::new();
        host_share_hyp(&f.ctx(), &f.st, PFN).unwrap();
        assert_eq!(host_share_hyp(&f.ctx(), &f.st, PFN), Err(Errno::EPERM));
    }

    #[test]
    fn share_of_mmio_is_eperm() {
        let f = Fx::new();
        assert_eq!(host_share_hyp(&f.ctx(), &f.st, 0x9000), Err(Errno::EPERM));
    }

    #[test]
    fn unshare_restores_exclusive_ownership() {
        let f = Fx::new();
        host_share_hyp(&f.ctx(), &f.st, PFN).unwrap();
        host_unshare_hyp(&f.ctx(), &f.st, PFN).unwrap();
        let phys = PhysAddr::from_pfn(PFN);
        let host_root = f.st.host_pgt.lock().root;
        let h = hw_walk(&f.mem, Stage::Stage2, host_root, phys.bits()).unwrap();
        assert_eq!(h.attrs.sw, PageState::Owned.to_sw());
        let hyp_root = f.st.hyp_pgt.lock().root;
        let hv = f.st.layout.hyp_va(phys);
        assert!(hw_walk(&f.mem, Stage::Stage1, hyp_root, hv.bits()).is_err());
        // And it can be shared again.
        host_share_hyp(&f.ctx(), &f.st, PFN).unwrap();
    }

    #[test]
    fn unshare_of_unshared_is_eperm() {
        let f = Fx::new();
        assert_eq!(host_unshare_hyp(&f.ctx(), &f.st, PFN), Err(Errno::EPERM));
    }

    #[test]
    fn donate_hyp_annotates_host_table() {
        let f = Fx::new();
        host_donate_hyp(&f.ctx(), &f.st, PFN, 2).unwrap();
        let host_root = f.st.host_pgt.lock().root;
        let host = KvmPgtable {
            root: host_root,
            stage: Stage::Stage2,
        };
        for i in 0..2 {
            let ipa = PhysAddr::from_pfn(PFN + i).bits();
            assert_eq!(
                page_state_of(&f.mem, &host, ipa),
                ConcreteState::UnmappedOwner(OwnerId::HYP)
            );
        }
        // Donated pages cannot be shared any more.
        assert_eq!(host_share_hyp(&f.ctx(), &f.st, PFN), Err(Errno::EPERM));
        // And cannot be donated twice.
        assert_eq!(host_donate_hyp(&f.ctx(), &f.st, PFN, 1), Err(Errno::EPERM));
    }

    #[test]
    fn hyp_donate_host_roundtrip() {
        let f = Fx::new();
        host_donate_hyp(&f.ctx(), &f.st, PFN, 1).unwrap();
        hyp_donate_host(&f.ctx(), &f.st, PFN, 1).unwrap();
        let host_root = f.st.host_pgt.lock().root;
        let host = KvmPgtable {
            root: host_root,
            stage: Stage::Stage2,
        };
        assert_eq!(
            page_state_of(&f.mem, &host, PhysAddr::from_pfn(PFN).bits()),
            ConcreteState::UnmappedDefault
        );
        // Sharable again.
        host_share_hyp(&f.ctx(), &f.st, PFN).unwrap();
    }

    #[test]
    fn topup_donates_and_caches() {
        let f = Fx::new();
        let mut mc = Memcache::new();
        topup_memcache(&f.ctx(), &f.st, &mut mc, 0x4010_0000, 4).unwrap();
        assert_eq!(mc.len(), 4);
        let host_root = f.st.host_pgt.lock().root;
        let host = KvmPgtable {
            root: host_root,
            stage: Stage::Stage2,
        };
        assert_eq!(
            page_state_of(&f.mem, &host, 0x4010_2000),
            ConcreteState::UnmappedOwner(OwnerId::HYP)
        );
    }

    #[test]
    fn topup_rejects_unaligned_and_huge() {
        let f = Fx::new();
        let mut mc = Memcache::new();
        assert_eq!(
            topup_memcache(&f.ctx(), &f.st, &mut mc, 0x4010_0800, 1),
            Err(Errno::EINVAL)
        );
        assert_eq!(
            topup_memcache(
                &f.ctx(),
                &f.st,
                &mut mc,
                0x4010_0000,
                MEMCACHE_MAX_TOPUP + 1
            ),
            Err(Errno::E2BIG)
        );
        assert!(mc.is_empty());
    }

    #[test]
    fn bug1_unaligned_topup_zeroes_neighbouring_page() {
        let f = Fx::new();
        f.faults.inject(Fault::Bug1MemcacheAlignment);
        // Sentinel in the page following the donation.
        let victim = PhysAddr::new(0x4010_1000);
        f.mem.write_u64(victim, 0x5ca1ab1e).unwrap();
        // First donate the victim page to the hypervisor so it is clearly
        // not the host's to zero... then the host "donates" an unaligned
        // address overlapping into it.
        let mut mc = Memcache::new();
        topup_memcache(&f.ctx(), &f.st, &mut mc, 0x4010_0800, 1).unwrap();
        assert_eq!(
            f.mem.read_u64(victim).unwrap(),
            0,
            "host zeroed memory beyond its page"
        );
    }

    #[test]
    fn bug2_huge_topup_truncates_silently() {
        let f = Fx::new();
        f.faults.inject(Fault::Bug2MemcacheSize);
        let mut mc = Memcache::new();
        // 0x10000 truncates to 0 through i16: "success", nothing donated.
        topup_memcache(&f.ctx(), &f.st, &mut mc, 0x4010_0000, 0x1_0000).unwrap();
        assert_eq!(mc.len(), 0);
    }

    #[test]
    fn host_abort_maps_on_demand_with_blocks() {
        let f = Fx::new();
        let out = handle_host_mem_abort(&f.ctx(), &f.st, 0x4212_3000);
        let HostAbortOutcome::MappedOnDemand { ipa, nr_pages } = out else {
            panic!("expected mapping, got {out:?}");
        };
        assert!(ipa <= 0x4212_3000);
        assert!(nr_pages >= 1);
        let host_root = f.st.host_pgt.lock().root;
        let tr = pkvm_aarch64::walk::translate(
            &f.mem,
            Stage::Stage2,
            host_root,
            0x4212_3000,
            Access::Write,
        )
        .unwrap();
        assert_eq!(tr.oa, PhysAddr::new(0x4212_3000), "identity mapping");
        // A second fault on the same address is spurious.
        assert_eq!(
            handle_host_mem_abort(&f.ctx(), &f.st, 0x4212_3000),
            HostAbortOutcome::Spurious
        );
    }

    #[test]
    fn host_abort_on_hyp_page_is_denied() {
        let f = Fx::new();
        host_donate_hyp(&f.ctx(), &f.st, PFN, 1).unwrap();
        assert_eq!(
            handle_host_mem_abort(&f.ctx(), &f.st, PhysAddr::from_pfn(PFN).bits()),
            HostAbortOutcome::InjectToHost
        );
    }

    #[test]
    fn host_abort_on_mmio_maps_single_device_page() {
        let f = Fx::new();
        let out = handle_host_mem_abort(&f.ctx(), &f.st, 0x900_2004);
        assert_eq!(
            out,
            HostAbortOutcome::MappedOnDemand {
                ipa: 0x900_2000,
                nr_pages: 1
            }
        );
        let host_root = f.st.host_pgt.lock().root;
        let tr = hw_walk(&f.mem, Stage::Stage2, host_root, 0x900_2000).unwrap();
        assert_eq!(tr.attrs.memtype, MemType::Device);
        assert_eq!(tr.attrs.perms, Perms::RW);
    }

    #[test]
    fn host_abort_outside_memory_is_denied() {
        let f = Fx::new();
        assert_eq!(
            handle_host_mem_abort(&f.ctx(), &f.st, 0x2_0000_0000),
            HostAbortOutcome::InjectToHost
        );
    }

    #[test]
    fn host_abort_after_share_is_spurious() {
        let f = Fx::new();
        host_share_hyp(&f.ctx(), &f.st, PFN).unwrap();
        assert_eq!(
            handle_host_mem_abort(&f.ctx(), &f.st, PhysAddr::from_pfn(PFN).bits()),
            HostAbortOutcome::Spurious
        );
    }

    #[test]
    fn syn_share_wrong_state_mismarks_host_side() {
        let f = Fx::new();
        f.faults.inject(Fault::SynShareWrongState);
        host_share_hyp(&f.ctx(), &f.st, PFN).unwrap();
        let host_root = f.st.host_pgt.lock().root;
        let h = hw_walk(
            &f.mem,
            Stage::Stage2,
            host_root,
            PhysAddr::from_pfn(PFN).bits(),
        )
        .unwrap();
        assert_eq!(
            h.attrs.sw,
            PageState::Owned.to_sw(),
            "bug: owned instead of shared-owned"
        );
    }

    #[test]
    fn syn_skip_check_allows_double_share() {
        let f = Fx::new();
        host_share_hyp(&f.ctx(), &f.st, PFN).unwrap();
        f.faults.inject(Fault::SynShareSkipsCheck);
        assert!(
            host_share_hyp(&f.ctx(), &f.st, PFN).is_ok(),
            "bug: double share accepted"
        );
    }

    #[test]
    fn reclaim_requires_pending_entry() {
        let f = Fx::new();
        assert_eq!(host_reclaim_page(&f.ctx(), &f.st, PFN), Err(Errno::EPERM));
        // Simulate a teardown having queued the page.
        f.st.reclaim.lock().insert(PFN, OwnerId::guest(0));
        // Make the host annotation look guest-owned first.
        {
            let ctx = f.ctx();
            let host = f.st.host_lock(&ctx);
            set_owner_pool(
                &ctx,
                &f.st,
                Component::Host,
                &host,
                PhysAddr::from_pfn(PFN).bits(),
                1,
                annotation_pte(OwnerId::guest(0)),
            )
            .unwrap();
            f.st.host_unlock(&ctx, host);
        }
        f.mem.write_u64(PhysAddr::from_pfn(PFN), 0xdead).unwrap();
        host_reclaim_page(&f.ctx(), &f.st, PFN).unwrap();
        assert_eq!(
            f.mem.read_u64(PhysAddr::from_pfn(PFN)).unwrap(),
            0,
            "page wiped"
        );
        let host_root = f.st.host_pgt.lock().root;
        let host = KvmPgtable {
            root: host_root,
            stage: Stage::Stage2,
        };
        assert_eq!(
            page_state_of(&f.mem, &host, PhysAddr::from_pfn(PFN).bits()),
            ConcreteState::UnmappedDefault
        );
    }

    /// A protected VM with a pool-backed stage 2 root, for firmware tests.
    fn fx_vm(f: &Fx) -> (std::sync::Arc<Vm>, KvmPgtable) {
        let root = f.st.pool.lock().alloc_page().unwrap();
        f.mem.zero_page(root).unwrap();
        let vm = f.st.vm_table.lock().insert(true, 1, root, vec![]).unwrap();
        let pgt = KvmPgtable {
            root,
            stage: Stage::Stage2,
        };
        (vm, pgt)
    }

    #[test]
    fn firmware_donation_hides_pages_and_maps_guest() {
        let f = Fx::new();
        let (vm, pgt) = fx_vm(&f);
        vm_load_firmware(&f.ctx(), &f.st, &vm, &pgt, PFN, 0x80, 2).unwrap();
        let host_root = f.st.host_pgt.lock().root;
        let host = KvmPgtable {
            root: host_root,
            stage: Stage::Stage2,
        };
        for i in 0..2 {
            assert_eq!(
                page_state_of(&f.mem, &host, PhysAddr::from_pfn(PFN + i).bits()),
                ConcreteState::UnmappedOwner(vm.owner_id()),
                "host side annotated away"
            );
            assert!(matches!(
                page_state_of(&f.mem, &pgt, (0x80 + i) * PAGE_SIZE),
                ConcreteState::Mapped(PageState::Owned, _)
            ));
        }
        // The range is gone from the host: no double donation, no share.
        assert_eq!(
            vm_load_firmware(&f.ctx(), &f.st, &vm, &pgt, PFN, 0x90, 1),
            Err(Errno::EPERM)
        );
        assert_eq!(host_share_hyp(&f.ctx(), &f.st, PFN), Err(Errno::EPERM));
    }

    #[test]
    fn firmware_rejects_mapped_guest_range_and_mmio() {
        let f = Fx::new();
        let (vm, pgt) = fx_vm(&f);
        vm_load_firmware(&f.ctx(), &f.st, &vm, &pgt, PFN, 0x80, 1).unwrap();
        // The guest IPA is taken now.
        assert_eq!(
            vm_load_firmware(&f.ctx(), &f.st, &vm, &pgt, PFN + 8, 0x80, 1),
            Err(Errno::EPERM)
        );
        // MMIO is not donatable firmware.
        assert_eq!(
            vm_load_firmware(&f.ctx(), &f.st, &vm, &pgt, 0x9000, 0xa0, 1),
            Err(Errno::EPERM)
        );
    }

    #[test]
    fn firmware_pages_cannot_be_shared_back_by_the_guest() {
        let f = Fx::new();
        let (vm, pgt) = fx_vm(&f);
        vm_load_firmware(&f.ctx(), &f.st, &vm, &pgt, PFN, 0x80, 1).unwrap();
        let firmware = vec![PhysAddr::from_pfn(PFN)];
        let mut mc = Memcache::new();
        assert_eq!(
            guest_share_host(
                &f.ctx(),
                &f.st,
                &vm,
                &pgt,
                &firmware,
                &mut mc,
                0x80 * PAGE_SIZE
            ),
            Err(Errno::EPERM),
            "firmware must never become host-accessible"
        );
    }
}
