//! A pKVM-style protected hypervisor: the system under test.
//!
//! This crate re-implements, in implementation style, the slice of pKVM
//! that the paper's executable specification covers: a pure isolation
//! kernel that manages stage 2 translations for the host and for guest
//! VMs, and a single-stage translation for itself, enforcing a partition
//! of physical memory into single-owner (possibly shared) regions.
//!
//! Module map (names follow the pKVM sources where they exist):
//!
//! - [`error`] — kernel-style error codes;
//! - [`owner`] — logical page ownership and sharing state, encoded in
//!   descriptor software bits and invalid-descriptor annotations;
//! - [`pool`] — the `hyp_pool` buddy allocator over the EL2 carveout;
//! - [`memcache`] — per-vCPU page caches donated by the host;
//! - [`pgtable`] — the generic higher-order page-table walker
//!   (`kvm_pgtable`) with map/annotate/destroy visitors;
//! - [`mm`] — the hypervisor's own VA layout (linear map + private range);
//! - [`mem_protect`] — share/unshare/donate transitions, lazy host
//!   mapping-on-demand, reclaim (`mem_protect.c`);
//! - [`vm`] — VM/vCPU metadata and the VM table;
//! - [`state`] — the lock-per-component shared state and instrumented
//!   lock helpers;
//! - [`machine`], [`handlers`] — the simulated machine, `handle_trap`,
//!   and the hypercall handlers;
//! - [`hypercalls`] — the hypercall ABI;
//! - [`hooks`] — the ghost instrumentation points (implemented by
//!   `pkvm-ghost`; no-ops by default);
//! - [`faults`] — re-introducible real and synthetic bugs;
//! - [`cov`] — the custom coverage registry.

pub mod cov;
pub mod error;
pub mod faults;
pub mod handlers;
pub mod hooks;
pub mod hypercalls;
pub mod machine;
pub mod mem_protect;
pub mod memcache;
pub mod mm;
pub mod owner;
pub mod pgtable;
pub mod pool;
pub mod state;
pub mod vm;

pub use error::{Errno, HypResult};
pub use faults::{Fault, FaultSet};
pub use hooks::{Component, ComponentView, GhostHooks, HookCtx, NoHooks, VcpuView, VmView};
pub use machine::{CpuState, HostAccessFault, Machine, MachineConfig};
pub use owner::{OwnerId, PageState};
pub use state::{HypCtx, HypState};
pub use vm::{GuestOp, Handle, Vcpu, Vm, VmTable};
