//! The hypervisor's own address-space layout.
//!
//! pKVM runs on a single-stage EL2 translation of its own. Its virtual
//! address space has two parts:
//!
//! - the *linear map*: every physical page it owns (or borrows) appears at
//!   `pa + physvirt_offset`, so ownership transfers need only page-table
//!   state changes, not address arithmetic;
//! - a *private range* above the linear map for IO mappings (the UART) and
//!   other fixed structures.
//!
//! Real pKVM bug 5 (§6) lived exactly here: for devices with very large
//! physical memory the private range was placed *inside* the span the
//! linear map would grow into, so linear-map addresses aliased the IO
//! mappings, "leading to unchecked accesses to IO devices". The clean
//! [`compute_layout`] checks for the overlap; the injected variant uses the
//! original fixed placement.

use pkvm_aarch64::addr::{page_align_up, PhysAddr, VirtAddr, PAGE_SIZE};

use crate::error::{Errno, HypResult};

/// Base of the hypervisor linear map.
pub const HYP_LINEAR_BASE: u64 = 0x8000_0000_0000;

/// The fixed private-range placement used by the buggy layout: 256 GiB
/// above the linear base, enough for every device *the authors had tested
/// on* — but not for very large DRAM.
pub const HYP_FIXED_PRIVATE_BASE: u64 = HYP_LINEAR_BASE + 0x40_0000_0000;

/// Guard gap between the linear map and the private range.
const PRIVATE_GUARD: u64 = 16 * PAGE_SIZE;

/// The computed EL2 virtual-address layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HypVaLayout {
    /// `hyp_va = pa + physvirt_offset` within the linear map.
    pub physvirt_offset: u64,
    /// First VA of the private range.
    pub private_base: VirtAddr,
    /// VA at which the UART is mapped.
    pub uart_va: VirtAddr,
    /// One past the highest physical address the linear map must cover.
    pub linear_end_pa: PhysAddr,
}

impl HypVaLayout {
    /// The linear-map virtual address of physical address `pa`.
    #[inline]
    pub fn hyp_va(&self, pa: PhysAddr) -> VirtAddr {
        VirtAddr::new(pa.bits().wrapping_add(self.physvirt_offset))
    }

    /// The physical address behind linear-map address `va`.
    #[inline]
    pub fn hyp_pa(&self, va: VirtAddr) -> PhysAddr {
        PhysAddr::new(va.bits().wrapping_sub(self.physvirt_offset))
    }

    /// Returns `true` if `va` lies in the linear-map span.
    pub fn in_linear_map(&self, va: VirtAddr) -> bool {
        va.bits() >= HYP_LINEAR_BASE && va.bits() < self.hyp_va(self.linear_end_pa).bits()
    }
}

/// Computes the EL2 VA layout for a machine whose highest RAM address is
/// `ram_end`.
///
/// With `buggy_fixed_private` (fault injection for bug 5) the private range
/// is placed at the historical fixed offset with *no overlap check*.
///
/// # Errors
///
/// The clean path returns `ERANGE` if the layout cannot fit (it always can
/// for 48-bit PAs, but the check mirrors the fixed code).
pub fn compute_layout(ram_end: PhysAddr, buggy_fixed_private: bool) -> HypResult<HypVaLayout> {
    let physvirt_offset = HYP_LINEAR_BASE;
    let linear_end_va = HYP_LINEAR_BASE
        .checked_add(ram_end.bits())
        .ok_or(Errno::ERANGE)?;
    let private_base = if buggy_fixed_private {
        // Bug 5: no check that the linear map stays below the private range.
        HYP_FIXED_PRIVATE_BASE
    } else {
        let base = page_align_up(linear_end_va) + PRIVATE_GUARD;
        if base >= 1 << 48 {
            return Err(Errno::ERANGE);
        }
        base
    };
    Ok(HypVaLayout {
        physvirt_offset,
        private_base: VirtAddr::new(private_base),
        uart_va: VirtAddr::new(private_base),
        linear_end_pa: ram_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_map_roundtrip() {
        let l = compute_layout(PhysAddr::new(0x1_0000_0000), false).unwrap();
        let pa = PhysAddr::new(0x4012_3000);
        assert_eq!(l.hyp_pa(l.hyp_va(pa)), pa);
        assert!(l.in_linear_map(l.hyp_va(pa)));
        assert!(!l.in_linear_map(l.private_base));
    }

    #[test]
    fn clean_layout_places_private_above_linear() {
        // 1 TiB of RAM: more than the fixed placement can tolerate.
        let ram_end = PhysAddr::new(0x100_0000_0000);
        let l = compute_layout(ram_end, false).unwrap();
        assert!(l.private_base.bits() >= l.hyp_va(ram_end).bits());
    }

    #[test]
    fn buggy_layout_overlaps_for_large_ram() {
        let ram_end = PhysAddr::new(0x100_0000_0000);
        let l = compute_layout(ram_end, true).unwrap();
        // The private (IO) range now lies inside the linear-map span: the
        // essence of bug 5.
        assert!(l.in_linear_map(l.private_base));
    }

    #[test]
    fn buggy_layout_is_fine_for_small_ram() {
        // On the devices that existed when the code was written, no overlap.
        let l = compute_layout(PhysAddr::new(0x2_0000_0000), true).unwrap();
        assert!(!l.in_linear_map(l.private_base));
    }
}
