//! The simulated machine: memory, hardware threads, and the hypervisor.
//!
//! A [`Machine`] owns the physical memory, the per-CPU register state, and
//! the hypervisor's shared state, and exposes the *architectural* surface
//! the host kernel sees: raising hypercalls ([`Machine::hvc`]) and making
//! memory accesses that are translated through the host's stage 2
//! ([`Machine::host_access`]). Tests never reach into hypervisor
//! internals; like the paper's hyp-proxy, they drive it through this
//! boundary only.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pkvm_aarch64::addr::{PhysAddr, PAGE_SIZE};
use pkvm_aarch64::attrs::Stage;
use pkvm_aarch64::esr::Esr;
use pkvm_aarch64::memory::{MemRegion, PhysMem};
use pkvm_aarch64::sync::{Mutex, MutexGuard};
use pkvm_aarch64::sysreg::{GprFile, SysRegs, Vttbr};
use pkvm_aarch64::tlb::{TlbSet, VMID_HOST};
use pkvm_aarch64::walk::{translate, walk, Access};

use crate::cov;
use crate::error::{Errno, HypResult};
use crate::faults::{Fault, FaultSet};
use crate::hooks::{Component, GhostHooks, NoHooks};
use crate::mem_protect::hyp_attrs;
use crate::mm::compute_layout;
use crate::owner::{annotation_pte, OwnerId, PageState};
use crate::pgtable::{kvm_pgtable_walk, KvmPgtable, MapWalker, PoolOps, SetOwnerWalker, WalkState};
use crate::pool::HypPool;
use crate::state::{HypCtx, HypState};
use crate::vm::{Handle, Vcpu, VmTable};

/// Machine construction parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of hardware threads.
    pub nr_cpus: usize,
    /// DRAM regions as `(base, size)`.
    pub dram: Vec<(u64, u64)>,
    /// MMIO regions as `(base, size)`; the first hosts the UART.
    pub mmio: Vec<(u64, u64)>,
    /// Size of the hypervisor carveout in pages (taken from the top of the
    /// last DRAM region).
    pub hyp_pool_pages: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            nr_cpus: 4,
            dram: vec![(0x4000_0000, 0x800_0000)], // 128 MiB at 1 GiB
            mmio: vec![(0x0900_0000, 0x1000)],     // the QEMU-virt UART
            hyp_pool_pages: 2048,                  // 8 MiB carveout
        }
    }
}

impl MachineConfig {
    /// A configuration with very large (sparse) DRAM, as needed to trigger
    /// real bug 5.
    pub fn huge_dram() -> Self {
        Self {
            dram: vec![(0x4000_0000, 0x100_0000_0000)], // 1 TiB
            ..Self::default()
        }
    }
}

/// Per-hardware-thread state: the saved host context, the translation
/// system registers pKVM manages, and the loaded vCPU.
#[derive(Debug, Default)]
pub struct CpuState {
    /// Saved host general-purpose registers (EL1 context at trap entry).
    pub regs: GprFile,
    /// Translation system registers: pKVM's stage 1 root in `TTBR0_EL2`
    /// and the current stage 2 root + VMID in `VTTBR_EL2` (context
    /// switching between host and guest is exactly an update of this).
    pub sysregs: SysRegs,
    /// The vCPU loaded on this CPU, with its VM handle and index.
    pub loaded_vcpu: Option<(Handle, usize, Box<Vcpu>)>,
}

/// Error reported to a host access that could not be satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostAccessFault;

/// The simulated machine.
pub struct Machine {
    /// Simulated physical memory.
    pub mem: PhysMem,
    /// The hypervisor's lock-structured shared state.
    pub state: HypState,
    /// Per-CPU state; a CPU is driven by at most one thread at a time.
    pub cpus: Vec<Mutex<CpuState>>,
    /// The installed ghost instrumentation.
    pub hooks: Arc<dyn GhostHooks>,
    /// Injected faults.
    pub faults: Arc<FaultSet>,
    /// The stage 1 root the "host kernel" claims for itself; used by the
    /// bug-4 fault path when the hardware did not capture the faulting IPA.
    pub host_s1_root: AtomicU64,
    /// The simulated per-CPU TLBs: the machine fills the accessing CPU's
    /// TLB on translations; the hypervisor must invalidate all of them
    /// (broadcast) when it removes mappings.
    pub tlb: TlbSet,
    panicked: Mutex<Option<String>>,
    config: MachineConfig,
}

impl Machine {
    /// Boots a machine with no oracle and no injected faults.
    pub fn boot_default() -> Arc<Machine> {
        Self::boot(
            MachineConfig::default(),
            Arc::new(NoHooks),
            Arc::new(FaultSet::none()),
        )
    }

    /// Boots a machine: builds memory, initialises the hypervisor (carveout
    /// donation, host stage 2 annotations, the hypervisor's own stage 1
    /// with linear map and UART), with `hooks` observing from the start.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations (no DRAM, carveout larger than
    /// DRAM).
    pub fn boot(
        config: MachineConfig,
        hooks: Arc<dyn GhostHooks>,
        faults: Arc<FaultSet>,
    ) -> Arc<Machine> {
        assert!(!config.dram.is_empty(), "need DRAM");
        let mut regions: Vec<MemRegion> = config
            .dram
            .iter()
            .map(|&(b, s)| MemRegion::ram(b, s))
            .collect();
        regions.extend(config.mmio.iter().map(|&(b, s)| MemRegion::mmio(b, s)));
        let mem = PhysMem::new(regions);
        // The ghost decides whether page-write logging is worth the
        // overhead (the incremental abstraction cache depends on it).
        mem.write_log().set_enabled(hooks.wants_write_log());

        // Carve the hypervisor pool out of the top of the last DRAM region.
        let (last_base, last_size) = *config.dram.last().expect("checked");
        let pool_bytes = config.hyp_pool_pages * PAGE_SIZE;
        assert!(pool_bytes < last_size, "carveout larger than DRAM");
        let pool_base = PhysAddr::new(last_base + last_size - pool_bytes);
        let mut pool = HypPool::new(pool_base, config.hyp_pool_pages);

        let ram_end = PhysAddr::new(last_base + last_size);
        let layout = compute_layout(ram_end, faults.is(Fault::Bug5LinearMapOverlap))
            .expect("layout must fit");

        let host_root = pool.alloc_page().expect("pool sized for boot");
        let hyp_root = pool.alloc_page().expect("pool sized for boot");
        mem.zero_page(host_root).unwrap();
        mem.zero_page(hyp_root).unwrap();

        let state = HypState {
            pool: Mutex::new(pool),
            hyp_pgt: Mutex::new(KvmPgtable {
                root: hyp_root,
                stage: Stage::Stage1,
            }),
            host_pgt: Mutex::new(KvmPgtable {
                root: host_root,
                stage: Stage::Stage2,
            }),
            vm_table: Mutex::new(VmTable::new()),
            reclaim: Mutex::new(HashMap::new()),
            layout,
            hyp_range: (pool_base.pfn(), config.hyp_pool_pages),
        };

        let machine = Arc::new(Machine {
            mem,
            state,
            cpus: (0..config.nr_cpus)
                .map(|_| Mutex::new(CpuState::default()))
                .collect(),
            hooks,
            faults,
            host_s1_root: AtomicU64::new(0),
            tlb: TlbSet::new(config.nr_cpus),
            panicked: Mutex::new(None),
            config,
        });
        machine.pkvm_init();
        // Install the translation roots in each hardware thread's system
        // registers: pKVM's own stage 1, and the host's stage 2 (VMID 0).
        let hyp_root = machine.state.hyp_pgt.lock().root;
        let host_root = machine.state.host_pgt.lock().root;
        for cpu in &machine.cpus {
            let mut g = cpu.lock();
            g.sysregs.ttbr0_el2 = hyp_root.bits();
            g.sysregs.vttbr_el2 = Vttbr::new(VMID_HOST, host_root);
            g.sysregs.hcr_el2 = pkvm_aarch64::sysreg::HCR_VM;
        }
        machine
    }

    /// The boot-time initialisation: annotate the carveout as hyp-owned in
    /// the host's stage 2, and build the hypervisor's own stage 1 (linear
    /// map of the carveout, UART mapping in the private range).
    fn pkvm_init(&self) {
        let ctx = self.ctx(0);
        let (pool_pfn, pool_pages) = self.state.hyp_range;
        let pool_base = PhysAddr::from_pfn(pool_pfn);

        // Host stage 2: the carveout belongs to the hypervisor.
        {
            let host = self.state.host_lock(&ctx);
            let mut pool = self.state.pool.lock();
            let mut mm = PoolOps(&mut pool);
            let mut ws = WalkState::new(&self.mem, &mut mm);
            let mut v = SetOwnerWalker {
                stage: Stage::Stage2,
                annotation: annotation_pte(OwnerId::HYP),
            };
            kvm_pgtable_walk(
                &host,
                &mut ws,
                pool_base.bits(),
                pool_pages * PAGE_SIZE,
                &mut v,
            )
            .expect("boot annotation cannot fail");
            for e in &ws.events {
                if let crate::pgtable::TableEvent::Alloc(p) = e {
                    ctx.hooks
                        .table_page_alloc(&ctx.hook_ctx(), Component::Host, *p);
                }
            }
            drop(pool);
            self.state.host_unlock(&ctx, host);
        }

        // Hypervisor stage 1: linear map of the carveout, then the UART.
        // With bug 5 injected and huge DRAM, the UART's private VA lies
        // *inside* the linear span, so the two mappings alias.
        {
            let hyp = self.state.hyp_lock(&ctx);
            let mut pool = self.state.pool.lock();
            let mut mm = PoolOps(&mut pool);
            let mut ws = WalkState::new(&self.mem, &mut mm);
            let linear_va = self.state.layout.hyp_va(pool_base);
            let mut v = MapWalker {
                stage: Stage::Stage1,
                phys_base: pool_base,
                ia_base: linear_va.bits(),
                attrs: hyp_attrs(true, PageState::Owned),
                force_pages: false,
                corrupt_block_oa: false,
            };
            kvm_pgtable_walk(
                &hyp,
                &mut ws,
                linear_va.bits(),
                pool_pages * PAGE_SIZE,
                &mut v,
            )
            .expect("boot mapping cannot fail");
            if let Some(&(uart_base, _)) = self.config.mmio.first() {
                let mut v = MapWalker {
                    stage: Stage::Stage1,
                    phys_base: PhysAddr::new(uart_base),
                    ia_base: self.state.layout.uart_va.bits(),
                    attrs: hyp_attrs(false, PageState::Owned),
                    force_pages: true,
                    corrupt_block_oa: false,
                };
                kvm_pgtable_walk(
                    &hyp,
                    &mut ws,
                    self.state.layout.uart_va.bits(),
                    PAGE_SIZE,
                    &mut v,
                )
                .expect("boot mapping cannot fail");
            }
            for e in &ws.events {
                if let crate::pgtable::TableEvent::Alloc(p) = e {
                    ctx.hooks
                        .table_page_alloc(&ctx.hook_ctx(), Component::Hyp, *p);
                }
            }
            drop(pool);
            self.state.hyp_unlock(&ctx, hyp);
        }
    }

    /// Builds the handler execution context for `cpu`.
    pub fn ctx(&self, cpu: usize) -> HypCtx<'_> {
        HypCtx {
            mem: &self.mem,
            tlb: &self.tlb,
            cpu,
            hooks: &*self.hooks,
            faults: &self.faults,
        }
    }

    /// Number of hardware threads.
    pub fn nr_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// The machine configuration it was booted with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Returns the panic message if the hypervisor has panicked.
    pub fn panicked(&self) -> Option<String> {
        self.panicked.lock().clone()
    }

    /// Records a hypervisor panic (pKVM's `BUG()`), notifying the oracle.
    pub(crate) fn hyp_panic(&self, ctx: &HypCtx<'_>, reason: &str) {
        ctx.hooks.hyp_panic(&ctx.hook_ctx(), reason);
        let mut p = self.panicked.lock();
        if p.is_none() {
            *p = Some(reason.to_string());
        }
    }

    /// Issues a host hypercall from `cpu`: function id in `x0`, arguments
    /// in `x1..`, returning the result the host reads back from `x1`.
    ///
    /// # Panics
    ///
    /// Panics if more than 6 arguments are passed.
    pub fn hvc(&self, cpu: usize, func: u64, args: &[u64]) -> u64 {
        assert!(args.len() <= 6);
        let mut guard = self.cpus[cpu].lock();
        guard.regs = GprFile::default();
        guard.regs.set(0, func);
        for (i, &a) in args.iter().enumerate() {
            guard.regs.set(i + 1, a);
        }
        self.handle_trap(cpu, &mut guard, Esr::hvc64(0), None);
        guard.regs.get(1)
    }

    /// Translates a host access at `ipa` through the host's stage 2,
    /// taking (and letting the hypervisor handle) a stage 2 fault and
    /// retrying once, exactly like hardware would.
    fn host_translate(
        &self,
        cpu: usize,
        ipa: u64,
        access: Access,
    ) -> Result<PhysAddr, HostAccessFault> {
        // The hardware consults this CPU's TLB first; a (possibly stale!)
        // hit bypasses the walk entirely. Keeping this cache coherent is
        // the hypervisor's job.
        if let Some(hit) = self.tlb.lookup(cpu, VMID_HOST, ipa, access) {
            return Ok(hit.oa.wrapping_add(ipa & (PAGE_SIZE - 1)));
        }
        for attempt in 0..2 {
            let host_root = self.state.host_pgt.lock().root;
            match translate(&self.mem, Stage::Stage2, host_root, ipa, access) {
                Ok(tr) => {
                    self.tlb.fill(cpu, VMID_HOST, ipa, tr);
                    return Ok(tr.oa);
                }
                Err(fault) if attempt == 0 => {
                    let mut guard = self.cpus[cpu].lock();
                    self.handle_trap(cpu, &mut guard, Esr::abort(access, fault), Some(ipa));
                }
                Err(_) => break,
            }
        }
        Err(HostAccessFault)
    }

    /// Issues an SMC from the host; pKVM traps and forwards it to
    /// firmware (a no-op in the simulation, but a distinct trap class the
    /// oracle must handle).
    pub fn smc(&self, cpu: usize, func: u64) {
        let mut guard = self.cpus[cpu].lock();
        guard.regs = GprFile::default();
        guard.regs.set(0, func);
        self.handle_trap(cpu, &mut guard, Esr::smc64(), None);
    }

    /// Performs a host memory access (a 64-bit read, or a write of zero)
    /// at intermediate-physical address `ipa`.
    ///
    /// # Errors
    ///
    /// Returns [`HostAccessFault`] if the access still faults after the
    /// hypervisor handled it (the host would receive an injected abort).
    pub fn host_access(
        &self,
        cpu: usize,
        ipa: u64,
        access: Access,
    ) -> Result<u64, HostAccessFault> {
        match access {
            Access::Write => self.host_write(cpu, ipa, 0).map(|()| 0),
            _ => self.host_read(cpu, ipa),
        }
    }

    /// Host 64-bit read at `ipa` (aligned down to 8 bytes).
    ///
    /// # Errors
    ///
    /// Returns [`HostAccessFault`] if the access faults.
    pub fn host_read(&self, cpu: usize, ipa: u64) -> Result<u64, HostAccessFault> {
        let oa = self.host_translate(cpu, ipa, Access::Read)?;
        self.mem
            .read_u64(PhysAddr::new(oa.bits() & !7))
            .map_err(|_| HostAccessFault)
    }

    /// Host 64-bit write of `value` at `ipa` (aligned down to 8 bytes).
    ///
    /// # Errors
    ///
    /// Returns [`HostAccessFault`] if the access faults.
    pub fn host_write(&self, cpu: usize, ipa: u64, value: u64) -> Result<(), HostAccessFault> {
        let oa = self.host_translate(cpu, ipa, Access::Write)?;
        self.mem
            .write_u64(PhysAddr::new(oa.bits() & !7), value)
            .map_err(|_| HostAccessFault)
    }

    /// Performs a host access through the host's *stage 1 then stage 2*,
    /// with `mangle_s1` run between the hardware fault and the
    /// hypervisor's handling of it — the racing "concurrent host" of real
    /// bug 4. The hardware is assumed not to have captured the faulting
    /// IPA (HPFAR invalid), so the handler must re-walk the host's stage 1
    /// in host-controlled memory.
    ///
    /// # Errors
    ///
    /// Returns [`HostAccessFault`] if the access cannot be satisfied.
    pub fn host_access_via_s1(
        &self,
        cpu: usize,
        va: u64,
        access: Access,
        mangle_s1: impl FnOnce(),
    ) -> Result<u64, HostAccessFault> {
        let s1_root = PhysAddr::new(self.host_s1_root.load(Ordering::SeqCst));
        // Hardware: stage 1 walk to get the IPA.
        let Ok(s1) = walk(&self.mem, Stage::Stage1, s1_root, va) else {
            return Err(HostAccessFault);
        };
        let ipa = s1.oa.bits();
        let host_root = self.state.host_pgt.lock().root;
        match translate(&self.mem, Stage::Stage2, host_root, ipa, access) {
            Ok(_) => self.host_access(cpu, ipa, access),
            Err(fault) => {
                // The stage 2 fault is taken with HPFAR invalid; the racing
                // host rewrites its stage 1 before the handler runs.
                mangle_s1();
                let mut guard = self.cpus[cpu].lock();
                guard.regs.set(0, va); // FAR_EL2 stand-in for the handler
                self.handle_trap(cpu, &mut guard, Esr::abort(access, fault), None);
                drop(guard);
                let host_root = self.state.host_pgt.lock().root;
                match translate(&self.mem, Stage::Stage2, host_root, ipa, access) {
                    Ok(_) => self.host_access(cpu, ipa, access),
                    Err(_) => Err(HostAccessFault),
                }
            }
        }
    }

    /// The host registers (a pointer to) its stage 1 table, as the real
    /// kernel does by writing `TTBR1_EL1`.
    pub fn register_host_s1(&self, root: PhysAddr) {
        self.host_s1_root.store(root.bits(), Ordering::SeqCst);
    }

    /// Enqueues a scripted guest action on a vCPU (test scaffolding for
    /// the guest's half of the protocol). Works whether or not the vCPU is
    /// currently loaded.
    ///
    /// # Errors
    ///
    /// Returns `ENOENT` if the VM or vCPU does not exist.
    pub fn push_guest_op(
        &self,
        handle: Handle,
        vcpu_idx: usize,
        op: crate::vm::GuestOp,
    ) -> HypResult {
        // Check the loaded vCPUs first.
        for cpu in &self.cpus {
            let mut g = cpu.lock();
            if let Some((h, idx, vcpu)) = g.loaded_vcpu.as_mut() {
                if *h == handle && *idx == vcpu_idx {
                    vcpu.pending.push_back(op);
                    return Ok(());
                }
            }
        }
        let vm = self.state.vm_table.lock().get(handle)?;
        let mut inner = vm.inner.lock();
        match inner.vcpus.get_mut(vcpu_idx) {
            Some(crate::vm::VcpuSlot::Present(v)) => {
                v.pending.push_back(op);
                Ok(())
            }
            _ => Err(Errno::ENOENT),
        }
    }

    /// The top-level exception handler (`handle_trap`): bracketed by the
    /// ghost trap hooks, dispatching on the exception class.
    pub(crate) fn handle_trap(
        &self,
        cpu: usize,
        guard: &mut MutexGuard<'_, CpuState>,
        esr: Esr,
        fault_ipa: Option<u64>,
    ) {
        let ctx = self.ctx(cpu);
        let loaded_view = |g: &CpuState| {
            g.loaded_vcpu
                .as_ref()
                .map(|(h, i, v)| (*h, *i, crate::state::loaded_vcpu_view(&self.mem, v, cpu)))
        };
        ctx.hooks.trap_enter(
            &ctx.hook_ctx(),
            esr,
            fault_ipa,
            &guard.regs,
            loaded_view(guard),
        );
        match esr.ec() {
            Some(pkvm_aarch64::esr::ExceptionClass::Hvc64) => {
                cov::hit("handle_trap/hvc");
                self.handle_host_hcall(&ctx, guard);
            }
            Some(pkvm_aarch64::esr::ExceptionClass::DataAbortLowerEl)
            | Some(pkvm_aarch64::esr::ExceptionClass::InstAbortLowerEl) => {
                cov::hit("handle_trap/host_dabt");
                self.handle_host_dabt(&ctx, guard, fault_ipa);
            }
            Some(pkvm_aarch64::esr::ExceptionClass::Smc64) => {
                cov::hit("handle_trap/smc");
                // SMCs are forwarded to EL3 in real pKVM; nothing to do here.
            }
            None => {
                self.hyp_panic(&ctx, "unknown exception class");
            }
        }
        ctx.hooks
            .trap_exit(&ctx.hook_ctx(), &guard.regs, loaded_view(guard));
    }

    /// Host stage 2 abort handling: recover the faulting IPA (re-walking
    /// the host's stage 1 when the hardware did not capture it — the
    /// bug-4 path), then map on demand.
    fn handle_host_dabt(
        &self,
        ctx: &HypCtx<'_>,
        guard: &mut MutexGuard<'_, CpuState>,
        fault_ipa: Option<u64>,
    ) {
        let ipa = match fault_ipa {
            Some(ipa) => ipa,
            None => {
                // HPFAR invalid: walk the host's stage 1 for FAR (in x0).
                // The table lives in *host-writable* memory and may have
                // changed under us — the clean code tolerates that.
                let far = guard.regs.get(0);
                let s1_root = PhysAddr::new(self.host_s1_root.load(Ordering::SeqCst));
                match walk(&self.mem, Stage::Stage1, s1_root, far) {
                    Ok(tr) => tr.oa.bits(),
                    Err(_) => {
                        cov::hit("host_abort/s1_walk_raced");
                        if ctx.faults.is(Fault::Bug4HostFaultRace) {
                            // Bug 4: the original code treated this as an
                            // internal invariant failure.
                            self.hyp_panic(ctx, "host stage 1 walk failed in abort handler");
                        }
                        // Clean behaviour: inject the fault back to the host.
                        return;
                    }
                }
            }
        };
        let _ = crate::mem_protect::handle_host_mem_abort(ctx, &self.state, ipa);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_produces_annotated_carveout() {
        let m = Machine::boot_default();
        assert!(m.panicked().is_none());
        let host_root = m.state.host_pgt.lock().root;
        let host = KvmPgtable {
            root: host_root,
            stage: Stage::Stage2,
        };
        let (pool_pfn, pool_pages) = m.state.hyp_range;
        for pfn in [
            pool_pfn,
            pool_pfn + pool_pages / 2,
            pool_pfn + pool_pages - 1,
        ] {
            assert_eq!(
                crate::mem_protect::page_state_of(&m.mem, &host, pfn * PAGE_SIZE),
                crate::mem_protect::ConcreteState::UnmappedOwner(OwnerId::HYP),
                "carveout page {pfn:#x} must be hyp-owned"
            );
        }
    }

    #[test]
    fn boot_linear_map_translates_carveout() {
        let m = Machine::boot_default();
        let hyp_root = m.state.hyp_pgt.lock().root;
        let (pool_pfn, _) = m.state.hyp_range;
        let pa = PhysAddr::from_pfn(pool_pfn + 7);
        let va = m.state.layout.hyp_va(pa);
        let tr = walk(&m.mem, Stage::Stage1, hyp_root, va.bits()).unwrap();
        assert_eq!(tr.oa, pa);
    }

    #[test]
    fn boot_uart_is_device_mapped() {
        let m = Machine::boot_default();
        let hyp_root = m.state.hyp_pgt.lock().root;
        let tr = walk(
            &m.mem,
            Stage::Stage1,
            hyp_root,
            m.state.layout.uart_va.bits(),
        )
        .unwrap();
        assert_eq!(tr.oa, PhysAddr::new(0x0900_0000));
        assert_eq!(tr.attrs.memtype, pkvm_aarch64::attrs::MemType::Device);
    }

    #[test]
    fn host_access_maps_on_demand_and_retries() {
        let m = Machine::boot_default();
        m.host_access(0, 0x4100_0008, Access::Read).unwrap();
        // The second access must not fault (mapping persisted).
        let host_root = m.state.host_pgt.lock().root;
        assert!(translate(&m.mem, Stage::Stage2, host_root, 0x4100_0008, Access::Read).is_ok());
    }

    #[test]
    fn host_cannot_touch_the_carveout() {
        let m = Machine::boot_default();
        let (pool_pfn, _) = m.state.hyp_range;
        assert_eq!(
            m.host_access(0, pool_pfn * PAGE_SIZE, Access::Write),
            Err(HostAccessFault)
        );
        assert!(m.panicked().is_none());
    }

    #[test]
    fn hvc_unknown_function_is_eopnotsupp() {
        let m = Machine::boot_default();
        let ret = m.hvc(0, 0xc600_ffff, &[]);
        assert_eq!(Errno::from_ret(ret), Some(Errno::EOPNOTSUPP));
    }
}
