//! Instrumentation hooks for the ghost specification.
//!
//! The paper splices ghost recording calls into pKVM at a few key points,
//! guarded by `CONFIG_NVHE_GHOST_SPEC` (§3.2): entry/exit of the top-level
//! exception handlers, acquisition/release of each component lock, the
//! vCPU load/put ownership transfers, `READ_ONCE` accesses to host-shared
//! memory, and page-table page allocation (for the separation check).
//!
//! We express the same points as a trait with no-op defaults. The
//! hypervisor calls them; the `pkvm-ghost` crate implements them. The
//! hypervisor never depends on the specification — the same hygiene
//! boundary as the paper's `ghost/` directories.

use pkvm_aarch64::{Esr, GprFile, PhysAddr, PhysMem};

use crate::vm::Handle;

/// The lock-protected components of the hypervisor's shared state, mirroring
/// pKVM's per-page-table locking (§3.1 "Following the ownership structure").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// pKVM's own stage 1 page table.
    Hyp,
    /// The host's stage 2 page table (and ownership annotations).
    Host,
    /// The table of guest VM metadata.
    VmTable,
    /// One guest VM: its stage 2 table and vCPU metadata.
    Vm(Handle),
}

/// A read-only snapshot of one vCPU's metadata, for abstraction recording.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VcpuView {
    /// Whether `init_vcpu` has completed for this vCPU.
    pub initialized: bool,
    /// The physical CPU this vCPU is loaded on, if any.
    pub loaded_on: Option<usize>,
    /// The vCPU's saved general-purpose registers.
    pub regs: GprFile,
    /// The pages currently in the vCPU's memcache (empty while loaded:
    /// the cache is then owned by the hardware thread).
    pub memcache_pages: Vec<PhysAddr>,
}

/// A read-only snapshot of one VM's metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmView {
    /// The VM's handle.
    pub handle: Handle,
    /// The VM's incarnation id ([`crate::vm::Vm::uniq`]): handles are
    /// reused after teardown, so recorded abstractions carry the
    /// incarnation to keep two VMs with the same handle apart.
    pub uniq: u64,
    /// The VM-table slot (determines the guest's owner id).
    pub slot: usize,
    /// Root of the guest's stage 2 table.
    pub s2_root: PhysAddr,
    /// Whether this is a protected VM.
    pub protected: bool,
    /// Host pages donated for VM metadata.
    pub donated: Vec<PhysAddr>,
    /// Host pages donated as the pvmfw-style firmware region. The host
    /// must never regain access to these for the VM's lifetime.
    pub firmware: Vec<PhysAddr>,
    /// Per-vCPU snapshots.
    pub vcpus: Vec<VcpuView>,
}

/// One edge of the page-ownership transfer protocol: which transition a
/// physical page range just committed. Fired under the host lock at the
/// commit point of every `mem_protect` transition, so per-page edge order
/// is deterministic regardless of check mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TransferEdge {
    /// `host_share_hyp`: host page becomes SharedOwned/SharedBorrowed.
    ShareHyp = 0,
    /// `host_unshare_hyp`: the share is revoked, host exclusive again.
    UnshareHyp = 1,
    /// `host_donate_hyp`: host page becomes hypervisor-owned.
    DonateHyp = 2,
    /// `hyp_donate_host`: a hypervisor page returns to the host.
    DonateHost = 3,
    /// `host_donate_guest`: host page donated to a protected guest.
    MapGuestOwned = 4,
    /// `host_share_guest`: host page shared with an unprotected guest.
    MapGuestShared = 5,
    /// Guest `mem_share`: guest page becomes visible to the host.
    GuestShareHost = 6,
    /// Guest `mem_unshare`: the guest revokes the host's view.
    GuestUnshareHost = 7,
    /// `vm_load_firmware`: host pages donated as a firmware region.
    Firmware = 8,
    /// `host_reclaim_page`: a retired guest page returns to the host.
    Reclaim = 9,
}

impl TransferEdge {
    /// Every protocol edge, for coverage sweeps.
    pub const ALL: &'static [TransferEdge] = &[
        TransferEdge::ShareHyp,
        TransferEdge::UnshareHyp,
        TransferEdge::DonateHyp,
        TransferEdge::DonateHost,
        TransferEdge::MapGuestOwned,
        TransferEdge::MapGuestShared,
        TransferEdge::GuestShareHost,
        TransferEdge::GuestUnshareHost,
        TransferEdge::Firmware,
        TransferEdge::Reclaim,
    ];

    /// Short stable name for coverage points and reports.
    pub const fn name(self) -> &'static str {
        match self {
            TransferEdge::ShareHyp => "share_hyp",
            TransferEdge::UnshareHyp => "unshare_hyp",
            TransferEdge::DonateHyp => "donate_hyp",
            TransferEdge::DonateHost => "donate_host",
            TransferEdge::MapGuestOwned => "map_guest_owned",
            TransferEdge::MapGuestShared => "map_guest_shared",
            TransferEdge::GuestShareHost => "guest_share_host",
            TransferEdge::GuestUnshareHost => "guest_unshare_host",
            TransferEdge::Firmware => "firmware",
            TransferEdge::Reclaim => "reclaim",
        }
    }

    /// Decodes the `repr(u8)` discriminant (tracefile round-trips).
    pub const fn from_u8(v: u8) -> Option<TransferEdge> {
        match v {
            0 => Some(TransferEdge::ShareHyp),
            1 => Some(TransferEdge::UnshareHyp),
            2 => Some(TransferEdge::DonateHyp),
            3 => Some(TransferEdge::DonateHost),
            4 => Some(TransferEdge::MapGuestOwned),
            5 => Some(TransferEdge::MapGuestShared),
            6 => Some(TransferEdge::GuestShareHost),
            7 => Some(TransferEdge::GuestUnshareHost),
            8 => Some(TransferEdge::Firmware),
            9 => Some(TransferEdge::Reclaim),
            _ => None,
        }
    }
}

/// What a component lock protects, exposed to the abstraction functions at
/// the moment the lock is held.
#[derive(Clone, Debug)]
pub enum ComponentView {
    /// pKVM's stage 1: the translation root.
    Hyp {
        /// Root of pKVM's stage 1 table.
        root: PhysAddr,
    },
    /// Host stage 2: the translation root.
    Host {
        /// Root of the host's stage 2 table.
        root: PhysAddr,
    },
    /// The VM table: which slots hold which handles.
    VmTable {
        /// Handle and slot of every live VM.
        vms: Vec<(Handle, usize)>,
        /// Handle and incarnation id of every live VM (same order as
        /// `vms`); lets observers detect handle reuse across teardown.
        uniqs: Vec<(Handle, u64)>,
    },
    /// One VM's metadata and stage 2 root.
    Vm(VmView),
}

/// Context passed to every hook: the simulated memory (so abstraction
/// functions can interpret concrete page tables) and the hardware thread.
pub struct HookCtx<'a> {
    /// Simulated physical memory.
    pub mem: &'a PhysMem,
    /// Index of the hardware thread executing the handler.
    pub cpu: usize,
}

/// The ghost instrumentation points.
///
/// All methods default to no-ops so the hypervisor runs unmodified when no
/// oracle is installed (the `#ifdef`-off configuration of the paper).
#[allow(unused_variables)]
pub trait GhostHooks: Send + Sync {
    /// Entry of the top-level exception handler: record thread-local
    /// pre-state (saved host/guest registers, syndrome, for aborts the
    /// faulting intermediate-physical address when the hardware provided
    /// one, and the vCPU currently loaded on this thread).
    fn trap_enter(
        &self,
        ctx: &HookCtx<'_>,
        esr: Esr,
        fault_ipa: Option<u64>,
        regs: &GprFile,
        loaded: Option<(Handle, usize, VcpuView)>,
    ) {
    }

    /// Exit of the top-level handler: record thread-local post-state and
    /// run the oracle check for this trap.
    fn trap_exit(
        &self,
        ctx: &HookCtx<'_>,
        regs: &GprFile,
        loaded: Option<(Handle, usize, VcpuView)>,
    ) {
    }

    /// A component lock was just acquired; record the pre abstraction.
    fn lock_acquired(&self, ctx: &HookCtx<'_>, comp: Component, view: &ComponentView) {}

    /// A component lock is about to be released; record the post abstraction.
    fn lock_releasing(&self, ctx: &HookCtx<'_>, comp: Component, view: &ComponentView) {}

    /// A vCPU was loaded onto this physical CPU (ownership of its metadata
    /// transfers from the VM lock to the hardware thread).
    fn vcpu_loaded(&self, ctx: &HookCtx<'_>, vm: Handle, vcpu_idx: usize, view: &VcpuView) {}

    /// The loaded vCPU is being put back (ownership returns to the VM lock).
    fn vcpu_put(&self, ctx: &HookCtx<'_>, vm: Handle, vcpu_idx: usize, view: &VcpuView) {}

    /// The implementation performed a `READ_ONCE` of host-writable shared
    /// memory; the value is nondeterministic and the spec is parameterised
    /// on it (§4.3).
    fn read_once(&self, ctx: &HookCtx<'_>, tag: &'static str, value: u64) {}

    /// A page was allocated to back a translation table of `comp`
    /// (separation-footprint tracking, §4.4).
    fn table_page_alloc(&self, ctx: &HookCtx<'_>, comp: Component, page: PhysAddr) {}

    /// A translation-table page of `comp` was freed.
    fn table_page_free(&self, ctx: &HookCtx<'_>, comp: Component, page: PhysAddr) {}

    /// The implementation removed or tightened a live mapping: `nr_pages`
    /// starting at `ia` under `vmid` lost permissions or were unmapped.
    /// This is the "break" of break-before-make — it must be followed by
    /// a covering broadcast TLBI and a DSB before the trap exits.
    fn pte_downgrade(&self, ctx: &HookCtx<'_>, vmid: u16, ia: u64, nr_pages: u64) {}

    /// The implementation issued a TLB invalidation covering `nr_pages`
    /// starting at `ia` under `vmid` (VMID-wide scopes are encoded as
    /// `ia = 0, nr_pages = u64::MAX`). `broadcast` distinguishes the
    /// `*is` inner-shareable form from the local-only one.
    fn tlbi(&self, ctx: &HookCtx<'_>, vmid: u16, ia: u64, nr_pages: u64, broadcast: bool) {}

    /// The implementation issued the data synchronisation barrier that
    /// completes its preceding TLB invalidations.
    fn dsb(&self, ctx: &HookCtx<'_>) {}

    /// A page-ownership transfer edge committed: `nr` pages starting at
    /// `pfn` crossed `edge` of the transfer protocol. For
    /// [`TransferEdge::Reclaim`], `dirty` reports whether the page still
    /// held non-zero guest data when it reached the host (the wipe check);
    /// it is `false` for every other edge.
    fn transfer(&self, ctx: &HookCtx<'_>, edge: TransferEdge, pfn: u64, nr: u64, dirty: bool) {}

    /// A firmware region was donated to a protected VM: `nr` pages
    /// starting at `pfn` are now firmware of the VM identified by
    /// (`handle`, `uniq`). The host must never regain access to them.
    fn firmware_donated(&self, ctx: &HookCtx<'_>, handle: Handle, uniq: u64, pfn: u64, nr: u64) {}

    /// The host's stage 2 regained access to `nr` pages starting at
    /// `pfn` (reclaim, hyp-to-host donation, or a guest share-back).
    fn host_regain(&self, ctx: &HookCtx<'_>, pfn: u64, nr: u64) {}

    /// The hypervisor panicked (internal invariant failure).
    fn hyp_panic(&self, ctx: &HookCtx<'_>, reason: &str) {}

    /// Whether the machine should enable physical-memory write logging
    /// for this ghost (queried once at boot). The incremental abstraction
    /// cache needs it; everything else runs without the logging overhead.
    fn wants_write_log(&self) -> bool {
        false
    }
}

/// The always-off instrumentation (no ghost configured).
pub struct NoHooks;

impl GhostHooks for NoHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_hooks_is_a_valid_ghost() {
        // Compile-time check that the default impls satisfy the trait and
        // can be used as a trait object.
        let hooks: &dyn GhostHooks = &NoHooks;
        let mem = PhysMem::new(vec![]);
        let ctx = HookCtx { mem: &mem, cpu: 0 };
        hooks.trap_enter(&ctx, Esr::hvc64(0), None, &GprFile::default(), None);
        hooks.read_once(&ctx, "test", 7);
        hooks.hyp_panic(&ctx, "nothing");
    }

    #[test]
    fn component_ordering_is_stable() {
        // The locking discipline orders Host before Hyp in two-phase
        // sections; the enum ordering is used in reports.
        assert!(Component::Hyp < Component::Host);
        assert!(Component::Host < Component::VmTable);
    }
}
