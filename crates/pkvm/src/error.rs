//! Kernel-style error codes.
//!
//! pKVM returns negative errno values to the host through register `x1`;
//! the specification is *parametric* on some of these (notably `ENOMEM`,
//! which the oracle allows almost anywhere), so the codes themselves are
//! part of the specified interface.

/// Error codes used by the hypervisor, with Linux errno numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(i64)]
pub enum Errno {
    /// Operation not permitted (ownership/permission check failed).
    EPERM = 1,
    /// No such entity (unknown VM handle, vCPU index...).
    ENOENT = 2,
    /// Argument list too long / count overflow.
    E2BIG = 7,
    /// Try again (resource transiently unavailable).
    EAGAIN = 11,
    /// Out of memory (allocator or memcache exhausted).
    ENOMEM = 12,
    /// Device or resource busy (e.g. vCPU already loaded).
    EBUSY = 16,
    /// Entity already exists.
    EEXIST = 17,
    /// Invalid argument (misaligned address, bad range...).
    EINVAL = 22,
    /// Result out of range.
    ERANGE = 34,
    /// Operation not supported (unknown hypercall).
    EOPNOTSUPP = 95,
}

impl Errno {
    /// The value returned to the host: the negated errno as a `u64`.
    #[inline]
    pub const fn to_ret(self) -> u64 {
        (-(self as i64)) as u64
    }

    /// Decodes a register return value back into an errno, if it is one.
    pub const fn from_ret(ret: u64) -> Option<Errno> {
        match ret.wrapping_neg() as i64 {
            1 => Some(Errno::EPERM),
            2 => Some(Errno::ENOENT),
            7 => Some(Errno::E2BIG),
            11 => Some(Errno::EAGAIN),
            12 => Some(Errno::ENOMEM),
            16 => Some(Errno::EBUSY),
            17 => Some(Errno::EEXIST),
            22 => Some(Errno::EINVAL),
            34 => Some(Errno::ERANGE),
            95 => Some(Errno::EOPNOTSUPP),
            _ => None,
        }
    }
}

impl core::fmt::Display for Errno {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "-{self:?}")
    }
}

/// Result type used throughout the hypervisor.
pub type HypResult<T = ()> = Result<T, Errno>;

/// Converts a `HypResult` into the register return-value convention
/// (0 on success, negated errno on failure).
pub fn ret_of_result(r: HypResult<u64>) -> u64 {
    match r {
        Ok(v) => v,
        Err(e) => e.to_ret(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ret_encoding_roundtrip() {
        for e in [
            Errno::EPERM,
            Errno::ENOENT,
            Errno::E2BIG,
            Errno::EAGAIN,
            Errno::ENOMEM,
            Errno::EBUSY,
            Errno::EEXIST,
            Errno::EINVAL,
            Errno::ERANGE,
            Errno::EOPNOTSUPP,
        ] {
            assert_eq!(Errno::from_ret(e.to_ret()), Some(e));
        }
    }

    #[test]
    fn success_is_not_an_errno() {
        assert_eq!(Errno::from_ret(0), None);
        assert_eq!(Errno::from_ret(42), None);
    }

    #[test]
    fn eperm_is_minus_one() {
        assert_eq!(Errno::EPERM.to_ret(), u64::MAX);
        assert_eq!(ret_of_result(Err(Errno::ENOMEM)), (-12i64) as u64);
        assert_eq!(ret_of_result(Ok(7)), 7);
    }
}
