//! TLB coherence tests: the hypervisor must invalidate cached
//! translations whenever it removes or downgrades mappings, or revoked
//! access keeps working through stale entries — the bug class of the
//! paper's companion work on TLB synchronisation. With per-CPU TLBs the
//! tests also pin down the broadcast discipline (a fill on one CPU must
//! die on *every* CPU) and the break-before-make event protocol the
//! hooks expose (every downgrade followed by a covering TLBI + DSB).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pkvm_aarch64::addr::PAGE_SIZE;
use pkvm_aarch64::sync::Mutex;
use pkvm_aarch64::tlb::{RemoteDelivery, TlbInvalidationPolicy, TlbiScope, VMID_HOST, VMID_HYP};
use pkvm_aarch64::walk::Access;
use pkvm_hyp::error::Errno;
use pkvm_hyp::faults::{Fault, FaultSet};
use pkvm_hyp::hooks::{GhostHooks, HookCtx};
use pkvm_hyp::hypercalls::*;
use pkvm_hyp::machine::{Machine, MachineConfig};
use pkvm_hyp::vm::GuestOp;

fn boot_with(faults: FaultSet) -> Arc<Machine> {
    Machine::boot(
        MachineConfig::default(),
        Arc::new(pkvm_hyp::hooks::NoHooks),
        Arc::new(faults),
    )
}

/// Records the break-before-make hook protocol: downgrades, TLBIs, DSBs,
/// in one interleaved list so ordering is checkable.
#[derive(Default)]
struct BbmRecorder {
    log: Mutex<Vec<BbmStep>>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BbmStep {
    Downgrade {
        vmid: u16,
        ia: u64,
        nr: u64,
    },
    Tlbi {
        vmid: u16,
        ia: u64,
        nr: u64,
        broadcast: bool,
    },
    Dsb,
}

impl GhostHooks for BbmRecorder {
    fn pte_downgrade(&self, _ctx: &HookCtx<'_>, vmid: u16, ia: u64, nr_pages: u64) {
        self.log.lock().push(BbmStep::Downgrade {
            vmid,
            ia,
            nr: nr_pages,
        });
    }

    fn tlbi(&self, _ctx: &HookCtx<'_>, vmid: u16, ia: u64, nr_pages: u64, broadcast: bool) {
        self.log.lock().push(BbmStep::Tlbi {
            vmid,
            ia,
            nr: nr_pages,
            broadcast,
        });
    }

    fn dsb(&self, _ctx: &HookCtx<'_>) {
        self.log.lock().push(BbmStep::Dsb);
    }
}

impl BbmRecorder {
    /// Indices of downgrades not followed by a covering broadcast TLBI
    /// and a DSB before the end of the log.
    fn dangling_downgrades(&self) -> Vec<usize> {
        let log = self.log.lock();
        let mut dangling = Vec::new();
        for (i, step) in log.iter().enumerate() {
            let &BbmStep::Downgrade { vmid, ia, nr } = step else {
                continue;
            };
            let covered = log.iter().skip(i + 1).enumerate().any(|(j, later)| {
                let &BbmStep::Tlbi {
                    vmid: tv,
                    ia: tia,
                    nr: tnr,
                    broadcast,
                } = later
                else {
                    return false;
                };
                let cover_base = tia as u128;
                let cover_end = cover_base + tnr as u128 * PAGE_SIZE as u128;
                let base = ia as u128;
                let end = base + nr as u128 * PAGE_SIZE as u128;
                broadcast
                    && tv == vmid
                    && cover_base <= base
                    && end <= cover_end
                    // ... and a DSB completes it afterwards.
                    && log
                        .iter()
                        .skip(i + 1 + j + 1)
                        .any(|s| matches!(s, BbmStep::Dsb))
            });
            if !covered {
                dangling.push(i);
            }
        }
        dangling
    }

    fn tlbis(&self) -> Vec<(u16, u64, u64, bool)> {
        self.log
            .lock()
            .iter()
            .filter_map(|s| match *s {
                BbmStep::Tlbi {
                    vmid,
                    ia,
                    nr,
                    broadcast,
                } => Some((vmid, ia, nr, broadcast)),
                _ => None,
            })
            .collect()
    }
}

fn boot_recorded(faults: FaultSet) -> (Arc<Machine>, Arc<BbmRecorder>) {
    let rec = Arc::new(BbmRecorder::default());
    let m = Machine::boot(MachineConfig::default(), rec.clone(), Arc::new(faults));
    (m, rec)
}

const PFN: u64 = 0x40900;

/// Boots a machine and brings up one VM with a loaded vCPU; returns the
/// machine (or recorder-instrumented machine parts, via `boot`).
fn setup_vm(m: &Machine) -> u64 {
    let params = 0x40200u64;
    let base = pkvm_aarch64::PhysAddr::from_pfn(params);
    m.mem.write_u64(base, 1).unwrap(); // nr_vcpus
    m.mem.write_u64(base.wrapping_add(8), 1).unwrap(); // protected
    let h = m.hvc(0, HVC_INIT_VM, &[params, 0x40300, 2]);
    assert!(Errno::from_ret(h).is_none());
    assert_eq!(m.hvc(0, HVC_INIT_VCPU, &[h, 0, 0x40310]), 0);
    assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[h, 0]), 0);
    h
}

#[test]
fn repeated_host_accesses_hit_the_tlb() {
    let m = boot_with(FaultSet::none());
    m.host_access(0, PFN * PAGE_SIZE, Access::Read).unwrap();
    let misses = m.tlb.misses();
    let hits_before = m.tlb.hits();
    for _ in 0..10 {
        m.host_access(0, PFN * PAGE_SIZE + 8, Access::Read).unwrap();
    }
    assert_eq!(m.tlb.misses(), misses, "no further walks needed");
    assert!(m.tlb.hits() >= hits_before + 10);
}

#[test]
fn fills_are_cpu_local_so_each_cpu_walks_once() {
    let m = boot_with(FaultSet::none());
    m.host_access(0, PFN * PAGE_SIZE, Access::Read).unwrap();
    let misses = m.tlb.misses();
    // A different CPU has its own (empty) TLB: it must walk.
    m.host_access(1, PFN * PAGE_SIZE, Access::Read).unwrap();
    assert!(m.tlb.misses() > misses, "CPU 1 must miss and walk");
    // But only once.
    let misses = m.tlb.misses();
    m.host_access(1, PFN * PAGE_SIZE, Access::Read).unwrap();
    assert_eq!(m.tlb.misses(), misses);
}

#[test]
fn donation_invalidates_the_host_tlb_entry() {
    let m = boot_with(FaultSet::none());
    setup_vm(&m);
    // Host warms the TLB for the page, then donates it.
    m.host_access(0, PFN * PAGE_SIZE, Access::Read).unwrap();
    assert!(m
        .tlb
        .lookup(0, VMID_HOST, PFN * PAGE_SIZE, Access::Read)
        .is_some());
    assert_eq!(m.hvc(0, HVC_TOPUP_MEMCACHE, &[PFN << 12, 1]), 0);
    // The stale entry is gone and the access now faults for real.
    assert!(m
        .tlb
        .lookup(0, VMID_HOST, PFN * PAGE_SIZE, Access::Read)
        .is_none());
    assert!(m.host_access(0, PFN * PAGE_SIZE, Access::Read).is_err());
}

#[test]
fn donation_broadcast_reaches_other_cpus() {
    // CPU 1 warms its own TLB; CPU 0 donates the page. The broadcast
    // invalidation must kill CPU 1's entry too, or CPU 1 keeps reading
    // hypervisor-owned memory.
    let m = boot_with(FaultSet::none());
    setup_vm(&m);
    m.host_access(1, PFN * PAGE_SIZE, Access::Read).unwrap();
    assert!(m
        .tlb
        .lookup(1, VMID_HOST, PFN * PAGE_SIZE, Access::Read)
        .is_some());
    assert_eq!(m.hvc(0, HVC_TOPUP_MEMCACHE, &[PFN << 12, 1]), 0);
    assert!(
        m.tlb
            .lookup(1, VMID_HOST, PFN * PAGE_SIZE, Access::Read)
            .is_none(),
        "broadcast TLBI must reach CPU 1"
    );
    assert!(m.host_access(1, PFN * PAGE_SIZE, Access::Read).is_err());
}

/// Drops every remote delivery — the deterministic core of the harness's
/// stale-tlb chaos family.
struct DropRemote {
    dropped: AtomicUsize,
}

impl TlbInvalidationPolicy for DropRemote {
    fn remote(&self, _issuer: usize, _target: usize, _scope: &TlbiScope) -> RemoteDelivery {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        RemoteDelivery::Drop
    }
}

#[test]
fn chaos_knob_keeps_remote_entries_stale_until_detected() {
    // Same scenario as donation_broadcast_reaches_other_cpus, but with
    // the remote-delivery knob dropping the broadcast: CPU 1's entry
    // survives, keeps serving, and every stale serve is accounted for.
    let m = boot_with(FaultSet::none());
    setup_vm(&m);
    m.host_access(1, PFN * PAGE_SIZE, Access::Read).unwrap();
    let policy = Arc::new(DropRemote {
        dropped: AtomicUsize::new(0),
    });
    m.tlb.set_policy(Some(policy.clone()));
    assert_eq!(m.hvc(0, HVC_TOPUP_MEMCACHE, &[PFN << 12, 1]), 0);
    assert!(policy.dropped.load(Ordering::Relaxed) > 0);
    // The discipline was violated (delivery suppressed), so — and only
    // so — CPU 1 still translates. The served entry is exactly the
    // retained one, counted stale.
    let stale_before = m.tlb.stale_served();
    assert!(
        m.host_access(1, PFN * PAGE_SIZE, Access::Read).is_ok(),
        "dropped invalidation leaves CPU 1 serving the stale entry"
    );
    assert!(m.tlb.stale_served() > stale_before);
    assert!(m.tlb.stale_keys(1).contains(&(VMID_HOST, PFN * PAGE_SIZE)));
    // The issuing CPU delivered locally: it faults correctly.
    assert!(m.host_access(0, PFN * PAGE_SIZE, Access::Read).is_err());
    // Once a delivered invalidation covers the page, detection ends the
    // staleness: the entry dies.
    m.tlb.set_policy(None);
    m.tlb.invalidate_page(0, VMID_HOST, PFN * PAGE_SIZE, true);
    assert!(m.host_access(1, PFN * PAGE_SIZE, Access::Read).is_err());
    assert!(m.tlb.stale_keys(1).is_empty());
}

#[test]
fn share_unshare_keeps_the_tlb_coherent() {
    let m = boot_with(FaultSet::none());
    assert_eq!(m.hvc(0, HVC_HOST_SHARE_HYP, &[PFN]), 0);
    m.host_access(0, PFN * PAGE_SIZE, Access::Read).unwrap();
    assert_eq!(m.hvc(0, HVC_HOST_UNSHARE_HYP, &[PFN]), 0);
    // The host still owns the page; the access refaults and remaps — but
    // through a *fresh* walk, not the stale shared-state entry.
    let misses_before = m.tlb.misses();
    m.host_access(0, PFN * PAGE_SIZE, Access::Read).unwrap();
    assert!(
        m.tlb.misses() > misses_before,
        "stale entry must not satisfy the retry"
    );
}

#[test]
fn guest_translations_are_cached_and_retired_at_teardown() {
    let m = boot_with(FaultSet::none());
    let h = setup_vm(&m);
    assert_eq!(m.hvc(0, HVC_TOPUP_MEMCACHE, &[0x40500 << 12, 8]), 0);
    assert_eq!(m.hvc(0, HVC_HOST_MAP_GUEST, &[0x40600, 0x10]), 0);
    // Two guest reads: the second hits the guest-VMID TLB entry.
    m.push_guest_op(h as u32, 0, GuestOp::Read(0x10 * PAGE_SIZE))
        .unwrap();
    assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::CONTINUE);
    let hits = m.tlb.hits();
    m.push_guest_op(h as u32, 0, GuestOp::Read(0x10 * PAGE_SIZE))
        .unwrap();
    assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::CONTINUE);
    assert!(m.tlb.hits() > hits);
    // The entry is cached under the guest's VMID (slot 0 → VMID 1);
    // teardown retires it.
    assert!(m.tlb.lookup(0, 1, 0x10 * PAGE_SIZE, Access::Read).is_some());
    assert_eq!(m.hvc(0, HVC_VCPU_PUT, &[]), 0);
    assert_eq!(m.hvc(0, HVC_TEARDOWN_VM, &[h]), 0);
    assert!(
        m.tlb.lookup(0, 1, 0x10 * PAGE_SIZE, Access::Read).is_none(),
        "guest vmid 1 retired"
    );
}

#[test]
fn missing_tlbi_lets_the_host_read_donated_memory() {
    // The injected bug: no invalidations. The isolation breach is
    // architectural (page tables are correct!), so the oracle's
    // extensional table check cannot see it; the behavioural check and
    // the break-before-make event check both do.
    let faults = FaultSet::none();
    faults.inject(Fault::SynMissingTlbi);
    let m = boot_with(faults);
    setup_vm(&m);
    // Warm, donate, and... the revoked access still works.
    m.host_access(0, PFN * PAGE_SIZE, Access::Read).unwrap();
    assert_eq!(m.hvc(0, HVC_TOPUP_MEMCACHE, &[PFN << 12, 1]), 0);
    assert!(
        m.host_access(0, PFN * PAGE_SIZE, Access::Read).is_ok(),
        "the stale TLB entry keeps serving the host"
    );
    // With the fix, the same sequence faults (see
    // donation_invalidates_the_host_tlb_entry).
}

// ---------------------------------------------------------------------
// Break-before-make pairs: for each mutation-site family, the clean run
// leaves no downgrade dangling (negative), and the missing-TLBI fault
// leaves at least one (positive) — the protocol the oracle's spec check
// enforces from the event stream.
// ---------------------------------------------------------------------

fn bbm_pair(drive: impl Fn(&Machine)) {
    let (m, rec) = boot_recorded(FaultSet::none());
    drive(&m);
    assert!(m.panicked().is_none());
    assert_eq!(
        rec.dangling_downgrades(),
        Vec::<usize>::new(),
        "clean run must close every downgrade with a covering TLBI + DSB"
    );
    assert!(
        !rec.tlbis().is_empty(),
        "the scenario must actually exercise a TLBI site"
    );

    let faults = FaultSet::none();
    faults.inject(Fault::SynMissingTlbi);
    let (m, rec) = boot_recorded(faults);
    drive(&m);
    assert!(m.panicked().is_none());
    assert!(
        !rec.dangling_downgrades().is_empty(),
        "missing-TLBI run must leave a dangling downgrade"
    );
    assert!(rec.tlbis().is_empty(), "the fault suppresses every TLBI");
}

#[test]
fn bbm_pair_host_share_unshare_hyp() {
    bbm_pair(|m| {
        assert_eq!(m.hvc(0, HVC_HOST_SHARE_HYP, &[PFN]), 0);
        assert_eq!(m.hvc(0, HVC_HOST_UNSHARE_HYP, &[PFN]), 0);
    });
}

#[test]
fn bbm_pair_donation() {
    bbm_pair(|m| {
        setup_vm(m);
        assert_eq!(m.hvc(0, HVC_TOPUP_MEMCACHE, &[PFN << 12, 1]), 0);
    });
}

#[test]
fn bbm_pair_guest_share_unshare_and_teardown() {
    bbm_pair(|m| {
        let h = setup_vm(m);
        assert_eq!(m.hvc(0, HVC_TOPUP_MEMCACHE, &[0x40500 << 12, 8]), 0);
        assert_eq!(m.hvc(0, HVC_HOST_MAP_GUEST, &[0x40600, 0x10]), 0);
        m.push_guest_op(h as u32, 0, GuestOp::HvcShareHost(0x10 * PAGE_SIZE))
            .unwrap();
        assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::GUEST_HVC);
        m.push_guest_op(h as u32, 0, GuestOp::HvcUnshareHost(0x10 * PAGE_SIZE))
            .unwrap();
        assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::GUEST_HVC);
        assert_eq!(m.hvc(0, HVC_VCPU_PUT, &[]), 0);
        assert_eq!(m.hvc(0, HVC_TEARDOWN_VM, &[h]), 0);
    });
}

#[test]
fn guest_unshare_invalidates_both_vmids_precisely() {
    // mem_protect's guest_unshare_host must invalidate the *guest* page
    // under the guest VMID and the *physical* page under the host VMID —
    // both page-granular, both broadcast (satellite audit of the
    // two-sided unshare at the guest/host boundary).
    let (m, rec) = boot_recorded(FaultSet::none());
    let h = setup_vm(&m);
    assert_eq!(m.hvc(0, HVC_TOPUP_MEMCACHE, &[0x40500 << 12, 8]), 0);
    assert_eq!(m.hvc(0, HVC_HOST_MAP_GUEST, &[0x40600, 0x10]), 0);
    let gipa = 0x10 * PAGE_SIZE;
    m.push_guest_op(h as u32, 0, GuestOp::HvcShareHost(gipa))
        .unwrap();
    assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::GUEST_HVC);
    rec.log.lock().clear();
    m.push_guest_op(h as u32, 0, GuestOp::HvcUnshareHost(gipa))
        .unwrap();
    assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::GUEST_HVC);
    let tlbis = rec.tlbis();
    let guest_vmid = 1u16; // first VM: slot 0 → VMID 1
    assert!(
        tlbis.contains(&(guest_vmid, gipa, 1, true)),
        "guest-side page must be invalidated under the guest VMID: {tlbis:?}"
    );
    assert!(
        tlbis.contains(&(VMID_HOST, 0x40600 * PAGE_SIZE, 1, true)),
        "host-side page must be invalidated under the host VMID: {tlbis:?}"
    );
    assert_eq!(tlbis.len(), 2, "exactly the two scoped TLBIs: {tlbis:?}");
    assert!(!tlbis.iter().any(|&(v, ..)| v == VMID_HYP));
}

#[test]
fn teardown_uses_one_vmid_wide_tlbi() {
    // VMID retirement is the one site where the VMID-wide scope is the
    // precise one; assert it is emitted as such (and only once).
    let (m, rec) = boot_recorded(FaultSet::none());
    let h = setup_vm(&m);
    assert_eq!(m.hvc(0, HVC_VCPU_PUT, &[]), 0);
    rec.log.lock().clear();
    assert_eq!(m.hvc(0, HVC_TEARDOWN_VM, &[h]), 0);
    let wide: Vec<_> = rec
        .tlbis()
        .into_iter()
        .filter(|&(_, ia, nr, _)| ia == 0 && nr == u64::MAX)
        .collect();
    assert_eq!(wide, vec![(1, 0, u64::MAX, true)]);
    assert!(rec.dangling_downgrades().is_empty());
}
