//! TLB coherence tests: the hypervisor must invalidate cached
//! translations whenever it removes or downgrades mappings, or revoked
//! access keeps working through stale entries — the bug class of the
//! paper's companion work on TLB synchronisation.

use pkvm_aarch64::addr::PAGE_SIZE;
use pkvm_aarch64::tlb::VMID_HOST;
use pkvm_aarch64::walk::Access;
use pkvm_hyp::error::Errno;
use pkvm_hyp::faults::{Fault, FaultSet};
use pkvm_hyp::hypercalls::*;
use pkvm_hyp::machine::{Machine, MachineConfig};
use pkvm_hyp::vm::GuestOp;
use std::sync::Arc;

fn boot_with(faults: FaultSet) -> Arc<Machine> {
    Machine::boot(
        MachineConfig::default(),
        Arc::new(pkvm_hyp::hooks::NoHooks),
        Arc::new(faults),
    )
}

const PFN: u64 = 0x40900;

#[test]
fn repeated_host_accesses_hit_the_tlb() {
    let m = boot_with(FaultSet::none());
    m.host_access(0, PFN * PAGE_SIZE, Access::Read).unwrap();
    let misses = m.tlb.misses();
    let hits_before = m.tlb.hits();
    for _ in 0..10 {
        m.host_access(0, PFN * PAGE_SIZE + 8, Access::Read).unwrap();
    }
    assert_eq!(m.tlb.misses(), misses, "no further walks needed");
    assert!(m.tlb.hits() >= hits_before + 10);
}

#[test]
fn donation_invalidates_the_host_tlb_entry() {
    let m = boot_with(FaultSet::none());
    // Build a VM so the memcache top-up (a donation) is available.
    let params = 0x40200u64;
    m.mem
        .write_u64(pkvm_aarch64::PhysAddr::from_pfn(params), 1)
        .unwrap();
    assert!(Errno::from_ret(m.hvc(0, HVC_INIT_VM, &[params, 0x40300, 2])).is_none());
    assert_eq!(m.hvc(0, HVC_INIT_VCPU, &[0x1000, 0, 0x40310]), 0);
    assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[0x1000, 0]), 0);
    // Host warms the TLB for the page, then donates it.
    m.host_access(0, PFN * PAGE_SIZE, Access::Read).unwrap();
    assert!(m.tlb.lookup(VMID_HOST, PFN * PAGE_SIZE).is_some());
    assert_eq!(m.hvc(0, HVC_TOPUP_MEMCACHE, &[PFN << 12, 1]), 0);
    // The stale entry is gone and the access now faults for real.
    assert!(m.tlb.lookup(VMID_HOST, PFN * PAGE_SIZE).is_none());
    assert!(m.host_access(0, PFN * PAGE_SIZE, Access::Read).is_err());
}

#[test]
fn share_unshare_keeps_the_tlb_coherent() {
    let m = boot_with(FaultSet::none());
    assert_eq!(m.hvc(0, HVC_HOST_SHARE_HYP, &[PFN]), 0);
    m.host_access(0, PFN * PAGE_SIZE, Access::Read).unwrap();
    assert_eq!(m.hvc(0, HVC_HOST_UNSHARE_HYP, &[PFN]), 0);
    // The host still owns the page; the access refaults and remaps — but
    // through a *fresh* walk, not the stale shared-state entry.
    let misses_before = m.tlb.misses();
    m.host_access(0, PFN * PAGE_SIZE, Access::Read).unwrap();
    assert!(
        m.tlb.misses() > misses_before,
        "stale entry must not satisfy the retry"
    );
}

#[test]
fn guest_translations_are_cached_and_retired_at_teardown() {
    let m = boot_with(FaultSet::none());
    let params = 0x40200u64;
    m.mem
        .write_u64(pkvm_aarch64::PhysAddr::from_pfn(params), 1)
        .unwrap();
    m.mem
        .write_u64(pkvm_aarch64::PhysAddr::from_pfn(params).wrapping_add(8), 1)
        .unwrap();
    let h = m.hvc(0, HVC_INIT_VM, &[params, 0x40300, 2]);
    assert!(Errno::from_ret(h).is_none());
    assert_eq!(m.hvc(0, HVC_INIT_VCPU, &[h, 0, 0x40310]), 0);
    assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[h, 0]), 0);
    assert_eq!(m.hvc(0, HVC_TOPUP_MEMCACHE, &[0x40500 << 12, 8]), 0);
    assert_eq!(m.hvc(0, HVC_HOST_MAP_GUEST, &[0x40600, 0x10]), 0);
    // Two guest reads: the second hits the guest-VMID TLB entry.
    m.push_guest_op(h as u32, 0, GuestOp::Read(0x10 * PAGE_SIZE))
        .unwrap();
    assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::CONTINUE);
    let hits = m.tlb.hits();
    m.push_guest_op(h as u32, 0, GuestOp::Read(0x10 * PAGE_SIZE))
        .unwrap();
    assert_eq!(m.hvc(0, HVC_VCPU_RUN, &[]), exit::CONTINUE);
    assert!(m.tlb.hits() > hits);
    // Teardown retires the guest VMID.
    assert_eq!(m.hvc(0, HVC_VCPU_PUT, &[]), 0);
    assert_eq!(m.hvc(0, HVC_TEARDOWN_VM, &[h]), 0);
    assert!(
        m.tlb.lookup(2, 0x10 * PAGE_SIZE).is_none(),
        "guest vmid 2 retired"
    );
}

#[test]
fn missing_tlbi_lets_the_host_read_donated_memory() {
    // The injected bug: no invalidations. The isolation breach is purely
    // architectural (page tables are correct!), so the ghost oracle —
    // which checks the tables' extensional meaning — cannot see it; the
    // behavioural check does.
    let faults = FaultSet::none();
    faults.inject(Fault::SynMissingTlbi);
    let m = boot_with(faults);
    let params = 0x40200u64;
    m.mem
        .write_u64(pkvm_aarch64::PhysAddr::from_pfn(params), 1)
        .unwrap();
    let h = m.hvc(0, HVC_INIT_VM, &[params, 0x40300, 2]);
    assert!(Errno::from_ret(h).is_none());
    assert_eq!(m.hvc(0, HVC_INIT_VCPU, &[h, 0, 0x40310]), 0);
    assert_eq!(m.hvc(0, HVC_VCPU_LOAD, &[h, 0]), 0);
    // Warm, donate, and... the revoked access still works.
    m.host_access(0, PFN * PAGE_SIZE, Access::Read).unwrap();
    assert_eq!(m.hvc(0, HVC_TOPUP_MEMCACHE, &[PFN << 12, 1]), 0);
    assert!(
        m.host_access(0, PFN * PAGE_SIZE, Access::Read).is_ok(),
        "the stale TLB entry keeps serving the host"
    );
    // With the fix, the same sequence faults (see
    // donation_invalidates_the_host_tlb_entry).
}
