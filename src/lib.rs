//! Reproduction of *"Ghost in the Android Shell: Pragmatic Test-oracle
//! Specification of a Production Hypervisor"* (SOSP 2025).
//!
//! This meta-crate re-exports the workspace: the simulated Arm-A substrate
//! ([`aarch64`]), the pKVM-style hypervisor under test ([`hyp`]), the
//! reified ghost state and executable specification ([`ghost`] — the
//! paper's contribution), and the test infrastructure ([`harness`]).
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and experiment index, and `examples/` for runnable
//! walkthroughs (start with `cargo run --example quickstart`).

pub use pkvm_aarch64 as aarch64;
pub use pkvm_ghost as ghost;
pub use pkvm_ghost::prelude;
pub use pkvm_harness as harness;
pub use pkvm_hyp as hyp;
